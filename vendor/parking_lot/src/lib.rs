//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps the standard-library synchronisation primitives behind parking_lot's
//! poison-free API (`lock()` returns the guard directly). A poisoned std lock
//! — a panic while holding the guard — is recovered by taking the inner value
//! anyway, which matches parking_lot's behaviour of not propagating poison.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_is_usable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
