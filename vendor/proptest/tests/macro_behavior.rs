//! Behavioural tests of the `proptest!` macro itself: case counts, strategy
//! ranges, determinism, and failure reporting.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

static CASES_RUN: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(37))]

    /// Every configured case actually executes the body.
    #[test]
    fn body_runs_once_per_case(_x in 0usize..10) {
        CASES_RUN.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn proptest_runs_the_configured_number_of_cases() {
    CASES_RUN.store(0, Ordering::SeqCst);
    body_runs_once_per_case();
    assert_eq!(CASES_RUN.load(Ordering::SeqCst), 37);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(x in 3usize..9, y in 0u8..2) {
        prop_assert!((3..9).contains(&x));
        prop_assert!(y < 2);
    }

    #[test]
    fn oneof_only_yields_listed_values(d in prop_oneof![Just(3usize), Just(5), Just(7)]) {
        prop_assert!(d == 3 || d == 5 || d == 7);
    }

    #[test]
    fn vec_lengths_respect_size_range(
        v in prop::collection::vec(0usize..100, 2..6),
        w in prop::collection::vec(any::<u8>(), 3),
    ) {
        prop_assert!((2..6).contains(&v.len()));
        prop_assert_eq!(w.len(), 3);
        for &x in &v {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn index_projects_into_collections(i in any::<prop::sample::Index>()) {
        let items = [10, 20, 30, 40, 50];
        let picked = items[i.index(items.len())];
        prop_assert!(items.contains(&picked));
    }

    #[test]
    fn tuple_strategies_generate_componentwise(
        (a, b, c) in (0usize..4, 10usize..14, any::<bool>()),
    ) {
        prop_assert!(a < 4);
        prop_assert!((10..14).contains(&b));
        let _ = c;
    }
}

proptest! {
    /// A deliberately failing property, invoked manually below — not named
    /// with a `#[test]` attribute, so the harness does not run it directly.
    fn always_fails(x in 0usize..10) {
        prop_assert!(x > 100, "x was {}", x);
    }
}

#[test]
fn failing_property_panics_with_case_context() {
    let result = catch_unwind(AssertUnwindSafe(always_fails));
    let err = result.expect_err("property must fail");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(message.contains("always_fails"), "message was: {message}");
    assert!(message.contains("failed at case"), "message was: {message}");
}

#[test]
fn generation_is_deterministic_across_runs() {
    let strategy = prop::collection::vec(0usize..1000, 0..20);
    let a: Vec<Vec<usize>> = (0..10)
        .map(|case| strategy.generate(&mut proptest::test_runner::TestRng::for_case("det", case)))
        .collect();
    let b: Vec<Vec<usize>> = (0..10)
        .map(|case| strategy.generate(&mut proptest::test_runner::TestRng::for_case("det", case)))
        .collect();
    assert_eq!(a, b);
}
