//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Arbitrary;
use crate::test_runner::TestRng;

/// A position into a not-yet-known collection: generated as raw entropy and
/// projected onto a concrete length with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Index(usize);

impl Index {
    /// Projects this index onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len == 0`, as in the real crate.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index called with an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}
