//! Test-execution machinery: configuration, the deterministic RNG, and the
//! error type the `prop_assert*` macros produce.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving value generation (SplitMix64).
///
/// Seeded purely from the test name and case index so that every run of the
/// suite generates identical cases — a failure is always reproducible by
/// rerunning the test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one case of one test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }

    /// Uniform value in `[0, bound)` as `u64`; `bound` must be non-zero.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Multiply-shift mapping; bias is negligible for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("some_test", 3);
        let mut b = TestRng::for_case("some_test", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let mut a = TestRng::for_case("some_test", 0);
        let mut b = TestRng::for_case("some_test", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
