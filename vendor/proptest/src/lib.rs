//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Re-implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`Strategy`](strategy::Strategy) trait over a
//! deterministic RNG,
//! `any::<T>()`, ranges, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::sample::Index`, `ProptestConfig`, the
//! `proptest!` test-declaration macro and the `prop_assert*` family.
//!
//! The one deliberate omission is *shrinking*: a failing case reports its
//! case number and generated inputs' debug description is left to the
//! assertion message, rather than searching for a minimal counterexample.
//! Failures stay reproducible because case generation is deterministic — the
//! RNG is seeded from the test name and case index only.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so that `prop::collection::vec` and `prop::sample::Index`
    /// resolve after a glob import, as in the real crate.
    pub use crate as prop;
}

/// Declares property tests. Each function body runs `ProptestConfig::cases`
/// times with freshly generated inputs; generation is deterministic per
/// (test name, case index).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ( $($strat,)+ );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ( $($pat,)+ ) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        ::core::panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*), left, right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)*), left
        );
    }};
}
