//! The [`Strategy`] trait and the primitive strategy combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking machinery: a
/// strategy simply produces a value per case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy so heterogeneous strategies of the same
    /// value type can be stored together (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among a set of strategies with a common value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + (rng.below_u64(span) as $t)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
