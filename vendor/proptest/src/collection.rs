//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for collection strategies: either fixed or a
/// half-open range, mirroring proptest's `SizeRange` conversions.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            start: len,
            end: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(
            range.start < range.end,
            "empty vec-size range {}..{}",
            range.start,
            range.end
        );
        SizeRange {
            start: range.start,
            end: range.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a strategy generating vectors of `element` values with a length
/// drawn from `size` (a fixed `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
