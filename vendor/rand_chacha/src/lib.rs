//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`].
//!
//! Unlike the other vendored shims this is not a thin wrapper around simpler
//! machinery: it is a genuine ChaCha8 keystream generator (Bernstein's ChaCha
//! with 8 double-rounds, 64-bit block counter), so simulation seeds keep the
//! statistical quality the Monte-Carlo harness assumes. Word extraction order
//! follows rand_chacha 0.3: the 16 little-endian `u32` words of each block
//! are consumed in order, and `next_u64` combines two consecutive words
//! low-then-high.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_BLOCK_WORDS: usize = 16;
const CHACHA_DOUBLE_ROUNDS: usize = 4; // ChaCha8 = 8 rounds = 4 double-rounds.

/// A cryptographically strong deterministic RNG: the ChaCha stream cipher
/// with 8 rounds, used as a PRNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the state) and stream id (words 14..16).
    key: [u32; 8],
    stream: [u32; 2],
    /// 64-bit block counter (words 12..14 of the state).
    counter: u64,
    /// Current keystream block and the read position within it.
    block: [u32; CHACHA_BLOCK_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; CHACHA_BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; CHACHA_BLOCK_WORDS] = [0; CHACHA_BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];

        let input = state;
        for _ in 0..CHACHA_DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }

        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= CHACHA_BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    /// Returns the stream id (always 0 for generators made by `from_seed` /
    /// `seed_from_u64`).
    pub fn get_stream(&self) -> u64 {
        (u64::from(self.stream[1]) << 32) | u64::from(self.stream[0])
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            stream: [0, 0],
            counter: 0,
            block: [0; CHACHA_BLOCK_WORDS],
            // Force a refill on first use.
            index: CHACHA_BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be effectively independent, {same} collisions"
        );
    }

    #[test]
    fn zero_key_chacha8_block_matches_reference() {
        // First keystream block of ChaCha8 with an all-zero key, nonce and
        // counter, from the ChaCha reference implementation test vectors.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expect_first_bytes = [
            0x3Eu8, 0x00, 0xEF, 0x2F, 0x89, 0x5F, 0x40, 0xD6, 0x7F, 0x5B, 0xB8, 0xE8, 0x1F, 0x09,
            0xA5, 0xA1,
        ];
        let mut got = [0u8; 16];
        rng.fill_bytes(&mut got);
        assert_eq!(got, expect_first_bytes);
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..4096 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should spread across the interval");
    }
}
