//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access, so this crate re-implements the
//! small slice of the rand 0.8 API the workspace actually uses:
//!
//! * [`RngCore`] — the raw entropy source (`next_u32` / `next_u64` /
//!   `fill_bytes`),
//! * [`Rng`] — the user-facing extension trait providing `gen()`, object-safe
//!   so that `R: Rng + ?Sized` bounds work,
//! * [`SeedableRng`] — byte-seed construction plus the `seed_from_u64`
//!   convenience, using the same PCG32-based seed expansion as rand_core
//!   0.6's default implementation,
//! * the `distributions::Standard`-equivalent sampling for the primitive
//!   types the workspace draws (`f64`, `f32`, `bool`, and the integers).
//!
//! Compatibility with the real crates, for what this workspace uses:
//! `seed_from_u64` reproduces rand_core 0.6's expansion and `f64` sampling
//! uses rand 0.8's 53-bit mantissa construction, so
//! `ChaCha8Rng::seed_from_u64(s).gen::<f64>()` streams match the real
//! rand + rand_chacha pair. Other paths are self-consistent but NOT
//! stream-compatible: integer `Standard` sampling always consumes a full
//! `next_u64` (real rand draws `next_u32` for 32-bit-and-smaller types) and
//! `gen_range` uses a simpler multiply-shift mapping than rand's
//! widening-multiply-with-rejection. Seeded results recorded in CHANGES.md
//! may therefore shift on those paths if the vendored shims are swapped for
//! the crates.io versions.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1), as rand 0.8 does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.gen::<f64>() < p
    }

    /// Samples an integer uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // negligible for the simulation workloads here.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, conventionally a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it into a full seed
    /// with the PCG32 stream rand_core 0.6's default implementation uses,
    /// so seeded generators match the real crates'.
    fn seed_from_u64(mut state: u64) -> Self {
        // Constants from rand_core 0.6 (PCG32 multiplier/increment).
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            // PCG output function (XSH-RR).
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly re-exported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_matches_rand_core_06_expansion() {
        // Golden output of rand_core 0.6's default `seed_from_u64` (PCG32
        // expansion, XSH-RR output) for seed 0 — guards against drifting
        // away from the real crates' seeded streams.
        struct CaptureSeed([u8; 32]);
        impl SeedableRng for CaptureSeed {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                CaptureSeed(seed)
            }
        }
        let expanded = CaptureSeed::seed_from_u64(0).0;
        let expect: [u8; 32] = [
            236, 242, 115, 249, 129, 181, 205, 69, 135, 240, 70, 115, 6, 173, 108, 173, 208, 208,
            163, 227, 51, 23, 231, 103, 242, 155, 234, 114, 215, 138, 125, 254,
        ];
        assert_eq!(expanded, expect);
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Counter(1);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = draw(dynamic);
        assert!((0.0..1.0).contains(&x));
    }
}
