//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The container this repository builds in has no network access, so the real
//! serde cannot be fetched from crates.io. The workspace only ever uses serde
//! through `#[derive(Serialize, Deserialize)]` — no bounds, no `#[serde(...)]`
//! field attributes, no serializer back-ends — so this crate provides exactly
//! that surface: two derive macros that expand to nothing. Swapping the
//! `[workspace.dependencies]` entry back to the crates.io `serde` is a
//! one-line change once the build environment has network access.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
