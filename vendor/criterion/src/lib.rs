//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the group / `bench_with_input` / `Bencher::iter` API the
//! workspace's benches use, backed by a simple but honest wall-clock
//! measurement: a fixed warm-up, then `sample_size` samples of an adaptively
//! chosen iteration count each, reporting min / mean / max ns per iteration
//! in a criterion-like line format. There is no statistical regression
//! testing, plotting or baseline persistence — the numbers print to stdout
//! and are meant to be recorded manually (see CHANGES.md for the current
//! baseline).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(8);
/// Ceiling on one benchmark point's total measuring time, so slow targets
/// (e.g. Monte-Carlo batches) cannot stall the suite.
const MAX_TOTAL_TIME: Duration = Duration::from_secs(5);

/// Smoke mode: `NISQ_BENCH_SMOKE=1` shrinks every benchmark to one sample of
/// a few iterations so CI can execute the whole suite in seconds.  The
/// numbers it prints are meaningless as measurements; the point is that the
/// bench *code paths* (and their assertions) cannot bitrot unexercised.
fn smoke_mode() -> bool {
    std::env::var_os("NISQ_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

const SMOKE_WARMUP: Duration = Duration::from_micros(200);
const SMOKE_TARGET_SAMPLE_TIME: Duration = Duration::from_micros(200);
const SMOKE_MAX_TOTAL_TIME: Duration = Duration::from_millis(100);

/// The benchmark harness entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n{name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with the given input, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.repr);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input, labelled by `id`.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// An identifier for one benchmark point within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration nanoseconds for each sample, filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration timings.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let (warmup, target, max_total) = if smoke_mode() {
            (SMOKE_WARMUP, SMOKE_TARGET_SAMPLE_TIME, SMOKE_MAX_TOTAL_TIME)
        } else {
            (WARMUP, TARGET_SAMPLE_TIME, MAX_TOTAL_TIME)
        };
        // Warm-up and iteration-count calibration.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(f());
            warmup_iters += 1;
            if start.elapsed() >= warmup {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let iters = ((target.as_nanos() as f64 / per_iter.max(1.0)) as u64).max(1);

        let budget = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
            if budget.elapsed() > max_total {
                break;
            }
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Smoke mode overrides per-group sample sizes: one sample per point.
    let sample_size = if smoke_mode() { 1 } else { sample_size };
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label:<40} (no samples: Bencher::iter never called)");
        return;
    }
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples.iter().copied().fold(0.0f64, f64::max);
    let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
    eprintln!(
        "{label:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 3,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(5).repr, "5");
        assert_eq!(BenchmarkId::new("decode", 7).repr, "decode/7");
    }
}
