//! Smoke test guarding the `examples/quickstart.rs` happy path end to end:
//! build a small lattice, inject a correctable error, decode it with the SFQ
//! mesh decoder, and verify that the logical state survives.

use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::Decoder;
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use nisqplus_qec::pauli::{Pauli, PauliString};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The quickstart flow at `d = 3` with a weight-one (always correctable)
/// error must preserve the logical state in both sectors.
#[test]
fn quickstart_flow_corrects_single_error_at_d3() {
    let lattice = Lattice::new(3).expect("d = 3 is a valid distance");
    for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
        for qubit in 0..lattice.num_data() {
            let error = PauliString::from_sparse(lattice.num_data(), &[qubit], pauli);
            let syndrome = lattice.syndrome_of(&error);
            let mut decoder = SfqMeshDecoder::final_design();
            let correction = decoder.decode(&lattice, &syndrome, sector);
            let outcome = classify_residual(&lattice, &error, correction.pauli_string(), sector);
            assert_eq!(
                outcome,
                LogicalState::Success,
                "single {pauli:?} error on qubit {qubit} was not corrected in {sector:?}"
            );
            let stats = decoder.last_stats().expect("decode just ran");
            assert!(stats.completed, "decode on qubit {qubit} did not complete");
        }
    }
}

/// The exact sampled-noise loop of the quickstart example, pinned by seed:
/// every decode completes and the run preserves the logical state for a
/// majority of cycles (at 3% dephasing and d = 3, failures are rare).
#[test]
fn quickstart_sampled_noise_loop_runs_clean() {
    let lattice = Lattice::new(3).expect("d = 3 is a valid distance");
    let channel = PureDephasing::new(0.03).expect("valid error probability");
    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    let mut decoder = SfqMeshDecoder::final_design();

    let cycles = 20;
    let mut successes = 0;
    for _ in 0..cycles {
        let error = channel.sample(&lattice, &mut rng);
        let syndrome = lattice.syndrome_of(&error);
        let correction = decoder.decode(&lattice, &syndrome, Sector::X);
        let outcome = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
        assert_ne!(
            outcome,
            LogicalState::InvalidCorrection,
            "decoder left a residual syndrome"
        );
        if outcome == LogicalState::Success {
            successes += 1;
        }
    }
    assert!(
        successes * 2 > cycles,
        "expected a majority of clean cycles, got {successes}/{cycles}"
    );
}
