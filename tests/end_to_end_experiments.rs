//! End-to-end smoke tests of the experiment pipelines behind each table and
//! figure, run at reduced trial counts so the whole suite stays fast.

use nisqplus_core::DecoderVariant;
use nisqplus_sim::fit::fit_scaling_exponent;
use nisqplus_sim::threshold::{pseudo_threshold, ErrorRateCurve};
use nisqplus_system::comparison::{required_code_distance, ComparisonSetup, DecoderProfile};
use nisqplus_system::sqv::{data_qubits_per_logical, ScalingModel, SqvAnalysis};

/// Figure 10 pipeline: the final design has a pseudo-threshold in the few-%
/// range at d = 5, and the baseline design has none.
#[test]
fn figure10_pipeline_produces_a_pseudo_threshold() {
    let rates = [0.01, 0.02, 0.03, 0.04, 0.05, 0.07, 0.09];
    let final_curve =
        ErrorRateCurve::measure(5, &rates, 3_000, DecoderVariant::Final, 0xAB).unwrap();
    let pt = pseudo_threshold(&final_curve);
    assert!(
        pt.is_some(),
        "final design must have a pseudo-threshold: {final_curve:?}"
    );
    let pt = pt.unwrap();
    assert!((0.01..=0.09).contains(&pt), "pseudo-threshold {pt}");

    let baseline_curve =
        ErrorRateCurve::measure(5, &rates, 1_500, DecoderVariant::Baseline, 0xAC).unwrap();
    // The baseline either has no pseudo-threshold or a dramatically worse one.
    match pseudo_threshold(&baseline_curve) {
        None => {}
        Some(b) => assert!(
            b < pt,
            "baseline pseudo-threshold {b} should be below final {pt}"
        ),
    }
}

/// Table V pipeline: the fitted c2 of the final design is positive and below
/// the ideal 0.5 at d >= 5 (the decoder is approximate).
#[test]
fn table5_pipeline_fits_a_sub_ideal_exponent() {
    let rates = [0.02, 0.025, 0.03, 0.035, 0.04, 0.045];
    let curve = ErrorRateCurve::measure(5, &rates, 6_000, DecoderVariant::Final, 0xF1).unwrap();
    let fit = fit_scaling_exponent(&curve, 0.05).expect("enough sub-threshold points");
    assert!(fit.c2 > 0.05, "c2 {} must be positive", fit.c2);
    assert!(
        fit.c2 < 0.9,
        "c2 {} should reflect an approximate decoder",
        fit.c2
    );
}

/// Figure 1 pipeline: the SQV boost factors land in the paper's range.
#[test]
fn figure1_pipeline_reproduces_the_boost_range() {
    let analysis = SqvAnalysis::near_term_machine();
    let d3 = analysis.encoded_machine(3, &ScalingModel::sfq_paper(3), data_qubits_per_logical(3));
    let d5 = analysis.encoded_machine(5, &ScalingModel::sfq_paper(5), data_qubits_per_logical(5));
    let b3 = analysis.boost_factor(&d3);
    let b5 = analysis.boost_factor(&d5);
    assert!((1_000.0..=10_000.0).contains(&b3), "d=3 boost {b3}");
    assert!((5_000.0..=40_000.0).contains(&b5), "d=5 boost {b5}");
    assert!(b5 > b3);
}

/// Figure 11 pipeline: the online decoder needs far smaller code distances
/// than any backlogged decoder across the sweep.
#[test]
fn figure11_pipeline_shows_the_code_distance_gap() {
    let setup = ComparisonSetup::default();
    for p in [1e-4, 1e-3] {
        let sfq = required_code_distance(&DecoderProfile::sfq(5), p, &setup).unwrap();
        for slow in [
            DecoderProfile::mwpm(),
            DecoderProfile::neural_network(),
            DecoderProfile::union_find(),
        ] {
            let needed = required_code_distance(&slow, p, &setup).unwrap();
            assert!(
                needed >= 5 * sfq,
                "{} needs d={needed} vs SFQ d={sfq} at p={p}",
                slow.name
            );
        }
        let free =
            required_code_distance(&DecoderProfile::mwpm_without_backlog(), p, &setup).unwrap();
        assert!(free <= sfq + 2);
    }
}
