//! Cross-crate integration tests: every decoder, the Monte-Carlo harness, the
//! hardware characterisation and the system-level analyses working together.

use nisqplus_core::{DecoderModuleHardware, DecoderVariant, SfqMeshDecoder};
use nisqplus_decoders::{
    Decoder, ExactMatchingDecoder, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use nisqplus_sim::monte_carlo::{run_lifetime, run_sfq_lifetime, MonteCarloConfig};
use nisqplus_sim::timing::CycleTimeConverter;
use nisqplus_system::backlog::BacklogModel;
use nisqplus_system::standard_benchmarks;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Every decoder in the workspace corrects the same random low-weight errors.
#[test]
fn all_decoders_handle_the_same_errors() {
    let lattice = Lattice::new(5).unwrap();
    let model = PureDephasing::new(0.02).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(123);

    let mut decoders: Vec<Box<dyn Decoder>> = vec![
        Box::new(SfqMeshDecoder::final_design()),
        Box::new(ExactMatchingDecoder::new()),
        Box::new(GreedyMatchingDecoder::new()),
        Box::new(UnionFindDecoder::new()),
    ];

    for _ in 0..50 {
        let error = model.sample(&lattice, &mut rng);
        let syndrome = lattice.syndrome_of(&error);
        for decoder in &mut decoders {
            let correction = decoder.decode(&lattice, &syndrome, Sector::X);
            let state = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
            assert_ne!(
                state,
                LogicalState::InvalidCorrection,
                "{} produced an invalid correction",
                decoder.name()
            );
        }
    }
}

/// At d = 3 the lookup table is exact, so no approximate decoder can beat it.
#[test]
fn lookup_table_is_at_least_as_good_as_the_mesh_at_d3() {
    let lattice = Lattice::new(3).unwrap();
    let model = PureDephasing::new(0.06).unwrap();
    let config = MonteCarloConfig::new(1_500).with_seed(9).with_threads(2);
    let mesh = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
    let lookup = run_lifetime(
        &lattice,
        &model,
        &config,
        || LookupDecoder::new(&lattice).expect("d=3 fits the lookup table"),
        |_| None,
    );
    assert!(
        lookup.logical_error_rate() <= mesh.logical_error_rate() + 0.02,
        "lookup {} vs mesh {}",
        lookup.logical_error_rate(),
        mesh.logical_error_rate()
    );
}

/// The ablation ordering of Figure 10 holds end to end: each added mechanism
/// improves (or at least does not worsen) the logical error rate at a
/// below-threshold physical error rate.
#[test]
fn design_variants_improve_monotonically() {
    let lattice = Lattice::new(5).unwrap();
    let model = PureDephasing::new(0.03).unwrap();
    let config = MonteCarloConfig::new(2_000).with_seed(77).with_threads(4);
    let rates: Vec<f64> = DecoderVariant::ALL
        .iter()
        .map(|&v| run_sfq_lifetime(&lattice, &model, &config, v).logical_error_rate())
        .collect();
    let (baseline, reset, boundary, final_design) = (rates[0], rates[1], rates[2], rates[3]);
    assert!(
        final_design <= boundary + 0.02,
        "final {final_design} vs boundary {boundary}"
    );
    assert!(
        boundary < baseline,
        "boundary {boundary} vs baseline {baseline}"
    );
    assert!(
        final_design < baseline / 2.0,
        "final {final_design} vs baseline {baseline}"
    );
    assert!(
        reset <= baseline + 0.05,
        "reset {reset} vs baseline {baseline}"
    );
}

/// Below threshold, larger code distances give lower logical error rates for
/// the final design (the defining property of Figure 10a).
#[test]
fn larger_distance_helps_below_threshold() {
    let model = PureDephasing::new(0.02).unwrap();
    let config = MonteCarloConfig::new(4_000).with_seed(5).with_threads(4);
    let mut previous = f64::INFINITY;
    for d in [3usize, 5, 7] {
        let lattice = Lattice::new(d).unwrap();
        let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        let rate = result.logical_error_rate();
        assert!(
            rate <= previous + 0.01,
            "PL should not grow with distance below threshold: d={d} gave {rate}, previous {previous}"
        );
        previous = rate;
    }
}

/// The decoder is always faster than syndrome generation, so the system-level
/// backlog model reports no slowdown for it, while an 800 ns decoder explodes.
#[test]
fn decoder_speed_keeps_the_machine_backlog_free() {
    let lattice = Lattice::new(9).unwrap();
    let model = PureDephasing::new(0.05).unwrap();
    let config = MonteCarloConfig::new(1_000).with_seed(2).with_threads(4);
    let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
    let converter = CycleTimeConverter::new(DecoderModuleHardware::ersfq().cycle_time_ps());
    let worst_ns = result
        .cycle_samples
        .iter()
        .map(|&c| converter.cycles_to_ns(c))
        .fold(0.0f64, f64::max);
    assert!(
        worst_ns < 400.0,
        "worst decode {worst_ns} ns must beat the 400 ns syndrome cycle"
    );

    let online = BacklogModel::new(400.0, worst_ns.max(1.0));
    let offline = BacklogModel::new(400.0, 800.0);
    for bench in standard_benchmarks() {
        let fast = online.execution_time(&bench);
        let slow = offline.execution_time(&bench);
        assert_eq!(fast.stall_s, 0.0, "{}", bench.name());
        assert!(
            slow.slowdown() > 1e6,
            "{} should blow up when backlogged",
            bench.name()
        );
    }
}

/// The hardware characterisation plugs into the timing pipeline consistently.
#[test]
fn hardware_cycle_time_feeds_the_decoder_stats() {
    let hardware = DecoderModuleHardware::ersfq();
    let lattice = Lattice::new(5).unwrap();
    let model = PureDephasing::new(0.04).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let error = model.sample(&lattice, &mut rng);
    let syndrome = lattice.syndrome_of(&error);
    let mut decoder = SfqMeshDecoder::final_design();
    let _ = decoder.decode(&lattice, &syndrome, Sector::X);
    let stats = decoder.last_stats().unwrap();
    let expected = stats.cycles as f64 * hardware.cycle_time_ps() * 1e-3;
    assert!((stats.time_ns - expected).abs() < 1e-9);
}
