//! Property-based tests for the surface-code substrate.

use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::{Pauli, PauliString};
use nisqplus_qec::syndrome::{PackedSyndrome, Syndrome};
use proptest::prelude::*;

fn arb_distance() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5), Just(7), Just(9)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every error pattern has an even number of defects in each sector once
    /// boundary effects are accounted for — more precisely, the syndrome is
    /// always reproducible and deterministic.
    #[test]
    fn syndrome_is_deterministic(d in arb_distance(), support in prop::collection::vec(0usize..100, 0..40)) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = support.into_iter().map(|q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let s1 = lattice.syndrome_of(&error);
        let s2 = lattice.syndrome_of(&error);
        prop_assert_eq!(s1, s2);
    }

    /// Pauli string composition is associative and self-inverse (group laws).
    #[test]
    fn pauli_composition_group_laws(
        a in prop::collection::vec(0usize..4, 1..32),
        b in prop::collection::vec(0usize..4, 1..32),
    ) {
        let n = a.len().min(b.len());
        let to_pauli = |v: &[usize]| -> PauliString {
            v.iter().take(n).map(|&i| Pauli::ALL[i]).collect()
        };
        let pa = to_pauli(&a);
        let pb = to_pauli(&b);
        // Self-inverse: P ∘ P = I.
        prop_assert!(pa.composed(&pa).is_identity());
        // Commutative modulo phase (component-wise XOR).
        prop_assert_eq!(pa.composed(&pb), pb.composed(&pa));
    }

    /// The syndrome map is linear: syndrome(a ∘ b) = syndrome(a) XOR syndrome(b).
    #[test]
    fn syndrome_map_is_linear(d in arb_distance(), sa in prop::collection::vec(0usize..1000, 0..20), sb in prop::collection::vec(0usize..1000, 0..20)) {
        let lattice = Lattice::new(d).unwrap();
        let wrap = |v: Vec<usize>| -> Vec<usize> { v.into_iter().map(|q| q % lattice.num_data()).collect() };
        let ea = PauliString::from_sparse(lattice.num_data(), &wrap(sa), Pauli::Z);
        let eb = PauliString::from_sparse(lattice.num_data(), &wrap(sb), Pauli::X);
        let combined = ea.composed(&eb);
        let expect: Syndrome = lattice.syndrome_of(&ea).xor(&lattice.syndrome_of(&eb));
        prop_assert_eq!(lattice.syndrome_of(&combined), expect);
    }

    /// Correction paths between any two same-sector ancillas fire exactly
    /// those two ancillas — no more, no fewer.
    #[test]
    fn correction_paths_connect_exactly_their_endpoints(d in arb_distance(), ai in any::<prop::sample::Index>(), bi in any::<prop::sample::Index>()) {
        let lattice = Lattice::new(d).unwrap();
        for sector in Sector::ALL {
            let ancillas: Vec<usize> = lattice.ancillas_in_sector(sector).collect();
            let a = ancillas[ai.index(ancillas.len())];
            let b = ancillas[bi.index(ancillas.len())];
            if a == b {
                continue;
            }
            let path = lattice.correction_path(a, b);
            let pauli = match sector {
                Sector::X => Pauli::Z,
                Sector::Z => Pauli::X,
            };
            let error = PauliString::from_sparse(lattice.num_data(), &path, pauli);
            let syndrome = lattice.syndrome_of(&error);
            let mut defects = lattice.defects(&syndrome, sector);
            defects.sort_unstable();
            let mut expected = vec![a, b];
            expected.sort_unstable();
            prop_assert_eq!(defects, expected);
        }
    }

    /// The weight of any error pattern bounds the number of defects it can
    /// create (each error touches at most 2 same-sector stabilizers).
    #[test]
    fn defect_count_is_bounded_by_twice_error_weight(d in arb_distance(), support in prop::collection::vec(0usize..1000, 0..30)) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = support.into_iter().map(|q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let defects = lattice.defects(&syndrome, Sector::X);
        prop_assert!(defects.len() <= 2 * error.weight());
    }

    /// Boundary paths always clear their own defect.
    #[test]
    fn boundary_paths_clear_their_defect(d in arb_distance(), ai in any::<prop::sample::Index>()) {
        let lattice = Lattice::new(d).unwrap();
        let ancillas: Vec<usize> = lattice.ancillas_in_sector(Sector::X).collect();
        let a = ancillas[ai.index(ancillas.len())];
        let path = lattice.boundary_path(a);
        prop_assert_eq!(path.len(), lattice.boundary_distance(a));
        let error = PauliString::from_sparse(lattice.num_data(), &path, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        prop_assert_eq!(lattice.defects(&syndrome, Sector::X), vec![a]);
    }

    /// Ancilla distances obey the triangle inequality.
    #[test]
    fn ancilla_distance_triangle_inequality(d in arb_distance(), idx in prop::collection::vec(any::<prop::sample::Index>(), 3)) {
        let lattice = Lattice::new(d).unwrap();
        let ancillas: Vec<usize> = lattice.ancillas_in_sector(Sector::X).collect();
        let a = ancillas[idx[0].index(ancillas.len())];
        let b = ancillas[idx[1].index(ancillas.len())];
        let c = ancillas[idx[2].index(ancillas.len())];
        prop_assert!(
            lattice.ancilla_distance(a, c)
                <= lattice.ancilla_distance(a, b) + lattice.ancilla_distance(b, c)
        );
    }

    /// Bit-packing a syndrome and unpacking it recovers the original exactly,
    /// for arbitrary bit patterns at arbitrary lengths (including word
    /// boundaries).
    #[test]
    fn packed_syndrome_round_trips(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let syndrome: Syndrome = bits.into_iter().collect();
        let packed = PackedSyndrome::from_syndrome(&syndrome);
        prop_assert_eq!(packed.len(), syndrome.len());
        prop_assert_eq!(packed.weight(), syndrome.weight());
        prop_assert_eq!(packed.any_hot(), syndrome.any_hot());
        prop_assert_eq!(packed.to_syndrome(), syndrome);
    }

    /// The popcount-based defect iteration visits exactly the hot indices of
    /// the unpacked syndrome, in ascending order.
    #[test]
    fn packed_defect_iteration_matches_hot_indices(hot in prop::collection::vec(0usize..300, 0..40), len in 1usize..300) {
        let hot: Vec<usize> = hot.into_iter().map(|i| i % len).collect();
        let syndrome = Syndrome::from_hot(len, &hot);
        let packed = PackedSyndrome::from_syndrome(&syndrome);
        prop_assert_eq!(packed.defect_indices().collect::<Vec<_>>(), syndrome.hot_indices());
    }

    /// Serializing a packed syndrome through raw words (as the runtime's ring
    /// buffer does) is lossless.
    #[test]
    fn packed_syndrome_survives_word_transport(bits in prop::collection::vec(any::<bool>(), 1..200)) {
        let syndrome: Syndrome = bits.into_iter().collect();
        let packed = PackedSyndrome::from_syndrome(&syndrome);
        let words = packed.words().to_vec();
        let restored = PackedSyndrome::from_words(packed.len(), words);
        prop_assert_eq!(&restored, &packed);
        prop_assert_eq!(restored.to_syndrome(), syndrome);
    }

    /// Syndromes extracted from real error patterns round-trip through the
    /// packed representation on every lattice size.
    #[test]
    fn packed_syndrome_round_trips_on_lattices(d in arb_distance(), support in prop::collection::vec(0usize..1000, 0..30)) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = support.into_iter().map(|q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let packed = PackedSyndrome::from_syndrome(&syndrome);
        prop_assert_eq!(packed.to_syndrome(), syndrome.clone());
        // Defect extraction through the packed path agrees with the lattice's.
        let hot: Vec<usize> = packed.defect_indices().collect();
        let mut lattice_defects = lattice.defects(&syndrome, Sector::X);
        lattice_defects.extend(lattice.defects(&syndrome, Sector::Z));
        lattice_defects.sort_unstable();
        prop_assert_eq!(hot, lattice_defects);
    }
}
