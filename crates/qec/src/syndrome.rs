//! Error syndromes and detection events.
//!
//! The error syndrome of the surface code is "a bit string of length equal to
//! the total number of ancilla qubits" (Section II-C1 of the paper).  Ancillas
//! reporting a `+1` measurement are called *hot syndromes* or *detection
//! events*; decoding maps the hot syndromes to a set of corrections.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A full error syndrome: one bit per ancilla qubit.
///
/// Bit `i` corresponds to the ancilla with index `i` in the owning
/// [`Lattice`](crate::lattice::Lattice); `true` means the ancilla reported a
/// detection event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Syndrome {
    bits: Vec<bool>,
}

impl Syndrome {
    /// Creates an all-clear syndrome of the given length.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Syndrome {
            bits: vec![false; len],
        }
    }

    /// Creates a syndrome from an explicit bit vector.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Syndrome { bits }
    }

    /// Creates a syndrome of length `len` with the listed ancillas hot.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_hot(len: usize, hot: &[usize]) -> Self {
        let mut s = Syndrome::new(len);
        for &i in hot {
            s.set(i, true);
        }
        s
    }

    /// The number of ancilla bits in the syndrome.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the syndrome has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns `true` if ancilla `index` reported a detection event.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn is_hot(&self, index: usize) -> bool {
        self.bits[index]
    }

    /// Sets the detection bit of ancilla `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, hot: bool) {
        self.bits[index] = hot;
    }

    /// Flips the detection bit of ancilla `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip(&mut self, index: usize) {
        self.bits[index] = !self.bits[index];
    }

    /// Returns `true` if any ancilla reported a detection event.
    #[must_use]
    pub fn any_hot(&self) -> bool {
        self.bits.iter().any(|&b| b)
    }

    /// The number of hot ancillas.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Indices of the hot ancillas, in ascending order.
    #[must_use]
    pub fn hot_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }

    /// XORs another syndrome into this one (symmetric difference of hot sets).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &Syndrome) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot xor syndromes of lengths {} and {}",
            self.len(),
            other.len()
        );
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a ^= *b;
        }
    }

    /// Returns the XOR of two syndromes as a new syndrome.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor(&self, other: &Syndrome) -> Syndrome {
        let mut out = self.clone();
        out.xor_with(other);
        out
    }

    /// Iterates over the detection bits in ancilla-index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// A view of the raw bit vector.
    #[must_use]
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Syndrome {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Syndrome {
            bits: iter.into_iter().collect(),
        }
    }
}

/// A bit-packed syndrome: one bit per ancilla, stored in `u64` words.
///
/// [`Syndrome`] stores one `bool` per ancilla, which is convenient for the
/// decoders but wasteful on the wire: the streaming runtime moves syndromes
/// through a lock-free ring buffer whose slots are fixed arrays of `u64`
/// words, so a d=9 syndrome (144 ancillas) packs into three words instead of
/// 144 bytes.  `PackedSyndrome` is the transport representation; it
/// round-trips losslessly with [`Syndrome`] and iterates its detection
/// events with popcount/trailing-zeros scans rather than a per-bit walk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PackedSyndrome {
    len: usize,
    words: Vec<u64>,
}

impl PackedSyndrome {
    /// The number of `u64` words needed to pack `len` ancilla bits.
    #[must_use]
    pub fn words_for(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// Creates an all-clear packed syndrome of the given bit length.
    #[must_use]
    pub fn new(len: usize) -> Self {
        PackedSyndrome {
            len,
            words: vec![0; Self::words_for(len)],
        }
    }

    /// Packs an unpacked [`Syndrome`].
    #[must_use]
    pub fn from_syndrome(syndrome: &Syndrome) -> Self {
        let mut packed = PackedSyndrome::new(syndrome.len());
        for (i, hot) in syndrome.iter().enumerate() {
            if hot {
                packed.words[i / 64] |= 1 << (i % 64);
            }
        }
        packed
    }

    /// Reconstructs a packed syndrome from raw words (e.g. read back out of
    /// a ring-buffer slot).  Bits beyond `len` in the last word are masked
    /// off, so slot padding cannot leak into the syndrome.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from [`PackedSyndrome::words_for`]`(len)`.
    #[must_use]
    pub fn from_words(len: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            Self::words_for(len),
            "expected {} words for {len} bits, got {}",
            Self::words_for(len),
            words.len()
        );
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        PackedSyndrome { len, words }
    }

    /// Unpacks back into a [`Syndrome`].
    #[must_use]
    pub fn to_syndrome(&self) -> Syndrome {
        (0..self.len).map(|i| self.is_hot(i)).collect()
    }

    /// Unpacks into an existing [`Syndrome`] buffer without allocating.
    ///
    /// The buffer is resized to this syndrome's bit length (a no-op in a
    /// steady-state loop where the length never changes).
    pub fn write_to_syndrome(&self, out: &mut Syndrome) {
        out.bits.clear();
        out.bits.extend((0..self.len).map(|i| self.is_hot(i)));
    }

    /// Overwrites this packed syndrome from raw words, reusing the existing
    /// allocation — the allocation-free counterpart of
    /// [`PackedSyndrome::from_words`].  Bits beyond `len` in the last word
    /// are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from
    /// [`PackedSyndrome::words_for`]`(self.len())`.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            Self::words_for(self.len),
            "expected {} words for {} bits, got {}",
            Self::words_for(self.len),
            self.len,
            words.len()
        );
        self.words.copy_from_slice(words);
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// The number of ancilla bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the syndrome has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if ancilla `index` reported a detection event.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn is_hot(&self, index: usize) -> bool {
        assert!(index < self.len, "bit {index} out of range {}", self.len);
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Sets the detection bit of ancilla `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, hot: bool) {
        assert!(index < self.len, "bit {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if hot {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// The number of hot ancillas (one `popcount` per word).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if any ancilla reported a detection event.
    #[must_use]
    pub fn any_hot(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// The packed words, least-significant bit first.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the hot ancilla indices in ascending order using
    /// trailing-zeros scans (skipping clear words wholesale), as the
    /// riscv-qcu style streaming pipelines do.
    #[must_use]
    pub fn defect_indices(&self) -> DefectIndices<'_> {
        DefectIndices {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// XORs another packed syndrome into this one.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &PackedSyndrome) {
        assert_eq!(
            self.len, other.len,
            "cannot xor packed syndromes of lengths {} and {}",
            self.len, other.len
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }
}

impl From<&Syndrome> for PackedSyndrome {
    fn from(syndrome: &Syndrome) -> Self {
        PackedSyndrome::from_syndrome(syndrome)
    }
}

impl From<&PackedSyndrome> for Syndrome {
    fn from(packed: &PackedSyndrome) -> Self {
        packed.to_syndrome()
    }
}

impl fmt::Display for PackedSyndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.is_hot(i)))?;
        }
        Ok(())
    }
}

/// Iterator over the hot bit indices of a [`PackedSyndrome`].
///
/// Produced by [`PackedSyndrome::defect_indices`]; yields indices in
/// ascending order by clearing the lowest set bit of each word in turn.
#[derive(Debug, Clone)]
pub struct DefectIndices<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for DefectIndices<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

/// Detection events accumulated across multiple stabilizer-measurement rounds.
///
/// In a lifetime (Monte-Carlo) simulation, each full iteration of the
/// stabilizer circuit is one *cycle* (Section VII).  With noisy measurements
/// a detection event is a *change* of an ancilla's value between consecutive
/// rounds rather than the raw value itself; this type records per-round
/// events for decoders that consume space-time syndromes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectionEvents {
    rounds: Vec<Syndrome>,
}

impl DetectionEvents {
    /// Creates an empty record.
    #[must_use]
    pub fn new() -> Self {
        DetectionEvents { rounds: Vec::new() }
    }

    /// Appends the detection events of one measurement round.
    pub fn push_round(&mut self, events: Syndrome) {
        self.rounds.push(events);
    }

    /// The number of recorded rounds.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The detection events of round `round`, if recorded.
    #[must_use]
    pub fn round(&self, round: usize) -> Option<&Syndrome> {
        self.rounds.get(round)
    }

    /// Collapses all rounds into a single syndrome by XOR.
    ///
    /// For code-capacity simulations with perfect measurements this recovers
    /// the ordinary spatial syndrome.
    #[must_use]
    pub fn collapse(&self) -> Syndrome {
        let Some(first) = self.rounds.first() else {
            return Syndrome::new(0);
        };
        let mut acc = first.clone();
        for round in &self.rounds[1..] {
            acc.xor_with(round);
        }
        acc
    }

    /// Total number of detection events across all rounds.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.rounds.iter().map(Syndrome::weight).sum()
    }

    /// Iterates over the recorded rounds.
    pub fn iter(&self) -> impl Iterator<Item = &Syndrome> {
        self.rounds.iter()
    }
}

impl FromIterator<Syndrome> for DetectionEvents {
    fn from_iter<T: IntoIterator<Item = Syndrome>>(iter: T) -> Self {
        DetectionEvents {
            rounds: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_syndrome_is_all_clear() {
        let s = Syndrome::new(12);
        assert_eq!(s.len(), 12);
        assert!(!s.any_hot());
        assert_eq!(s.weight(), 0);
        assert!(s.hot_indices().is_empty());
    }

    #[test]
    fn set_flip_and_query() {
        let mut s = Syndrome::new(4);
        s.set(1, true);
        s.flip(3);
        s.flip(3);
        assert!(s.is_hot(1));
        assert!(!s.is_hot(3));
        assert_eq!(s.weight(), 1);
        assert_eq!(s.hot_indices(), vec![1]);
        assert_eq!(s.to_string(), "0100");
    }

    #[test]
    fn from_hot_builds_expected_pattern() {
        let s = Syndrome::from_hot(6, &[0, 5]);
        assert_eq!(s.hot_indices(), vec![0, 5]);
        assert_eq!(s.weight(), 2);
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let a = Syndrome::from_hot(5, &[0, 1, 3]);
        let b = Syndrome::from_hot(5, &[1, 4]);
        let c = a.xor(&b);
        assert_eq!(c.hot_indices(), vec![0, 3, 4]);
        // XOR with itself clears everything.
        assert!(!a.xor(&a).any_hot());
    }

    #[test]
    #[should_panic(expected = "cannot xor")]
    fn xor_length_mismatch_panics() {
        let mut a = Syndrome::new(3);
        let b = Syndrome::new(4);
        a.xor_with(&b);
    }

    #[test]
    fn collect_from_iterator() {
        let s: Syndrome = [true, false, true].into_iter().collect();
        assert_eq!(s.weight(), 2);
    }

    #[test]
    fn detection_events_collapse() {
        let mut events = DetectionEvents::new();
        events.push_round(Syndrome::from_hot(4, &[0, 2]));
        events.push_round(Syndrome::from_hot(4, &[2, 3]));
        assert_eq!(events.num_rounds(), 2);
        assert_eq!(events.total_events(), 4);
        let collapsed = events.collapse();
        assert_eq!(collapsed.hot_indices(), vec![0, 3]);
    }

    #[test]
    fn empty_detection_events_collapse_to_empty() {
        let events = DetectionEvents::new();
        assert!(events.is_empty());
        assert_eq!(events.collapse().len(), 0);
    }

    #[test]
    fn packed_round_trip_preserves_everything() {
        let s = Syndrome::from_hot(130, &[0, 1, 63, 64, 65, 127, 128, 129]);
        let packed = PackedSyndrome::from_syndrome(&s);
        assert_eq!(packed.len(), 130);
        assert_eq!(packed.weight(), s.weight());
        assert_eq!(packed.to_syndrome(), s);
        assert_eq!(packed.defect_indices().collect::<Vec<_>>(), s.hot_indices());
        assert_eq!(packed.to_string(), s.to_string());
    }

    #[test]
    fn packed_word_counts() {
        assert_eq!(PackedSyndrome::words_for(0), 0);
        assert_eq!(PackedSyndrome::words_for(1), 1);
        assert_eq!(PackedSyndrome::words_for(64), 1);
        assert_eq!(PackedSyndrome::words_for(65), 2);
        assert_eq!(PackedSyndrome::new(40).words().len(), 1);
        assert_eq!(PackedSyndrome::new(144).words().len(), 3);
    }

    #[test]
    fn packed_set_and_query() {
        let mut p = PackedSyndrome::new(70);
        assert!(!p.any_hot());
        p.set(69, true);
        p.set(3, true);
        p.set(3, false);
        assert!(p.is_hot(69));
        assert!(!p.is_hot(3));
        assert_eq!(p.weight(), 1);
        assert_eq!(p.defect_indices().collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn packed_from_words_masks_slot_padding() {
        // A 40-bit syndrome read out of a 64-bit slot word with garbage in the
        // upper 24 bits must come back clean.
        let p = PackedSyndrome::from_words(40, vec![u64::MAX]);
        assert_eq!(p.weight(), 40);
        assert!(p.defect_indices().all(|i| i < 40));
        let via_conversion: Syndrome = (&p).into();
        assert_eq!(via_conversion.weight(), 40);
    }

    #[test]
    #[should_panic(expected = "expected 2 words")]
    fn packed_from_words_rejects_wrong_word_count() {
        let _ = PackedSyndrome::from_words(65, vec![0]);
    }

    #[test]
    fn packed_xor_matches_unpacked_xor() {
        let a = Syndrome::from_hot(100, &[0, 50, 99]);
        let b = Syndrome::from_hot(100, &[50, 64]);
        let mut pa = PackedSyndrome::from_syndrome(&a);
        pa.xor_with(&PackedSyndrome::from_syndrome(&b));
        assert_eq!(pa.to_syndrome(), a.xor(&b));
    }

    #[test]
    fn empty_packed_syndrome() {
        let p = PackedSyndrome::new(0);
        assert!(p.is_empty());
        assert_eq!(p.defect_indices().count(), 0);
        assert_eq!(p.to_syndrome().len(), 0);
    }
}
