//! Error syndromes and detection events.
//!
//! The error syndrome of the surface code is "a bit string of length equal to
//! the total number of ancilla qubits" (Section II-C1 of the paper).  Ancillas
//! reporting a `+1` measurement are called *hot syndromes* or *detection
//! events*; decoding maps the hot syndromes to a set of corrections.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A full error syndrome: one bit per ancilla qubit.
///
/// Bit `i` corresponds to the ancilla with index `i` in the owning
/// [`Lattice`](crate::lattice::Lattice); `true` means the ancilla reported a
/// detection event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Syndrome {
    bits: Vec<bool>,
}

impl Syndrome {
    /// Creates an all-clear syndrome of the given length.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Syndrome {
            bits: vec![false; len],
        }
    }

    /// Creates a syndrome from an explicit bit vector.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Syndrome { bits }
    }

    /// Creates a syndrome of length `len` with the listed ancillas hot.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_hot(len: usize, hot: &[usize]) -> Self {
        let mut s = Syndrome::new(len);
        for &i in hot {
            s.set(i, true);
        }
        s
    }

    /// The number of ancilla bits in the syndrome.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the syndrome has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Returns `true` if ancilla `index` reported a detection event.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn is_hot(&self, index: usize) -> bool {
        self.bits[index]
    }

    /// Sets the detection bit of ancilla `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, hot: bool) {
        self.bits[index] = hot;
    }

    /// Flips the detection bit of ancilla `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip(&mut self, index: usize) {
        self.bits[index] = !self.bits[index];
    }

    /// Returns `true` if any ancilla reported a detection event.
    #[must_use]
    pub fn any_hot(&self) -> bool {
        self.bits.iter().any(|&b| b)
    }

    /// The number of hot ancillas.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Indices of the hot ancillas, in ascending order.
    #[must_use]
    pub fn hot_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }

    /// XORs another syndrome into this one (symmetric difference of hot sets).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &Syndrome) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot xor syndromes of lengths {} and {}",
            self.len(),
            other.len()
        );
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a ^= *b;
        }
    }

    /// Returns the XOR of two syndromes as a new syndrome.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor(&self, other: &Syndrome) -> Syndrome {
        let mut out = self.clone();
        out.xor_with(other);
        out
    }

    /// Iterates over the detection bits in ancilla-index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// A view of the raw bit vector.
    #[must_use]
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Syndrome {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Syndrome {
            bits: iter.into_iter().collect(),
        }
    }
}

/// Detection events accumulated across multiple stabilizer-measurement rounds.
///
/// In a lifetime (Monte-Carlo) simulation, each full iteration of the
/// stabilizer circuit is one *cycle* (Section VII).  With noisy measurements
/// a detection event is a *change* of an ancilla's value between consecutive
/// rounds rather than the raw value itself; this type records per-round
/// events for decoders that consume space-time syndromes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectionEvents {
    rounds: Vec<Syndrome>,
}

impl DetectionEvents {
    /// Creates an empty record.
    #[must_use]
    pub fn new() -> Self {
        DetectionEvents { rounds: Vec::new() }
    }

    /// Appends the detection events of one measurement round.
    pub fn push_round(&mut self, events: Syndrome) {
        self.rounds.push(events);
    }

    /// The number of recorded rounds.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The detection events of round `round`, if recorded.
    #[must_use]
    pub fn round(&self, round: usize) -> Option<&Syndrome> {
        self.rounds.get(round)
    }

    /// Collapses all rounds into a single syndrome by XOR.
    ///
    /// For code-capacity simulations with perfect measurements this recovers
    /// the ordinary spatial syndrome.
    #[must_use]
    pub fn collapse(&self) -> Syndrome {
        let Some(first) = self.rounds.first() else {
            return Syndrome::new(0);
        };
        let mut acc = first.clone();
        for round in &self.rounds[1..] {
            acc.xor_with(round);
        }
        acc
    }

    /// Total number of detection events across all rounds.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.rounds.iter().map(Syndrome::weight).sum()
    }

    /// Iterates over the recorded rounds.
    pub fn iter(&self) -> impl Iterator<Item = &Syndrome> {
        self.rounds.iter()
    }
}

impl FromIterator<Syndrome> for DetectionEvents {
    fn from_iter<T: IntoIterator<Item = Syndrome>>(iter: T) -> Self {
        DetectionEvents {
            rounds: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_syndrome_is_all_clear() {
        let s = Syndrome::new(12);
        assert_eq!(s.len(), 12);
        assert!(!s.any_hot());
        assert_eq!(s.weight(), 0);
        assert!(s.hot_indices().is_empty());
    }

    #[test]
    fn set_flip_and_query() {
        let mut s = Syndrome::new(4);
        s.set(1, true);
        s.flip(3);
        s.flip(3);
        assert!(s.is_hot(1));
        assert!(!s.is_hot(3));
        assert_eq!(s.weight(), 1);
        assert_eq!(s.hot_indices(), vec![1]);
        assert_eq!(s.to_string(), "0100");
    }

    #[test]
    fn from_hot_builds_expected_pattern() {
        let s = Syndrome::from_hot(6, &[0, 5]);
        assert_eq!(s.hot_indices(), vec![0, 5]);
        assert_eq!(s.weight(), 2);
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let a = Syndrome::from_hot(5, &[0, 1, 3]);
        let b = Syndrome::from_hot(5, &[1, 4]);
        let c = a.xor(&b);
        assert_eq!(c.hot_indices(), vec![0, 3, 4]);
        // XOR with itself clears everything.
        assert!(!a.xor(&a).any_hot());
    }

    #[test]
    #[should_panic(expected = "cannot xor")]
    fn xor_length_mismatch_panics() {
        let mut a = Syndrome::new(3);
        let b = Syndrome::new(4);
        a.xor_with(&b);
    }

    #[test]
    fn collect_from_iterator() {
        let s: Syndrome = [true, false, true].into_iter().collect();
        assert_eq!(s.weight(), 2);
    }

    #[test]
    fn detection_events_collapse() {
        let mut events = DetectionEvents::new();
        events.push_round(Syndrome::from_hot(4, &[0, 2]));
        events.push_round(Syndrome::from_hot(4, &[2, 3]));
        assert_eq!(events.num_rounds(), 2);
        assert_eq!(events.total_events(), 4);
        let collapsed = events.collapse();
        assert_eq!(collapsed.hot_indices(), vec![0, 3]);
    }

    #[test]
    fn empty_detection_events_collapse_to_empty() {
        let events = DetectionEvents::new();
        assert!(events.is_empty());
        assert_eq!(events.collapse().len(), 0);
    }
}
