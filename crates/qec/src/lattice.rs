//! The planar surface-code lattice (Figure 2 of the paper).
//!
//! A distance-`d` planar surface code is laid out on a `(2d-1) x (2d-1)` grid
//! of physical qubits.  Cells whose row + column sum is even hold *data*
//! qubits; the remaining cells hold *ancilla* qubits that measure the X and Z
//! stabilizers of Figure 3.  For `d = 9` this gives the 289 physical qubits
//! quoted in Section VIII of the paper.
//!
//! Index conventions used throughout the workspace:
//!
//! * **Data qubits** are numbered `0..num_data()` in row-major order; Pauli
//!   strings ([`crate::pauli::PauliString`]) are indexed by data-qubit index.
//! * **Ancilla qubits** are numbered `0..num_ancillas()` in row-major order
//!   (X and Z ancillas interleaved); syndromes
//!   ([`crate::syndrome::Syndrome`]) are indexed by ancilla index.
//! * **Mesh coordinates** `(row, col)` refer to the full `(2d-1) x (2d-1)`
//!   grid and are what the SFQ decoder mesh (one module per qubit) uses.

use crate::error::QecError;
use crate::pauli::PauliString;
use crate::syndrome::Syndrome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A position on the `(2d-1) x (2d-1)` qubit grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Row index, `0..2d-1`.
    pub row: usize,
    /// Column index, `0..2d-1`.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance between two grid coordinates.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Chebyshev (L-infinity) distance between two grid coordinates.
    #[must_use]
    pub fn chebyshev(self, other: Coord) -> usize {
        self.row
            .abs_diff(other.row)
            .max(self.col.abs_diff(other.col))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// The role a physical qubit plays in the surface code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QubitKind {
    /// A data qubit holding part of the encoded logical state.
    Data,
    /// An ancilla measuring an X stabilizer (detects Z / phase errors).
    AncillaX,
    /// An ancilla measuring a Z stabilizer (detects X / bit-flip errors).
    AncillaZ,
}

impl QubitKind {
    /// Returns `true` for either kind of ancilla.
    #[must_use]
    pub fn is_ancilla(self) -> bool {
        matches!(self, QubitKind::AncillaX | QubitKind::AncillaZ)
    }
}

/// One of the two stabilizer sectors of the surface code.
///
/// The paper's headline evaluation uses the pure-dephasing channel (Z errors
/// only), which is decoded entirely in the [`Sector::X`] sector; the decoder
/// "will be operated symmetrically for both X and Z errors" (Section VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sector {
    /// The X-stabilizer sector: X ancillas detecting Z (phase) errors.
    ///
    /// Error chains in this sector terminate on the top and bottom lattice
    /// boundaries.
    X,
    /// The Z-stabilizer sector: Z ancillas detecting X (bit-flip) errors.
    ///
    /// Error chains in this sector terminate on the left and right lattice
    /// boundaries.
    Z,
}

impl Sector {
    /// Both sectors.
    pub const ALL: [Sector; 2] = [Sector::X, Sector::Z];

    /// The ancilla kind that belongs to this sector.
    #[must_use]
    pub fn ancilla_kind(self) -> QubitKind {
        match self {
            Sector::X => QubitKind::AncillaX,
            Sector::Z => QubitKind::AncillaZ,
        }
    }

    /// A stable array index for per-sector storage laid out `[X, Z]` (the
    /// order of [`Sector::ALL`]), so every `[T; 2]` sector table in the
    /// workspace indexes the same way.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Sector::X => 0,
            Sector::Z => 1,
        }
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sector::X => write!(f, "X"),
            Sector::Z => write!(f, "Z"),
        }
    }
}

/// What occupies a given grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellInfo {
    /// The qubit kind at this cell.
    pub kind: QubitKind,
    /// The data- or ancilla-index of the qubit (depending on `kind`).
    pub index: usize,
}

/// A distance-`d` planar surface-code lattice.
///
/// The lattice owns all geometry: qubit placement, stabilizer supports,
/// boundary structure, and logical-operator representatives.  It is immutable
/// after construction and cheap to share by reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lattice {
    distance: usize,
    size: usize,
    cells: Vec<CellInfo>,
    data_coords: Vec<Coord>,
    ancilla_coords: Vec<Coord>,
    ancilla_kinds: Vec<QubitKind>,
    /// For each ancilla index, the data-qubit indices of its stabilizer support.
    stabilizer_supports: Vec<Vec<usize>>,
    /// Data-qubit indices of the logical-X representative (top row).
    logical_x_support: Vec<usize>,
    /// Data-qubit indices of the logical-Z representative (left column).
    logical_z_support: Vec<usize>,
}

impl Lattice {
    /// Builds a planar surface-code lattice of the given odd code distance.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidDistance`] when `distance` is even or less
    /// than 3.
    pub fn new(distance: usize) -> Result<Self, QecError> {
        if distance < 3 || distance % 2 == 0 {
            return Err(QecError::InvalidDistance { distance });
        }
        let size = 2 * distance - 1;
        let mut cells = Vec::with_capacity(size * size);
        let mut data_coords = Vec::new();
        let mut ancilla_coords = Vec::new();
        let mut ancilla_kinds = Vec::new();

        for row in 0..size {
            for col in 0..size {
                let coord = Coord::new(row, col);
                let info = if (row + col) % 2 == 0 {
                    let index = data_coords.len();
                    data_coords.push(coord);
                    CellInfo {
                        kind: QubitKind::Data,
                        index,
                    }
                } else if row % 2 == 1 {
                    // Odd row, even column: X ancilla.
                    let index = ancilla_coords.len();
                    ancilla_coords.push(coord);
                    ancilla_kinds.push(QubitKind::AncillaX);
                    CellInfo {
                        kind: QubitKind::AncillaX,
                        index,
                    }
                } else {
                    // Even row, odd column: Z ancilla.
                    let index = ancilla_coords.len();
                    ancilla_coords.push(coord);
                    ancilla_kinds.push(QubitKind::AncillaZ);
                    CellInfo {
                        kind: QubitKind::AncillaZ,
                        index,
                    }
                };
                cells.push(info);
            }
        }

        let cell_at = |row: usize, col: usize| -> &CellInfo { &cells[row * size + col] };

        let mut stabilizer_supports = vec![Vec::new(); ancilla_coords.len()];
        for (a_idx, coord) in ancilla_coords.iter().enumerate() {
            let mut support = Vec::with_capacity(4);
            let neighbors = [
                (coord.row.checked_sub(1), Some(coord.col)),
                (
                    coord.row.checked_add(1).filter(|&r| r < size),
                    Some(coord.col),
                ),
                (Some(coord.row), coord.col.checked_sub(1)),
                (
                    Some(coord.row),
                    coord.col.checked_add(1).filter(|&c| c < size),
                ),
            ];
            for (r, c) in neighbors {
                if let (Some(r), Some(c)) = (r, c) {
                    let info = cell_at(r, c);
                    debug_assert_eq!(info.kind, QubitKind::Data);
                    support.push(info.index);
                }
            }
            support.sort_unstable();
            stabilizer_supports[a_idx] = support;
        }

        // Logical X: X operators along the top row of data qubits.
        let logical_x_support: Vec<usize> = (0..size)
            .step_by(2)
            .map(|col| cell_at(0, col).index)
            .collect();
        // Logical Z: Z operators along the left column of data qubits.
        let logical_z_support: Vec<usize> = (0..size)
            .step_by(2)
            .map(|row| cell_at(row, 0).index)
            .collect();

        Ok(Lattice {
            distance,
            size,
            cells,
            data_coords,
            ancilla_coords,
            ancilla_kinds,
            stabilizer_supports,
            logical_x_support,
            logical_z_support,
        })
    }

    /// The code distance `d`.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// The side length of the qubit grid, `2d - 1`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total number of physical qubits, `(2d - 1)^2`.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.size * self.size
    }

    /// Number of data qubits, `d^2 + (d-1)^2`.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.data_coords.len()
    }

    /// Number of ancilla qubits, `2 d (d-1)`.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.ancilla_coords.len()
    }

    /// Number of ancillas in each sector, `d (d-1)` (the two sectors are
    /// always equal-sized) — the worst-case defect count decoder scratch
    /// arenas size themselves for.
    #[must_use]
    pub fn ancillas_per_sector(&self) -> usize {
        self.num_ancillas() / 2
    }

    /// Describes the qubit occupying the given grid cell.
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the grid.
    #[must_use]
    pub fn cell(&self, coord: Coord) -> CellInfo {
        assert!(
            coord.row < self.size && coord.col < self.size,
            "coordinate {coord} out of range"
        );
        self.cells[coord.row * self.size + coord.col]
    }

    /// The grid coordinate of a data qubit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_data()`.
    #[must_use]
    pub fn data_coord(&self, index: usize) -> Coord {
        self.data_coords[index]
    }

    /// The grid coordinate of an ancilla qubit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_ancillas()`.
    #[must_use]
    pub fn ancilla_coord(&self, index: usize) -> Coord {
        self.ancilla_coords[index]
    }

    /// The kind (X or Z) of an ancilla qubit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_ancillas()`.
    #[must_use]
    pub fn ancilla_kind(&self, index: usize) -> QubitKind {
        self.ancilla_kinds[index]
    }

    /// The sector an ancilla belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_ancillas()`.
    #[must_use]
    pub fn ancilla_sector(&self, index: usize) -> Sector {
        match self.ancilla_kinds[index] {
            QubitKind::AncillaX => Sector::X,
            QubitKind::AncillaZ => Sector::Z,
            QubitKind::Data => unreachable!("ancilla index refers to a data qubit"),
        }
    }

    /// Data-qubit indices measured by the given ancilla (its stabilizer support).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_ancillas()`.
    #[must_use]
    pub fn stabilizer_support(&self, index: usize) -> &[usize] {
        &self.stabilizer_supports[index]
    }

    /// Iterates over the ancilla indices belonging to one sector.
    pub fn ancillas_in_sector(&self, sector: Sector) -> impl Iterator<Item = usize> + '_ {
        let kind = sector.ancilla_kind();
        self.ancilla_kinds
            .iter()
            .enumerate()
            .filter(move |(_, k)| **k == kind)
            .map(|(i, _)| i)
    }

    /// Data-qubit indices of the logical-X representative (top row).
    #[must_use]
    pub fn logical_x_support(&self) -> &[usize] {
        &self.logical_x_support
    }

    /// Data-qubit indices of the logical-Z representative (left column).
    #[must_use]
    pub fn logical_z_support(&self) -> &[usize] {
        &self.logical_z_support
    }

    /// Computes the error syndrome of a physical error pattern.
    ///
    /// Each X ancilla reports the parity of Z components on its support; each
    /// Z ancilla reports the parity of X components.  A `true` bit is a
    /// *detection event* ("hot syndrome" in the paper's terminology).
    ///
    /// # Panics
    ///
    /// Panics if `error` is not indexed by this lattice's data qubits.
    #[must_use]
    pub fn syndrome_of(&self, error: &PauliString) -> Syndrome {
        assert_eq!(
            error.len(),
            self.num_data(),
            "error acts on {} qubits but lattice has {} data qubits",
            error.len(),
            self.num_data()
        );
        let bits = (0..self.num_ancillas())
            .map(|a| match self.ancilla_kinds[a] {
                QubitKind::AncillaX => error.z_overlap_parity(&self.stabilizer_supports[a]),
                QubitKind::AncillaZ => error.x_overlap_parity(&self.stabilizer_supports[a]),
                QubitKind::Data => unreachable!("ancilla list contains a data qubit"),
            })
            .collect();
        Syndrome::from_bits(bits)
    }

    /// The ancilla indices that fired ("hot syndromes") in a given sector.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match this lattice.
    #[must_use]
    pub fn defects(&self, syndrome: &Syndrome, sector: Sector) -> Vec<usize> {
        assert_eq!(
            syndrome.len(),
            self.num_ancillas(),
            "syndrome length {} does not match {} ancillas",
            syndrome.len(),
            self.num_ancillas()
        );
        self.ancillas_in_sector(sector)
            .filter(|&a| syndrome.is_hot(a))
            .collect()
    }

    /// Distance (number of data qubits crossed) between two same-sector ancillas.
    ///
    /// This is the graph distance in the sector's matching graph: the minimum
    /// number of single-qubit errors required to create both detection
    /// events as the endpoints of one chain.
    ///
    /// # Panics
    ///
    /// Panics if the two ancillas are not in the same sector.
    #[must_use]
    pub fn ancilla_distance(&self, a: usize, b: usize) -> usize {
        assert_eq!(
            self.ancilla_kinds[a], self.ancilla_kinds[b],
            "ancilla distance is only defined within one sector"
        );
        let ca = self.ancilla_coords[a];
        let cb = self.ancilla_coords[b];
        ca.manhattan(cb) / 2
    }

    /// Distance from an ancilla to the *nearest* boundary of its sector,
    /// measured in data qubits crossed.
    ///
    /// X-sector chains terminate on the top/bottom boundaries, Z-sector
    /// chains on the left/right boundaries.
    #[must_use]
    pub fn boundary_distance(&self, ancilla: usize) -> usize {
        let coord = self.ancilla_coords[ancilla];
        match self.ancilla_kinds[ancilla] {
            QubitKind::AncillaX => {
                let to_top = coord.row.div_ceil(2);
                let to_bottom = (self.size - coord.row) / 2;
                to_top.min(to_bottom)
            }
            QubitKind::AncillaZ => {
                let to_left = coord.col.div_ceil(2);
                let to_right = (self.size - coord.col) / 2;
                to_left.min(to_right)
            }
            QubitKind::Data => unreachable!("ancilla index refers to a data qubit"),
        }
    }

    /// Data qubits along a canonical (L-shaped) correction path between two
    /// same-sector ancillas.
    ///
    /// The path first moves vertically from `a` to the row of `b`, then
    /// horizontally to `b`; it contains exactly [`Lattice::ancilla_distance`]
    /// data qubits.
    ///
    /// # Panics
    ///
    /// Panics if the ancillas are not in the same sector.
    #[must_use]
    pub fn correction_path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = Vec::new();
        self.for_each_correction_path_qubit(a, b, |q| path.push(q));
        path
    }

    /// Visits the data qubits of the canonical correction path between two
    /// same-sector ancillas without allocating (the path-walking core of
    /// [`Lattice::correction_path`]).
    ///
    /// # Panics
    ///
    /// Panics if the ancillas are not in the same sector.
    pub fn for_each_correction_path_qubit(&self, a: usize, b: usize, mut f: impl FnMut(usize)) {
        assert_eq!(
            self.ancilla_kinds[a], self.ancilla_kinds[b],
            "correction paths are only defined within one sector"
        );
        let ca = self.ancilla_coords[a];
        let cb = self.ancilla_coords[b];
        // Vertical leg: from ca.row to cb.row along column ca.col.
        let (mut row, target_row) = (ca.row, cb.row);
        while row != target_row {
            let next = if row < target_row { row + 2 } else { row - 2 };
            let mid_row = (row + next) / 2;
            f(self.cell(Coord::new(mid_row, ca.col)).index);
            row = next;
        }
        // Horizontal leg: from ca.col to cb.col along row target_row.
        let (mut col, target_col) = (ca.col, cb.col);
        while col != target_col {
            let next = if col < target_col { col + 2 } else { col - 2 };
            let mid_col = (col + next) / 2;
            f(self.cell(Coord::new(target_row, mid_col)).index);
            col = next;
        }
    }

    /// Data qubits along the canonical path from an ancilla to its nearest
    /// sector boundary.
    ///
    /// The path contains exactly [`Lattice::boundary_distance`] data qubits.
    #[must_use]
    pub fn boundary_path(&self, ancilla: usize) -> Vec<usize> {
        let mut path = Vec::new();
        self.for_each_boundary_path_qubit(ancilla, |q| path.push(q));
        path
    }

    /// Visits the data qubits of the canonical path from an ancilla to its
    /// nearest sector boundary without allocating (the path-walking core of
    /// [`Lattice::boundary_path`]).
    pub fn for_each_boundary_path_qubit(&self, ancilla: usize, mut f: impl FnMut(usize)) {
        let coord = self.ancilla_coords[ancilla];
        match self.ancilla_kinds[ancilla] {
            QubitKind::AncillaX => {
                let to_top = coord.row.div_ceil(2);
                let to_bottom = (self.size - coord.row) / 2;
                if to_top <= to_bottom {
                    let mut row = coord.row;
                    loop {
                        f(self.cell(Coord::new(row - 1, coord.col)).index);
                        if row < 2 {
                            break;
                        }
                        row -= 2;
                    }
                } else {
                    let mut row = coord.row;
                    while row + 1 < self.size {
                        f(self.cell(Coord::new(row + 1, coord.col)).index);
                        row += 2;
                    }
                }
            }
            QubitKind::AncillaZ => {
                let to_left = coord.col.div_ceil(2);
                let to_right = (self.size - coord.col) / 2;
                if to_left <= to_right {
                    let mut col = coord.col;
                    loop {
                        f(self.cell(Coord::new(coord.row, col - 1)).index);
                        if col < 2 {
                            break;
                        }
                        col -= 2;
                    }
                } else {
                    let mut col = coord.col;
                    while col + 1 < self.size {
                        f(self.cell(Coord::new(coord.row, col + 1)).index);
                        col += 2;
                    }
                }
            }
            QubitKind::Data => unreachable!("ancilla index refers to a data qubit"),
        }
    }

    /// Visits the hot ancillas of one sector in ascending index order without
    /// allocating (the defect-scan core of [`Lattice::defects`]).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match this lattice.
    pub fn for_each_defect(&self, syndrome: &Syndrome, sector: Sector, mut f: impl FnMut(usize)) {
        assert_eq!(
            syndrome.len(),
            self.num_ancillas(),
            "syndrome length {} does not match {} ancillas",
            syndrome.len(),
            self.num_ancillas()
        );
        let kind = sector.ancilla_kind();
        for (a, &k) in self.ancilla_kinds.iter().enumerate() {
            if k == kind && syndrome.is_hot(a) {
                f(a);
            }
        }
    }

    /// Returns `true` if `operator` triggers no detection event in `sector`,
    /// i.e. it commutes with every stabilizer of that sector.
    ///
    /// This is the allocation-free equivalent of checking that
    /// [`Lattice::defects`] on [`Lattice::syndrome_of`]`(operator)` is empty
    /// for one sector, with early exit on the first hot stabilizer.
    ///
    /// # Panics
    ///
    /// Panics if `operator` is not indexed by this lattice's data qubits.
    #[must_use]
    pub fn sector_is_clear(&self, operator: &PauliString, sector: Sector) -> bool {
        assert_eq!(
            operator.len(),
            self.num_data(),
            "operator acts on {} qubits but lattice has {} data qubits",
            operator.len(),
            self.num_data()
        );
        let kind = sector.ancilla_kind();
        for (a, &k) in self.ancilla_kinds.iter().enumerate() {
            if k != kind {
                continue;
            }
            let hot = match kind {
                QubitKind::AncillaX => operator.z_overlap_parity(&self.stabilizer_supports[a]),
                QubitKind::AncillaZ => operator.x_overlap_parity(&self.stabilizer_supports[a]),
                QubitKind::Data => unreachable!("ancilla list contains a data qubit"),
            };
            if hot {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::{Pauli, PauliString};

    #[test]
    fn rejects_invalid_distances() {
        assert!(Lattice::new(0).is_err());
        assert!(Lattice::new(1).is_err());
        assert!(Lattice::new(2).is_err());
        assert!(Lattice::new(4).is_err());
        assert!(Lattice::new(3).is_ok());
        assert!(Lattice::new(9).is_ok());
    }

    #[test]
    fn qubit_counts_match_formulas() {
        for d in [3, 5, 7, 9] {
            let lat = Lattice::new(d).unwrap();
            assert_eq!(lat.num_qubits(), (2 * d - 1) * (2 * d - 1));
            assert_eq!(lat.num_data(), d * d + (d - 1) * (d - 1));
            assert_eq!(lat.num_ancillas(), 2 * d * (d - 1));
            assert_eq!(
                lat.ancillas_in_sector(Sector::X).count(),
                d * (d - 1),
                "x ancilla count at d={d}"
            );
            assert_eq!(lat.ancillas_in_sector(Sector::Z).count(), d * (d - 1));
        }
    }

    #[test]
    fn distance_nine_has_289_qubits_as_in_paper() {
        let lat = Lattice::new(9).unwrap();
        assert_eq!(lat.num_qubits(), 289);
    }

    #[test]
    fn stabilizer_supports_have_two_to_four_qubits() {
        let lat = Lattice::new(5).unwrap();
        for a in 0..lat.num_ancillas() {
            let support = lat.stabilizer_support(a);
            assert!(
                (2..=4).contains(&support.len()),
                "ancilla {a} has support of size {}",
                support.len()
            );
            // Interior ancillas have weight-4 stabilizers.
            let c = lat.ancilla_coord(a);
            if c.row > 0 && c.row + 1 < lat.size() && c.col > 0 && c.col + 1 < lat.size() {
                assert_eq!(support.len(), 4);
            }
        }
    }

    #[test]
    fn single_z_error_fires_adjacent_x_ancillas_only() {
        let lat = Lattice::new(3).unwrap();
        // Central data qubit.
        let center = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[center], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let x_defects = lat.defects(&syndrome, Sector::X);
        let z_defects = lat.defects(&syndrome, Sector::Z);
        assert_eq!(
            x_defects.len(),
            2,
            "an interior Z error fires two X ancillas"
        );
        assert!(z_defects.is_empty(), "a Z error never fires Z ancillas");
        for a in x_defects {
            assert!(lat.stabilizer_support(a).contains(&center));
        }
    }

    #[test]
    fn single_x_error_fires_adjacent_z_ancillas_only() {
        let lat = Lattice::new(3).unwrap();
        let center = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[center], Pauli::X);
        let syndrome = lat.syndrome_of(&error);
        assert_eq!(lat.defects(&syndrome, Sector::Z).len(), 2);
        assert!(lat.defects(&syndrome, Sector::X).is_empty());
    }

    #[test]
    fn y_error_fires_both_sectors() {
        let lat = Lattice::new(3).unwrap();
        let center = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[center], Pauli::Y);
        let syndrome = lat.syndrome_of(&error);
        assert_eq!(lat.defects(&syndrome, Sector::X).len(), 2);
        assert_eq!(lat.defects(&syndrome, Sector::Z).len(), 2);
    }

    #[test]
    fn chain_of_errors_only_fires_endpoints() {
        // The Figure 4 scenario: a horizontal chain of Z errors fires only the
        // X ancillas at the ends of the chain.
        let lat = Lattice::new(5).unwrap();
        // Z errors on data qubits (3, 2), (3, 4): both adjacent to X ancilla (3, 3)?
        // Use a vertical chain: data (2, 4), (4, 4) share X ancilla (3, 4).
        let q1 = lat.cell(Coord::new(2, 4)).index;
        let q2 = lat.cell(Coord::new(4, 4)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q1, q2], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let defects = lat.defects(&syndrome, Sector::X);
        assert_eq!(
            defects.len(),
            2,
            "a two-qubit chain has two endpoint defects"
        );
        // The shared ancilla between them must not fire.
        let shared = lat.cell(Coord::new(3, 4)).index;
        assert!(!syndrome.is_hot(shared));
    }

    #[test]
    fn logical_z_chain_is_undetected() {
        let lat = Lattice::new(5).unwrap();
        let column: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|row| lat.cell(Coord::new(row, 4)).index)
            .collect();
        assert_eq!(column.len(), 5);
        let error = PauliString::from_sparse(lat.num_data(), &column, Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        assert!(
            !syndrome.any_hot(),
            "a full vertical Z chain commutes with all stabilizers"
        );
        // ... and it anticommutes with logical X.
        assert!(error.z_overlap_parity(lat.logical_x_support()));
    }

    #[test]
    fn logical_x_chain_is_undetected() {
        let lat = Lattice::new(5).unwrap();
        let row: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|col| lat.cell(Coord::new(2, col)).index)
            .collect();
        let error = PauliString::from_sparse(lat.num_data(), &row, Pauli::X);
        let syndrome = lat.syndrome_of(&error);
        assert!(!syndrome.any_hot());
        assert!(error.x_overlap_parity(lat.logical_z_support()));
    }

    #[test]
    fn stabilizer_itself_has_trivial_syndrome_and_no_logical_effect() {
        // A Z-type stabilizer generator is Z applied on the support of a
        // Z ancilla; it must commute with every stabilizer and with logical X.
        let lat = Lattice::new(5).unwrap();
        for a in lat.ancillas_in_sector(Sector::Z) {
            let error =
                PauliString::from_sparse(lat.num_data(), lat.stabilizer_support(a), Pauli::Z);
            let syndrome = lat.syndrome_of(&error);
            assert!(!syndrome.any_hot(), "z stabilizer {a} should be undetected");
            assert!(!error.z_overlap_parity(lat.logical_x_support()));
        }
        // Similarly, an X-type stabilizer generator commutes with logical Z.
        for a in lat.ancillas_in_sector(Sector::X) {
            let error =
                PauliString::from_sparse(lat.num_data(), lat.stabilizer_support(a), Pauli::X);
            let syndrome = lat.syndrome_of(&error);
            assert!(!syndrome.any_hot(), "x stabilizer {a} should be undetected");
            assert!(!error.x_overlap_parity(lat.logical_z_support()));
        }
    }

    #[test]
    fn logical_operators_have_weight_d() {
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            assert_eq!(lat.logical_x_support().len(), d);
            assert_eq!(lat.logical_z_support().len(), d);
        }
    }

    #[test]
    fn logical_representatives_anticommute() {
        let lat = Lattice::new(5).unwrap();
        let lx = PauliString::from_sparse(lat.num_data(), lat.logical_x_support(), Pauli::X);
        let lz = PauliString::from_sparse(lat.num_data(), lat.logical_z_support(), Pauli::Z);
        // They overlap on exactly one qubit, so they anticommute.
        let overlap: Vec<_> = lat
            .logical_x_support()
            .iter()
            .filter(|q| lat.logical_z_support().contains(q))
            .collect();
        assert_eq!(overlap.len(), 1);
        let _ = (lx, lz);
    }

    #[test]
    fn ancilla_distance_is_symmetric_and_zero_on_diagonal() {
        let lat = Lattice::new(5).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        for &a in &xs {
            assert_eq!(lat.ancilla_distance(a, a), 0);
            for &b in &xs {
                assert_eq!(lat.ancilla_distance(a, b), lat.ancilla_distance(b, a));
            }
        }
    }

    #[test]
    fn correction_path_length_matches_distance() {
        let lat = Lattice::new(7).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        for &a in xs.iter().take(8) {
            for &b in xs.iter().rev().take(8) {
                let path = lat.correction_path(a, b);
                assert_eq!(path.len(), lat.ancilla_distance(a, b));
            }
        }
    }

    #[test]
    fn correction_path_connects_the_defects() {
        // Applying Z along the correction path between two X ancillas must
        // produce exactly those two detection events.
        let lat = Lattice::new(5).unwrap();
        let xs: Vec<usize> = lat.ancillas_in_sector(Sector::X).collect();
        let (a, b) = (xs[0], xs[xs.len() - 1]);
        let path = lat.correction_path(a, b);
        let error = PauliString::from_sparse(lat.num_data(), &path, Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let mut defects = lat.defects(&syndrome, Sector::X);
        defects.sort_unstable();
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(defects, expected);
    }

    #[test]
    fn boundary_path_clears_the_defect() {
        let lat = Lattice::new(5).unwrap();
        for sector in Sector::ALL {
            for a in lat.ancillas_in_sector(sector) {
                let path = lat.boundary_path(a);
                assert_eq!(path.len(), lat.boundary_distance(a), "ancilla {a}");
                let pauli = match sector {
                    Sector::X => Pauli::Z,
                    Sector::Z => Pauli::X,
                };
                let error = PauliString::from_sparse(lat.num_data(), &path, pauli);
                let syndrome = lat.syndrome_of(&error);
                assert_eq!(lat.defects(&syndrome, sector), vec![a]);
            }
        }
    }

    #[test]
    fn boundary_distance_bounds() {
        let lat = Lattice::new(9).unwrap();
        for a in 0..lat.num_ancillas() {
            let bd = lat.boundary_distance(a);
            assert!(
                bd >= 1 && bd <= lat.distance() / 2 + 1,
                "ancilla {a} boundary distance {bd}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range_panics() {
        let lat = Lattice::new(3).unwrap();
        let _ = lat.cell(Coord::new(10, 0));
    }

    #[test]
    fn coord_metrics() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.to_string(), "(1, 2)");
    }
}
