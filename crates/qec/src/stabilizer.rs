//! Stabilizer measurement circuits and syndrome extraction (Figure 3).
//!
//! Each ancilla qubit runs a small circuit every cycle: the X-stabilizer
//! ancilla is prepared, Hadamard-rotated, entangled with its four data-qubit
//! neighbours via controlled-X gates, rotated back and measured; the
//! Z-stabilizer ancilla collects parity through data-controlled CNOTs and is
//! then measured.  One full iteration of these circuits over the whole lattice
//! is a *cycle* — the unit of time for the lifetime simulations and for the
//! syndrome-generation rate in the backlog analysis.

use crate::error::QecError;
use crate::error_model::ErrorModel;
use crate::lattice::{Lattice, QubitKind};
use crate::pauli::PauliString;
use crate::syndrome::{DetectionEvents, Syndrome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reference to a physical qubit in a stabilizer circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QubitRef {
    /// A data qubit, by data-qubit index.
    Data(usize),
    /// An ancilla qubit, by ancilla index.
    Ancilla(usize),
}

/// A single operation in a stabilizer measurement circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateOp {
    /// Prepare the qubit in `|0>`.
    PrepZ(QubitRef),
    /// Apply a Hadamard gate.
    Hadamard(QubitRef),
    /// Apply a controlled-X gate.
    Cnot {
        /// Control qubit.
        control: QubitRef,
        /// Target qubit.
        target: QubitRef,
    },
    /// Measure the qubit in the Z basis.
    MeasureZ(QubitRef),
}

/// The stabilizer measurement circuit of one ancilla.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizerCircuit {
    ancilla: usize,
    kind: QubitKind,
    ops: Vec<GateOp>,
}

impl StabilizerCircuit {
    /// Builds the measurement circuit for one ancilla of the lattice.
    ///
    /// # Panics
    ///
    /// Panics if `ancilla >= lattice.num_ancillas()`.
    #[must_use]
    pub fn for_ancilla(lattice: &Lattice, ancilla: usize) -> Self {
        let kind = lattice.ancilla_kind(ancilla);
        let a = QubitRef::Ancilla(ancilla);
        let mut ops = vec![GateOp::PrepZ(a)];
        match kind {
            QubitKind::AncillaX => {
                // "X" circuit of Figure 3: H, then ancilla-controlled X on the
                // data neighbours, then H and measurement.
                ops.push(GateOp::Hadamard(a));
                for &d in lattice.stabilizer_support(ancilla) {
                    ops.push(GateOp::Cnot {
                        control: a,
                        target: QubitRef::Data(d),
                    });
                }
                ops.push(GateOp::Hadamard(a));
            }
            QubitKind::AncillaZ => {
                // "Z" circuit of Figure 3: data-controlled X onto the ancilla.
                for &d in lattice.stabilizer_support(ancilla) {
                    ops.push(GateOp::Cnot {
                        control: QubitRef::Data(d),
                        target: a,
                    });
                }
            }
            QubitKind::Data => unreachable!("ancilla index refers to a data qubit"),
        }
        ops.push(GateOp::MeasureZ(a));
        StabilizerCircuit { ancilla, kind, ops }
    }

    /// The ancilla this circuit measures.
    #[must_use]
    pub fn ancilla(&self) -> usize {
        self.ancilla
    }

    /// The kind of stabilizer (X or Z) this circuit measures.
    #[must_use]
    pub fn kind(&self) -> QubitKind {
        self.kind
    }

    /// The operations of the circuit, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[GateOp] {
        &self.ops
    }

    /// The number of time steps of the circuit.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ops.len()
    }

    /// Number of two-qubit gates in the circuit.
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, GateOp::Cnot { .. }))
            .count()
    }
}

/// How measurements behave during syndrome extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExtractionMode {
    /// Ideal code-capacity extraction: data errors only, measurements are perfect.
    ///
    /// This matches the paper's lifetime simulation of the pure dephasing
    /// channel, where the decoder handles the spatial syndrome of each cycle.
    CodeCapacity,
    /// Phenomenological extraction: each ancilla measurement is flipped with
    /// the given probability, and detection events are reported as changes
    /// between consecutive rounds.
    Phenomenological {
        /// Probability of a measurement bit flip per ancilla per round.
        measurement_error: f64,
    },
}

/// Runs repeated stabilizer-measurement cycles over a lattice.
///
/// The extractor owns the accumulated physical error (the "true" state of the
/// device) so that multi-round simulations can interleave error injection,
/// measurement, decoding and correction.
#[derive(Debug, Clone)]
pub struct SyndromeExtractor {
    mode: ExtractionMode,
    accumulated_error: PauliString,
    previous_measurement: Option<Syndrome>,
    cycles_run: u64,
}

impl SyndromeExtractor {
    /// Creates an extractor for a lattice in the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if a phenomenological
    /// measurement-error probability is outside `[0, 1]`.
    pub fn new(lattice: &Lattice, mode: ExtractionMode) -> Result<Self, QecError> {
        if let ExtractionMode::Phenomenological { measurement_error } = mode {
            if !(0.0..=1.0).contains(&measurement_error) || !measurement_error.is_finite() {
                return Err(QecError::InvalidProbability {
                    value: measurement_error,
                });
            }
        }
        Ok(SyndromeExtractor {
            mode,
            accumulated_error: PauliString::identity(lattice.num_data()),
            previous_measurement: None,
            cycles_run: 0,
        })
    }

    /// The physical error currently present on the device.
    #[must_use]
    pub fn accumulated_error(&self) -> &PauliString {
        &self.accumulated_error
    }

    /// The number of cycles run so far.
    #[must_use]
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// Injects additional physical errors (e.g. a freshly sampled channel output).
    ///
    /// # Panics
    ///
    /// Panics if `errors` has a different length than the lattice's data register.
    pub fn inject(&mut self, errors: &PauliString) {
        self.accumulated_error.compose_with(errors);
    }

    /// Applies a correction to the device state.
    ///
    /// # Panics
    ///
    /// Panics if `correction` has a different length than the lattice's data register.
    pub fn apply_correction(&mut self, correction: &PauliString) {
        self.accumulated_error.compose_with(correction);
    }

    /// Runs one full stabilizer-measurement cycle and returns the measured syndrome.
    ///
    /// In [`ExtractionMode::CodeCapacity`] the returned syndrome is exact; in
    /// [`ExtractionMode::Phenomenological`] each bit may be flipped by
    /// measurement noise, and the returned syndrome is the raw (noisy)
    /// measurement record for this round.
    pub fn measure_cycle<R: Rng + ?Sized>(&mut self, lattice: &Lattice, rng: &mut R) -> Syndrome {
        let mut syndrome = lattice.syndrome_of(&self.accumulated_error);
        if let ExtractionMode::Phenomenological { measurement_error } = self.mode {
            for i in 0..syndrome.len() {
                if rng.gen::<f64>() < measurement_error {
                    syndrome.flip(i);
                }
            }
        }
        self.cycles_run += 1;
        syndrome
    }

    /// Runs one cycle and returns *detection events*: the XOR of this round's
    /// measurement with the previous round's.
    ///
    /// For the first round the events equal the raw measurement.
    pub fn detection_events<R: Rng + ?Sized>(
        &mut self,
        lattice: &Lattice,
        rng: &mut R,
    ) -> Syndrome {
        let current = self.measure_cycle(lattice, rng);
        let events = match &self.previous_measurement {
            Some(prev) => current.xor(prev),
            None => current.clone(),
        };
        self.previous_measurement = Some(current);
        events
    }

    /// Convenience driver: inject `rounds` rounds of channel errors, recording
    /// the detection events of each round.
    pub fn run_rounds<M: ErrorModel, R: Rng + ?Sized>(
        &mut self,
        lattice: &Lattice,
        model: &M,
        rounds: usize,
        rng: &mut R,
    ) -> DetectionEvents {
        let mut events = DetectionEvents::new();
        for _ in 0..rounds {
            let fresh = model.sample(lattice, rng);
            self.inject(&fresh);
            events.push_round(self.detection_events(lattice, rng));
        }
        events
    }
}

/// Builds every ancilla's stabilizer circuit for a lattice.
#[must_use]
pub fn all_stabilizer_circuits(lattice: &Lattice) -> Vec<StabilizerCircuit> {
    (0..lattice.num_ancillas())
        .map(|a| StabilizerCircuit::for_ancilla(lattice, a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::PureDephasing;
    use crate::lattice::Sector;
    use crate::pauli::Pauli;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn x_circuit_structure_matches_figure_3() {
        let lat = Lattice::new(5).unwrap();
        let a = lat
            .ancillas_in_sector(Sector::X)
            .find(|&a| lat.stabilizer_support(a).len() == 4)
            .unwrap();
        let circuit = StabilizerCircuit::for_ancilla(&lat, a);
        assert_eq!(circuit.kind(), QubitKind::AncillaX);
        assert_eq!(circuit.two_qubit_gate_count(), 4);
        // prep + H + 4 CNOT + H + measure
        assert_eq!(circuit.depth(), 8);
        assert!(matches!(circuit.ops()[0], GateOp::PrepZ(_)));
        assert!(matches!(circuit.ops()[1], GateOp::Hadamard(_)));
        assert!(matches!(circuit.ops().last(), Some(GateOp::MeasureZ(_))));
        // All CNOTs are controlled by the ancilla for the X stabilizer.
        for op in circuit.ops() {
            if let GateOp::Cnot { control, .. } = op {
                assert_eq!(*control, QubitRef::Ancilla(a));
            }
        }
    }

    #[test]
    fn z_circuit_structure_matches_figure_3() {
        let lat = Lattice::new(5).unwrap();
        let a = lat
            .ancillas_in_sector(Sector::Z)
            .find(|&a| lat.stabilizer_support(a).len() == 4)
            .unwrap();
        let circuit = StabilizerCircuit::for_ancilla(&lat, a);
        assert_eq!(circuit.kind(), QubitKind::AncillaZ);
        assert_eq!(circuit.two_qubit_gate_count(), 4);
        // prep + 4 CNOT + measure (no Hadamards)
        assert_eq!(circuit.depth(), 6);
        for op in circuit.ops() {
            assert!(!matches!(op, GateOp::Hadamard(_)));
            if let GateOp::Cnot { target, .. } = op {
                assert_eq!(*target, QubitRef::Ancilla(a));
            }
        }
    }

    #[test]
    fn boundary_stabilizer_circuits_have_fewer_cnots() {
        let lat = Lattice::new(3).unwrap();
        let circuits = all_stabilizer_circuits(&lat);
        assert_eq!(circuits.len(), lat.num_ancillas());
        assert!(circuits.iter().any(|c| c.two_qubit_gate_count() < 4));
        for c in &circuits {
            assert_eq!(
                c.two_qubit_gate_count(),
                lat.stabilizer_support(c.ancilla()).len()
            );
        }
    }

    #[test]
    fn code_capacity_extraction_matches_direct_syndrome() {
        let lat = Lattice::new(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let model = PureDephasing::new(0.08).unwrap();
        let error = model.sample(&lat, &mut rng);
        let mut extractor = SyndromeExtractor::new(&lat, ExtractionMode::CodeCapacity).unwrap();
        extractor.inject(&error);
        let measured = extractor.measure_cycle(&lat, &mut rng);
        assert_eq!(measured, lat.syndrome_of(&error));
        assert_eq!(extractor.cycles_run(), 1);
    }

    #[test]
    fn correction_clears_accumulated_error() {
        let lat = Lattice::new(3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut extractor = SyndromeExtractor::new(&lat, ExtractionMode::CodeCapacity).unwrap();
        let error = PauliString::from_sparse(lat.num_data(), &[0, 3], Pauli::Z);
        extractor.inject(&error);
        extractor.apply_correction(&error);
        assert!(extractor.accumulated_error().is_identity());
        assert!(!extractor.measure_cycle(&lat, &mut rng).any_hot());
    }

    #[test]
    fn phenomenological_mode_rejects_bad_probability() {
        let lat = Lattice::new(3).unwrap();
        assert!(SyndromeExtractor::new(
            &lat,
            ExtractionMode::Phenomenological {
                measurement_error: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn phenomenological_detection_events_flag_measurement_flips() {
        let lat = Lattice::new(3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        // With measurement error 1.0 every bit flips every round; the first
        // round reports all-hot, the second round reports no *changes*.
        let mut extractor = SyndromeExtractor::new(
            &lat,
            ExtractionMode::Phenomenological {
                measurement_error: 1.0,
            },
        )
        .unwrap();
        let first = extractor.detection_events(&lat, &mut rng);
        assert_eq!(first.weight(), lat.num_ancillas());
        let second = extractor.detection_events(&lat, &mut rng);
        assert_eq!(second.weight(), 0);
    }

    #[test]
    fn run_rounds_records_every_round() {
        let lat = Lattice::new(3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let model = PureDephasing::new(0.02).unwrap();
        let mut extractor = SyndromeExtractor::new(&lat, ExtractionMode::CodeCapacity).unwrap();
        let events = extractor.run_rounds(&lat, &model, 5, &mut rng);
        assert_eq!(events.num_rounds(), 5);
        assert_eq!(extractor.cycles_run(), 5);
    }
}
