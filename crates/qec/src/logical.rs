//! Logical-error detection.
//!
//! After the decoder has produced a correction, the residual operator
//! (physical error composed with the correction) must be classified:
//!
//! * if the residual still triggers detection events, the correction was not
//!   even a valid pairing of the syndrome — the cycle *fails*;
//! * if the residual is undetectable but anticommutes with a logical
//!   operator, the chain crossed the lattice — a *logical error*
//!   (Section II-C2 of the paper);
//! * otherwise the correction returned the system to the correct logical
//!   state and the cycle *succeeds*.

use crate::lattice::{Lattice, Sector};
use crate::pauli::PauliString;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one decode-and-correct cycle for a single sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalState {
    /// The correction restored the logical state.
    Success,
    /// The residual operator implements a logical X or Z: the encoded
    /// information was corrupted.
    LogicalError,
    /// The correction did not even clear the syndrome (possible with the
    /// approximate decoder variants that lack reset/boundary handling).
    InvalidCorrection,
}

impl LogicalState {
    /// Returns `true` unless the state is [`LogicalState::Success`].
    ///
    /// Both logical errors and invalid corrections count as failures when
    /// estimating the logical error rate `PL`.
    #[must_use]
    pub fn is_failure(self) -> bool {
        !matches!(self, LogicalState::Success)
    }
}

impl fmt::Display for LogicalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalState::Success => write!(f, "success"),
            LogicalState::LogicalError => write!(f, "logical error"),
            LogicalState::InvalidCorrection => write!(f, "invalid correction"),
        }
    }
}

/// Classifies the residual operator left after applying a correction.
///
/// `error` is the injected physical error and `correction` the decoder's
/// output; both are Pauli strings over the lattice's data qubits.  Only the
/// components relevant to `sector` are examined (Z components for
/// [`Sector::X`], X components for [`Sector::Z`]), matching the paper's
/// symmetric, per-sector decoding.
///
/// # Panics
///
/// Panics if `error` or `correction` are not indexed by the lattice's data
/// qubits.
#[must_use]
pub fn classify_residual(
    lattice: &Lattice,
    error: &PauliString,
    correction: &PauliString,
    sector: Sector,
) -> LogicalState {
    let residual = error.composed(correction);
    let syndrome = lattice.syndrome_of(&residual);
    if !lattice.defects(&syndrome, sector).is_empty() {
        return LogicalState::InvalidCorrection;
    }
    let anticommutes = match sector {
        // Z-type residuals anticommute with the logical X representative.
        Sector::X => residual.z_overlap_parity(lattice.logical_x_support()),
        // X-type residuals anticommute with the logical Z representative.
        Sector::Z => residual.x_overlap_parity(lattice.logical_z_support()),
    };
    if anticommutes {
        LogicalState::LogicalError
    } else {
        LogicalState::Success
    }
}

/// Classifies a decode cycle across **both** sectors.
///
/// Returns the per-sector states `(x_sector, z_sector)`.
#[must_use]
pub fn classify_both_sectors(
    lattice: &Lattice,
    error: &PauliString,
    correction: &PauliString,
) -> (LogicalState, LogicalState) {
    (
        classify_residual(lattice, error, correction, Sector::X),
        classify_residual(lattice, error, correction, Sector::Z),
    )
}

/// Classifies an already-composed residual operator in one sector without
/// allocating.
///
/// Produces exactly the same state as [`classify_residual`] would for any
/// `(error, correction)` pair composing to `residual`: the stabilizer check
/// runs directly over the sector's supports ([`Lattice::sector_is_clear`])
/// instead of materializing a [`Syndrome`](crate::syndrome::Syndrome) and a
/// defect list, which makes it safe to call from allocation-free decode
/// loops.
///
/// # Panics
///
/// Panics if `residual` is not indexed by the lattice's data qubits.
#[must_use]
pub fn classify_residual_operator(
    lattice: &Lattice,
    residual: &PauliString,
    sector: Sector,
) -> LogicalState {
    if !lattice.sector_is_clear(residual, sector) {
        return LogicalState::InvalidCorrection;
    }
    let anticommutes = match sector {
        Sector::X => residual.z_overlap_parity(lattice.logical_x_support()),
        Sector::Z => residual.x_overlap_parity(lattice.logical_z_support()),
    };
    if anticommutes {
        LogicalState::LogicalError
    } else {
        LogicalState::Success
    }
}

/// Composes `error` with `correction` into the caller-provided `residual`
/// scratch buffer and classifies both sectors without allocating.
///
/// `residual`'s existing allocation is reused whenever it already holds at
/// least `error.len()` operators, so a worker can keep one scratch string per
/// lattice and classify round after round heap-free.  Returns the per-sector
/// states `(x_sector, z_sector)`, byte-identical to
/// [`classify_both_sectors`].
///
/// # Panics
///
/// Panics if `error` and `correction` act on different numbers of qubits, or
/// are not indexed by the lattice's data qubits.
pub fn classify_both_sectors_into(
    lattice: &Lattice,
    error: &PauliString,
    correction: &PauliString,
    residual: &mut PauliString,
) -> (LogicalState, LogicalState) {
    residual.copy_from(error);
    residual.compose_with(correction);
    (
        classify_residual_operator(lattice, residual, Sector::X),
        classify_residual_operator(lattice, residual, Sector::Z),
    )
}

/// Classifies a shed (identity-corrected) round from the error alone.
///
/// A shed round's residual *is* its error, so no composition scratch is
/// needed; the result matches [`classify_both_sectors`] with an identity
/// correction, allocation-free.
#[must_use]
pub fn classify_shed_round(lattice: &Lattice, error: &PauliString) -> (LogicalState, LogicalState) {
    (
        classify_residual_operator(lattice, error, Sector::X),
        classify_residual_operator(lattice, error, Sector::Z),
    )
}

/// A streaming tally of per-round residual classifications.
///
/// The decoding-backlog argument makes load-shedding tempting — drop a round
/// instead of letting the queue grow — but a shed round is an *uncorrected*
/// round, and its cost is a logical-error quantity, not just a counter.  A
/// `ResidualTally` accumulates [`classify_both_sectors`] outcomes round after
/// round (e.g. over a long streamed run, with identity corrections standing
/// in for shed rounds), so that cost can be measured instead of assumed.
///
/// Each recorded round counts exactly once, by its worst per-sector state:
/// a round with any [`LogicalState::InvalidCorrection`] sector counts as an
/// invalid correction, else a round with any [`LogicalState::LogicalError`]
/// sector counts as a logical error, else the round is a success.  Both
/// non-success states are failures (matching [`LogicalState::is_failure`]):
/// an uncleared syndrome means the round did not return to the codespace.
///
/// ```rust
/// use nisqplus_qec::lattice::{Lattice, Sector};
/// use nisqplus_qec::logical::ResidualTally;
/// use nisqplus_qec::pauli::{Pauli, PauliString};
///
/// # fn main() -> Result<(), nisqplus_qec::QecError> {
/// let lattice = Lattice::new(3)?;
/// let mut tally = ResidualTally::new();
/// let error = PauliString::from_sparse(lattice.num_data(), &[4], Pauli::Z);
/// // A decoded round: the correction undoes the error.
/// tally.record(&lattice, &error, &error.clone());
/// // A shed round: identity correction, the error goes uncorrected.
/// tally.record(&lattice, &error, &PauliString::identity(lattice.num_data()));
/// assert_eq!(tally.rounds, 2);
/// assert_eq!(tally.successes, 1);
/// assert_eq!(tally.failures(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResidualTally {
    /// Rounds recorded.
    pub rounds: u64,
    /// Rounds whose residual was trivial in both sectors.
    pub successes: u64,
    /// Rounds whose residual was undetectable but crossed the lattice in at
    /// least one sector (and no sector was an invalid correction).
    pub logical_errors: u64,
    /// Rounds where at least one sector's correction failed to clear the
    /// syndrome — the dominant outcome for shed (identity-corrected) rounds.
    pub invalid_corrections: u64,
}

impl ResidualTally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        ResidualTally::default()
    }

    /// Classifies one round's residual across both sectors and records the
    /// outcome; returns the per-sector states for callers that want them.
    ///
    /// # Panics
    ///
    /// Panics if `error` or `correction` are not indexed by the lattice's
    /// data qubits.
    pub fn record(
        &mut self,
        lattice: &Lattice,
        error: &PauliString,
        correction: &PauliString,
    ) -> (LogicalState, LogicalState) {
        let (x, z) = classify_both_sectors(lattice, error, correction);
        self.record_states(x, z);
        (x, z)
    }

    /// Records an already-classified round from its per-sector states.
    pub fn record_states(&mut self, x: LogicalState, z: LogicalState) {
        self.rounds += 1;
        let invalid = LogicalState::InvalidCorrection;
        if x == invalid || z == invalid {
            self.invalid_corrections += 1;
        } else if x == LogicalState::LogicalError || z == LogicalState::LogicalError {
            self.logical_errors += 1;
        } else {
            self.successes += 1;
        }
    }

    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: &ResidualTally) {
        self.rounds += other.rounds;
        self.successes += other.successes;
        self.logical_errors += other.logical_errors;
        self.invalid_corrections += other.invalid_corrections;
    }

    /// Failed rounds: logical errors plus invalid corrections.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.logical_errors + self.invalid_corrections
    }

    /// The fraction of recorded rounds that failed (`0.0` when empty).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.failures() as f64 / self.rounds as f64
        }
    }

    /// The fraction of recorded rounds that were undetected logical errors.
    #[must_use]
    pub fn logical_error_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Coord;
    use crate::pauli::Pauli;

    fn lattice() -> Lattice {
        Lattice::new(5).unwrap()
    }

    #[test]
    fn perfect_correction_is_success() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let correction = error.clone();
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn missing_correction_is_invalid() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let correction = PauliString::identity(lat.num_data());
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::InvalidCorrection
        );
    }

    #[test]
    fn correction_through_other_side_is_logical_error() {
        // Error and correction together form a full vertical chain.
        let lat = lattice();
        let col = 4;
        let all: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|r| lat.cell(Coord::new(r, col)).index)
            .collect();
        // The actual error is the top 2 qubits of the chain, the "correction"
        // closes the chain through the bottom, creating a logical Z.
        let error = PauliString::from_sparse(lat.num_data(), &all[..2], Pauli::Z);
        let correction = PauliString::from_sparse(lat.num_data(), &all[2..], Pauli::Z);
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::LogicalError
        );
    }

    #[test]
    fn stabilizer_equivalent_correction_is_success() {
        // Correcting an error with a different chain that differs by a
        // stabilizer (the degeneracy of Figure 4(b)/(c)) is still a success.
        let lat = lattice();
        // Z error on two data qubits adjacent to the same Z-plaquette.
        let za = lat
            .ancillas_in_sector(Sector::Z)
            .find(|&a| lat.stabilizer_support(a).len() == 4)
            .unwrap();
        let support = lat.stabilizer_support(za);
        let error = PauliString::from_sparse(lat.num_data(), &support[..2], Pauli::Z);
        let correction = PauliString::from_sparse(lat.num_data(), &support[2..], Pauli::Z);
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn x_sector_classification_uses_logical_z() {
        let lat = lattice();
        let row: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|c| lat.cell(Coord::new(2, c)).index)
            .collect();
        let error = PauliString::from_sparse(lat.num_data(), &row, Pauli::X);
        let correction = PauliString::identity(lat.num_data());
        // A full horizontal X chain is undetected but logically fatal in the Z sector.
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::Z),
            LogicalState::LogicalError
        );
        // The X sector sees nothing wrong with it.
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn both_sectors_reported_independently() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Y);
        let z_fix = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let (x_state, z_state) = classify_both_sectors(&lat, &error, &z_fix);
        assert_eq!(x_state, LogicalState::Success);
        assert_eq!(z_state, LogicalState::InvalidCorrection);
    }

    #[test]
    fn tally_counts_each_round_once_by_worst_state() {
        let mut tally = ResidualTally::new();
        tally.record_states(LogicalState::Success, LogicalState::Success);
        tally.record_states(LogicalState::LogicalError, LogicalState::Success);
        // Invalid in one sector dominates a logical error in the other.
        tally.record_states(LogicalState::LogicalError, LogicalState::InvalidCorrection);
        assert_eq!(tally.rounds, 3);
        assert_eq!(tally.successes, 1);
        assert_eq!(tally.logical_errors, 1);
        assert_eq!(tally.invalid_corrections, 1);
        assert_eq!(tally.failures(), 2);
        assert!((tally.failure_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((tally.logical_error_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tally_records_classified_residuals() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let identity = PauliString::identity(lat.num_data());
        let mut tally = ResidualTally::new();
        let (x, z) = tally.record(&lat, &error, &error.clone());
        assert_eq!((x, z), (LogicalState::Success, LogicalState::Success));
        // Shedding the round (identity correction) leaves the syndrome set.
        let (x, _) = tally.record(&lat, &error, &identity);
        assert_eq!(x, LogicalState::InvalidCorrection);
        assert_eq!(tally.rounds, 2);
        assert_eq!(tally.failures(), 1);
    }

    #[test]
    fn empty_and_absorbed_tallies() {
        let empty = ResidualTally::new();
        assert_eq!(empty.failure_rate(), 0.0);
        assert_eq!(empty.logical_error_rate(), 0.0);
        let mut a = ResidualTally {
            rounds: 3,
            successes: 2,
            logical_errors: 1,
            invalid_corrections: 0,
        };
        let b = ResidualTally {
            rounds: 2,
            successes: 0,
            logical_errors: 0,
            invalid_corrections: 2,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.failures(), 3);
    }

    #[test]
    fn streaming_classification_matches_the_allocating_path() {
        // Sweep a deterministic family of (error, correction) pairs through
        // both the allocating classifier and the scratch-buffer one; they
        // must agree state-for-state in both sectors.
        let lat = lattice();
        let n = lat.num_data();
        let mut scratch = PauliString::identity(n);
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..200 {
            let mut error = PauliString::identity(n);
            let mut correction = PauliString::identity(n);
            for _ in 0..4 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let q = (state >> 33) as usize % n;
                let p = Pauli::ERRORS[(state >> 20) as usize % 3];
                error.apply(q, p);
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let q = (state >> 33) as usize % n;
                let p = Pauli::ERRORS[(state >> 20) as usize % 3];
                correction.apply(q, p);
            }
            let expected = classify_both_sectors(&lat, &error, &correction);
            let streamed = classify_both_sectors_into(&lat, &error, &correction, &mut scratch);
            assert_eq!(streamed, expected);
            let shed_expected = classify_both_sectors(&lat, &error, &PauliString::identity(n));
            assert_eq!(classify_shed_round(&lat, &error), shed_expected);
        }
    }

    #[test]
    fn operator_classification_detects_each_state() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let detectable = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        assert_eq!(
            classify_residual_operator(&lat, &detectable, Sector::X),
            LogicalState::InvalidCorrection
        );
        let col: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|r| lat.cell(Coord::new(r, 4)).index)
            .collect();
        let logical = PauliString::from_sparse(lat.num_data(), &col, Pauli::Z);
        assert_eq!(
            classify_residual_operator(&lat, &logical, Sector::X),
            LogicalState::LogicalError
        );
        let identity = PauliString::identity(lat.num_data());
        assert_eq!(
            classify_residual_operator(&lat, &identity, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn failure_predicate() {
        assert!(!LogicalState::Success.is_failure());
        assert!(LogicalState::LogicalError.is_failure());
        assert!(LogicalState::InvalidCorrection.is_failure());
        assert_eq!(LogicalState::LogicalError.to_string(), "logical error");
    }
}
