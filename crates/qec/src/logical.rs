//! Logical-error detection.
//!
//! After the decoder has produced a correction, the residual operator
//! (physical error composed with the correction) must be classified:
//!
//! * if the residual still triggers detection events, the correction was not
//!   even a valid pairing of the syndrome — the cycle *fails*;
//! * if the residual is undetectable but anticommutes with a logical
//!   operator, the chain crossed the lattice — a *logical error*
//!   (Section II-C2 of the paper);
//! * otherwise the correction returned the system to the correct logical
//!   state and the cycle *succeeds*.

use crate::lattice::{Lattice, Sector};
use crate::pauli::PauliString;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one decode-and-correct cycle for a single sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalState {
    /// The correction restored the logical state.
    Success,
    /// The residual operator implements a logical X or Z: the encoded
    /// information was corrupted.
    LogicalError,
    /// The correction did not even clear the syndrome (possible with the
    /// approximate decoder variants that lack reset/boundary handling).
    InvalidCorrection,
}

impl LogicalState {
    /// Returns `true` unless the state is [`LogicalState::Success`].
    ///
    /// Both logical errors and invalid corrections count as failures when
    /// estimating the logical error rate `PL`.
    #[must_use]
    pub fn is_failure(self) -> bool {
        !matches!(self, LogicalState::Success)
    }
}

impl fmt::Display for LogicalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalState::Success => write!(f, "success"),
            LogicalState::LogicalError => write!(f, "logical error"),
            LogicalState::InvalidCorrection => write!(f, "invalid correction"),
        }
    }
}

/// Classifies the residual operator left after applying a correction.
///
/// `error` is the injected physical error and `correction` the decoder's
/// output; both are Pauli strings over the lattice's data qubits.  Only the
/// components relevant to `sector` are examined (Z components for
/// [`Sector::X`], X components for [`Sector::Z`]), matching the paper's
/// symmetric, per-sector decoding.
///
/// # Panics
///
/// Panics if `error` or `correction` are not indexed by the lattice's data
/// qubits.
#[must_use]
pub fn classify_residual(
    lattice: &Lattice,
    error: &PauliString,
    correction: &PauliString,
    sector: Sector,
) -> LogicalState {
    let residual = error.composed(correction);
    let syndrome = lattice.syndrome_of(&residual);
    if !lattice.defects(&syndrome, sector).is_empty() {
        return LogicalState::InvalidCorrection;
    }
    let anticommutes = match sector {
        // Z-type residuals anticommute with the logical X representative.
        Sector::X => residual.z_overlap_parity(lattice.logical_x_support()),
        // X-type residuals anticommute with the logical Z representative.
        Sector::Z => residual.x_overlap_parity(lattice.logical_z_support()),
    };
    if anticommutes {
        LogicalState::LogicalError
    } else {
        LogicalState::Success
    }
}

/// Classifies a decode cycle across **both** sectors.
///
/// Returns the per-sector states `(x_sector, z_sector)`.
#[must_use]
pub fn classify_both_sectors(
    lattice: &Lattice,
    error: &PauliString,
    correction: &PauliString,
) -> (LogicalState, LogicalState) {
    (
        classify_residual(lattice, error, correction, Sector::X),
        classify_residual(lattice, error, correction, Sector::Z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Coord;
    use crate::pauli::Pauli;

    fn lattice() -> Lattice {
        Lattice::new(5).unwrap()
    }

    #[test]
    fn perfect_correction_is_success() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let correction = error.clone();
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn missing_correction_is_invalid() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let correction = PauliString::identity(lat.num_data());
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::InvalidCorrection
        );
    }

    #[test]
    fn correction_through_other_side_is_logical_error() {
        // Error and correction together form a full vertical chain.
        let lat = lattice();
        let col = 4;
        let all: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|r| lat.cell(Coord::new(r, col)).index)
            .collect();
        // The actual error is the top 2 qubits of the chain, the "correction"
        // closes the chain through the bottom, creating a logical Z.
        let error = PauliString::from_sparse(lat.num_data(), &all[..2], Pauli::Z);
        let correction = PauliString::from_sparse(lat.num_data(), &all[2..], Pauli::Z);
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::LogicalError
        );
    }

    #[test]
    fn stabilizer_equivalent_correction_is_success() {
        // Correcting an error with a different chain that differs by a
        // stabilizer (the degeneracy of Figure 4(b)/(c)) is still a success.
        let lat = lattice();
        // Z error on two data qubits adjacent to the same Z-plaquette.
        let za = lat
            .ancillas_in_sector(Sector::Z)
            .find(|&a| lat.stabilizer_support(a).len() == 4)
            .unwrap();
        let support = lat.stabilizer_support(za);
        let error = PauliString::from_sparse(lat.num_data(), &support[..2], Pauli::Z);
        let correction = PauliString::from_sparse(lat.num_data(), &support[2..], Pauli::Z);
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn x_sector_classification_uses_logical_z() {
        let lat = lattice();
        let row: Vec<usize> = (0..lat.size())
            .step_by(2)
            .map(|c| lat.cell(Coord::new(2, c)).index)
            .collect();
        let error = PauliString::from_sparse(lat.num_data(), &row, Pauli::X);
        let correction = PauliString::identity(lat.num_data());
        // A full horizontal X chain is undetected but logically fatal in the Z sector.
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::Z),
            LogicalState::LogicalError
        );
        // The X sector sees nothing wrong with it.
        assert_eq!(
            classify_residual(&lat, &error, &correction, Sector::X),
            LogicalState::Success
        );
    }

    #[test]
    fn both_sectors_reported_independently() {
        let lat = lattice();
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Y);
        let z_fix = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let (x_state, z_state) = classify_both_sectors(&lat, &error, &z_fix);
        assert_eq!(x_state, LogicalState::Success);
        assert_eq!(z_state, LogicalState::InvalidCorrection);
    }

    #[test]
    fn failure_predicate() {
        assert!(!LogicalState::Success.is_failure());
        assert!(LogicalState::LogicalError.is_failure());
        assert!(LogicalState::InvalidCorrection.is_failure());
        assert_eq!(LogicalState::LogicalError.to_string(), "logical error");
    }
}
