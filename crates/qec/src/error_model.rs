//! Stochastic error channels used by the Monte-Carlo lifetime simulations.
//!
//! The paper's methodology section (Section VII) evaluates the decoder under
//! the **depolarizing channel** (Pauli X, Y, Z each with probability `p/3`)
//! and presents its headline results under the **pure dephasing channel**
//! (Pauli Z with probability `p`), sampled i.i.d. on every data qubit each
//! cycle.  Both channels are provided here, together with a generic biased
//! channel that interpolates between them.

use crate::error::QecError;
use crate::lattice::Lattice;
use crate::pauli::{Pauli, PauliString};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic single-qubit error channel applied i.i.d. to every data qubit.
pub trait ErrorModel {
    /// The total probability that a given data qubit suffers *some* error in
    /// one cycle.
    fn physical_error_rate(&self) -> f64;

    /// Samples the error applied to a single data qubit.
    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli;

    /// Samples an error pattern over all data qubits of a lattice.
    fn sample<R: Rng + ?Sized>(&self, lattice: &Lattice, rng: &mut R) -> PauliString {
        (0..lattice.num_data())
            .map(|_| self.sample_single(rng))
            .collect()
    }
}

fn validate_probability(p: f64) -> Result<f64, QecError> {
    if (0.0..=1.0).contains(&p) && p.is_finite() {
        Ok(p)
    } else {
        Err(QecError::InvalidProbability { value: p })
    }
}

/// The symmetric depolarizing channel: X, Y and Z each occur with probability `p/3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Depolarizing {
    p: f64,
}

impl Depolarizing {
    /// Creates a depolarizing channel of total error probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, QecError> {
        Ok(Depolarizing {
            p: validate_probability(p)?,
        })
    }

    /// The total error probability `p`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl ErrorModel for Depolarizing {
    fn physical_error_rate(&self) -> f64 {
        self.p
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let r: f64 = rng.gen();
        if r < self.p / 3.0 {
            Pauli::X
        } else if r < 2.0 * self.p / 3.0 {
            Pauli::Y
        } else if r < self.p {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

/// The pure dephasing channel: Z occurs with probability `p`, nothing else.
///
/// This is the error model under which the paper reports its accuracy
/// threshold (≈5%) and pseudo-thresholds (3.5%–5%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PureDephasing {
    p: f64,
}

impl PureDephasing {
    /// Creates a pure dephasing channel of error probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, QecError> {
        Ok(PureDephasing {
            p: validate_probability(p)?,
        })
    }

    /// The phase-flip probability `p`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl ErrorModel for PureDephasing {
    fn physical_error_rate(&self) -> f64 {
        self.p
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        if rng.gen::<f64>() < self.p {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

/// A biased Pauli channel with independent probabilities for X, Y and Z.
///
/// `BiasedChannel` generalizes both [`Depolarizing`] (`px = py = pz = p/3`)
/// and [`PureDephasing`] (`px = py = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasedChannel {
    px: f64,
    py: f64,
    pz: f64,
}

impl BiasedChannel {
    /// Creates a biased channel from individual X, Y and Z probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if any probability is outside
    /// `[0, 1]` or if they sum to more than 1.
    pub fn new(px: f64, py: f64, pz: f64) -> Result<Self, QecError> {
        validate_probability(px)?;
        validate_probability(py)?;
        validate_probability(pz)?;
        validate_probability(px + py + pz)?;
        Ok(BiasedChannel { px, py, pz })
    }

    /// The individual probabilities `(px, py, pz)`.
    #[must_use]
    pub fn probabilities(&self) -> (f64, f64, f64) {
        (self.px, self.py, self.pz)
    }
}

impl ErrorModel for BiasedChannel {
    fn physical_error_rate(&self) -> f64 {
        self.px + self.py + self.pz
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let r: f64 = rng.gen();
        if r < self.px {
            Pauli::X
        } else if r < self.px + self.py {
            Pauli::Y
        } else if r < self.px + self.py + self.pz {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn invalid_probabilities_are_rejected() {
        assert!(Depolarizing::new(-0.1).is_err());
        assert!(Depolarizing::new(1.1).is_err());
        assert!(Depolarizing::new(f64::NAN).is_err());
        assert!(PureDephasing::new(2.0).is_err());
        assert!(BiasedChannel::new(0.5, 0.5, 0.5).is_err());
        assert!(BiasedChannel::new(0.1, 0.1, 0.1).is_ok());
    }

    #[test]
    fn zero_probability_never_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PureDephasing::new(0.0).unwrap();
        for _ in 0..1000 {
            assert_eq!(model.sample_single(&mut rng), Pauli::I);
        }
    }

    #[test]
    fn unit_probability_always_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = PureDephasing::new(1.0).unwrap();
        for _ in 0..100 {
            assert_eq!(model.sample_single(&mut rng), Pauli::Z);
        }
        let depol = Depolarizing::new(1.0).unwrap();
        for _ in 0..100 {
            assert_ne!(depol.sample_single(&mut rng), Pauli::I);
        }
    }

    #[test]
    fn dephasing_only_produces_z() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = PureDephasing::new(0.5).unwrap();
        for _ in 0..1000 {
            let p = model.sample_single(&mut rng);
            assert!(p == Pauli::I || p == Pauli::Z);
        }
    }

    #[test]
    fn empirical_rates_are_close_to_nominal() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = Depolarizing::new(0.3).unwrap();
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let idx = match model.sample_single(&mut rng) {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            };
            counts[idx] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.7).abs() < 0.01);
        for &c in &counts[1..] {
            assert!((frac(c) - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn sample_covers_all_data_qubits() {
        let lattice = Lattice::new(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = Depolarizing::new(0.2).unwrap();
        let error = model.sample(&lattice, &mut rng);
        assert_eq!(error.len(), lattice.num_data());
    }

    #[test]
    fn biased_channel_matches_components() {
        let model = BiasedChannel::new(0.0, 0.0, 0.25).unwrap();
        assert!((model.physical_error_rate() - 0.25).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..500 {
            let p = model.sample_single(&mut rng);
            assert!(p == Pauli::I || p == Pauli::Z);
        }
        assert_eq!(model.probabilities(), (0.0, 0.0, 0.25));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let lattice = Lattice::new(7).unwrap();
        let model = Depolarizing::new(0.1).unwrap();
        let a = model.sample(&lattice, &mut ChaCha8Rng::seed_from_u64(42));
        let b = model.sample(&lattice, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
