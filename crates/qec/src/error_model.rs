//! Stochastic error channels used by the Monte-Carlo lifetime simulations.
//!
//! The paper's methodology section (Section VII) evaluates the decoder under
//! the **depolarizing channel** (Pauli X, Y, Z each with probability `p/3`)
//! and presents its headline results under the **pure dephasing channel**
//! (Pauli Z with probability `p`), sampled i.i.d. on every data qubit each
//! cycle.  Both channels are provided here, together with a generic biased
//! channel that interpolates between them.

use crate::error::QecError;
use crate::lattice::Lattice;
use crate::pauli::{Pauli, PauliString};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic single-qubit error channel applied i.i.d. to every data qubit.
pub trait ErrorModel {
    /// The total probability that a given data qubit suffers *some* error in
    /// one cycle.
    fn physical_error_rate(&self) -> f64;

    /// Samples the error applied to a single data qubit.
    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli;

    /// Samples an error pattern over all data qubits of a lattice.
    fn sample<R: Rng + ?Sized>(&self, lattice: &Lattice, rng: &mut R) -> PauliString {
        (0..lattice.num_data())
            .map(|_| self.sample_single(rng))
            .collect()
    }
}

fn validate_probability(p: f64) -> Result<f64, QecError> {
    if (0.0..=1.0).contains(&p) && p.is_finite() {
        Ok(p)
    } else {
        Err(QecError::InvalidProbability { value: p })
    }
}

/// The symmetric depolarizing channel: X, Y and Z each occur with probability `p/3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Depolarizing {
    p: f64,
}

impl Depolarizing {
    /// Creates a depolarizing channel of total error probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, QecError> {
        Ok(Depolarizing {
            p: validate_probability(p)?,
        })
    }

    /// The total error probability `p`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl ErrorModel for Depolarizing {
    fn physical_error_rate(&self) -> f64 {
        self.p
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let r: f64 = rng.gen();
        if r < self.p / 3.0 {
            Pauli::X
        } else if r < 2.0 * self.p / 3.0 {
            Pauli::Y
        } else if r < self.p {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

/// The pure dephasing channel: Z occurs with probability `p`, nothing else.
///
/// This is the error model under which the paper reports its accuracy
/// threshold (≈5%) and pseudo-thresholds (3.5%–5%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PureDephasing {
    p: f64,
}

impl PureDephasing {
    /// Creates a pure dephasing channel of error probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, QecError> {
        Ok(PureDephasing {
            p: validate_probability(p)?,
        })
    }

    /// The phase-flip probability `p`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl ErrorModel for PureDephasing {
    fn physical_error_rate(&self) -> f64 {
        self.p
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        if rng.gen::<f64>() < self.p {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

/// A biased Pauli channel with independent probabilities for X, Y and Z.
///
/// `BiasedChannel` generalizes both [`Depolarizing`] (`px = py = pz = p/3`)
/// and [`PureDephasing`] (`px = py = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasedChannel {
    px: f64,
    py: f64,
    pz: f64,
}

impl BiasedChannel {
    /// Creates a biased channel from individual X, Y and Z probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if any probability is outside
    /// `[0, 1]` or if they sum to more than 1.
    pub fn new(px: f64, py: f64, pz: f64) -> Result<Self, QecError> {
        validate_probability(px)?;
        validate_probability(py)?;
        validate_probability(pz)?;
        validate_probability(px + py + pz)?;
        Ok(BiasedChannel { px, py, pz })
    }

    /// The individual probabilities `(px, py, pz)`.
    #[must_use]
    pub fn probabilities(&self) -> (f64, f64, f64) {
        (self.px, self.py, self.pz)
    }
}

impl ErrorModel for BiasedChannel {
    fn physical_error_rate(&self) -> f64 {
        self.px + self.py + self.pz
    }

    fn sample_single<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let r: f64 = rng.gen();
        if r < self.px {
            Pauli::X
        } else if r < self.px + self.py {
            Pauli::Y
        } else if r < self.px + self.py + self.pz {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

/// How a [`DriftingErrorModel`]'s rate evolves with the round index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftKind {
    /// Linear ramp: `rate(n) = base + per_round * n`.
    Ramp {
        /// Per-round rate increment (may be negative for a cool-down ramp).
        per_round: f64,
    },
    /// Sinusoidal oscillation:
    /// `rate(n) = base + amplitude * sin(2π * n / period_rounds)`.
    Sinusoid {
        /// Peak deviation from the base rate.
        amplitude: f64,
        /// Oscillation period in rounds.
        period_rounds: f64,
    },
}

/// A pure-dephasing channel whose phase-flip probability varies with the
/// measurement-round index — noise *physics*, as opposed to the fault plane's
/// injected wire corruption.
///
/// `DriftingErrorModel` is a rate *schedule*: [`rate_at`](Self::rate_at) maps
/// a round index to an instantaneous dephasing probability (clamped to
/// `[0, 1]`), which the runtime's syndrome sources turn into a per-round
/// [`PureDephasing`] channel.  Because every dephasing channel consumes
/// exactly one RNG draw per data qubit regardless of its rate, swapping the
/// rate mid-stream never perturbs the random sequence — drifting streams stay
/// bit-for-bit reproducible from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingErrorModel {
    base: f64,
    kind: DriftKind,
}

impl DriftingErrorModel {
    /// Creates a linear ramp starting at `base` and moving by `per_round`
    /// each round.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `base` is outside `[0, 1]`
    /// and [`QecError::InvalidDriftParameter`] if `per_round` is not finite.
    pub fn ramp(base: f64, per_round: f64) -> Result<Self, QecError> {
        if !per_round.is_finite() {
            return Err(QecError::InvalidDriftParameter {
                name: "per_round",
                value: per_round,
            });
        }
        Ok(DriftingErrorModel {
            base: validate_probability(base)?,
            kind: DriftKind::Ramp { per_round },
        })
    }

    /// Creates a sinusoid oscillating around `base` with the given peak
    /// `amplitude` and `period_rounds`.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidProbability`] if `base` is outside `[0, 1]`
    /// and [`QecError::InvalidDriftParameter`] if `amplitude` is negative or
    /// not finite, or `period_rounds` is not strictly positive and finite.
    pub fn sinusoid(base: f64, amplitude: f64, period_rounds: f64) -> Result<Self, QecError> {
        if !amplitude.is_finite() || amplitude < 0.0 {
            return Err(QecError::InvalidDriftParameter {
                name: "amplitude",
                value: amplitude,
            });
        }
        if !period_rounds.is_finite() || period_rounds <= 0.0 {
            return Err(QecError::InvalidDriftParameter {
                name: "period_rounds",
                value: period_rounds,
            });
        }
        Ok(DriftingErrorModel {
            base: validate_probability(base)?,
            kind: DriftKind::Sinusoid {
                amplitude,
                period_rounds,
            },
        })
    }

    /// The rate at round 0 of the schedule.
    #[must_use]
    pub fn base_rate(&self) -> f64 {
        self.base
    }

    /// The drift shape.
    #[must_use]
    pub fn kind(&self) -> DriftKind {
        self.kind
    }

    /// The instantaneous dephasing probability at the given round, clamped
    /// to `[0, 1]`.
    #[must_use]
    pub fn rate_at(&self, round: u64) -> f64 {
        let n = round as f64;
        let raw = match self.kind {
            DriftKind::Ramp { per_round } => self.base + per_round * n,
            DriftKind::Sinusoid {
                amplitude,
                period_rounds,
            } => self.base + amplitude * (std::f64::consts::TAU * n / period_rounds).sin(),
        };
        raw.clamp(0.0, 1.0)
    }

    /// Returns the schedule with base and drift magnitude scaled by
    /// `factor` — how burst episodes amplify a drifting patch.  The scaled
    /// rate is still clamped to `[0, 1]` by [`rate_at`](Self::rate_at).
    #[must_use]
    pub fn amplified(&self, factor: f64) -> Self {
        let kind = match self.kind {
            DriftKind::Ramp { per_round } => DriftKind::Ramp {
                per_round: per_round * factor,
            },
            DriftKind::Sinusoid {
                amplitude,
                period_rounds,
            } => DriftKind::Sinusoid {
                amplitude: amplitude * factor,
                period_rounds,
            },
        };
        DriftingErrorModel {
            base: (self.base * factor).clamp(0.0, 1.0),
            kind,
        }
    }
}

/// A transient noise episode that blankets a patch for a window of rounds.
///
/// This is *physics* — an elevated physical error rate the decoder must ride
/// out, classified by the streaming residual path — distinct from the fault
/// plane's injected wire corruption, which the packet codec quarantines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstEvent {
    /// First round (inclusive) the burst covers.
    pub start_round: u64,
    /// Number of consecutive rounds the burst lasts.
    pub rounds: u64,
    /// Multiplier applied to the patch's error rate inside the window.
    pub factor: f64,
}

impl BurstEvent {
    /// Creates a burst covering `rounds` rounds from `start_round` with the
    /// given rate multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`QecError::InvalidDriftParameter`] if `factor` is negative
    /// or not finite.
    pub fn new(start_round: u64, rounds: u64, factor: f64) -> Result<Self, QecError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(QecError::InvalidDriftParameter {
                name: "factor",
                value: factor,
            });
        }
        Ok(BurstEvent {
            start_round,
            rounds,
            factor,
        })
    }

    /// Whether the given round falls inside the burst window.
    #[must_use]
    pub fn covers(&self, round: u64) -> bool {
        round >= self.start_round && round < self.end_round()
    }

    /// One past the last covered round.
    #[must_use]
    pub fn end_round(&self) -> u64 {
        self.start_round.saturating_add(self.rounds)
    }

    /// The amplified rate for a patch whose quiescent rate is `base`,
    /// clamped to `[0, 1]`.
    #[must_use]
    pub fn amplified_rate(&self, base: f64) -> f64 {
        (base * self.factor).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn invalid_probabilities_are_rejected() {
        assert!(Depolarizing::new(-0.1).is_err());
        assert!(Depolarizing::new(1.1).is_err());
        assert!(Depolarizing::new(f64::NAN).is_err());
        assert!(PureDephasing::new(2.0).is_err());
        assert!(BiasedChannel::new(0.5, 0.5, 0.5).is_err());
        assert!(BiasedChannel::new(0.1, 0.1, 0.1).is_ok());
    }

    #[test]
    fn zero_probability_never_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = PureDephasing::new(0.0).unwrap();
        for _ in 0..1000 {
            assert_eq!(model.sample_single(&mut rng), Pauli::I);
        }
    }

    #[test]
    fn unit_probability_always_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = PureDephasing::new(1.0).unwrap();
        for _ in 0..100 {
            assert_eq!(model.sample_single(&mut rng), Pauli::Z);
        }
        let depol = Depolarizing::new(1.0).unwrap();
        for _ in 0..100 {
            assert_ne!(depol.sample_single(&mut rng), Pauli::I);
        }
    }

    #[test]
    fn dephasing_only_produces_z() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = PureDephasing::new(0.5).unwrap();
        for _ in 0..1000 {
            let p = model.sample_single(&mut rng);
            assert!(p == Pauli::I || p == Pauli::Z);
        }
    }

    #[test]
    fn empirical_rates_are_close_to_nominal() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = Depolarizing::new(0.3).unwrap();
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let idx = match model.sample_single(&mut rng) {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            };
            counts[idx] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.7).abs() < 0.01);
        for &c in &counts[1..] {
            assert!((frac(c) - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn sample_covers_all_data_qubits() {
        let lattice = Lattice::new(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = Depolarizing::new(0.2).unwrap();
        let error = model.sample(&lattice, &mut rng);
        assert_eq!(error.len(), lattice.num_data());
    }

    #[test]
    fn biased_channel_matches_components() {
        let model = BiasedChannel::new(0.0, 0.0, 0.25).unwrap();
        assert!((model.physical_error_rate() - 0.25).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..500 {
            let p = model.sample_single(&mut rng);
            assert!(p == Pauli::I || p == Pauli::Z);
        }
        assert_eq!(model.probabilities(), (0.0, 0.0, 0.25));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let lattice = Lattice::new(7).unwrap();
        let model = Depolarizing::new(0.1).unwrap();
        let a = model.sample(&lattice, &mut ChaCha8Rng::seed_from_u64(42));
        let b = model.sample(&lattice, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn ramp_drifts_linearly_and_clamps() {
        let drift = DriftingErrorModel::ramp(0.01, 0.001).unwrap();
        assert!((drift.rate_at(0) - 0.01).abs() < 1e-12);
        assert!((drift.rate_at(10) - 0.02).abs() < 1e-12);
        // Far past the ramp the rate saturates at 1.
        assert_eq!(drift.rate_at(10_000_000), 1.0);
        // A cool-down ramp clamps at 0.
        let cool = DriftingErrorModel::ramp(0.01, -0.001).unwrap();
        assert_eq!(cool.rate_at(1000), 0.0);
    }

    #[test]
    fn sinusoid_oscillates_around_base() {
        let drift = DriftingErrorModel::sinusoid(0.05, 0.02, 100.0).unwrap();
        assert!((drift.rate_at(0) - 0.05).abs() < 1e-12);
        assert!((drift.rate_at(25) - 0.07).abs() < 1e-9);
        assert!((drift.rate_at(75) - 0.03).abs() < 1e-9);
        // One full period returns (numerically close) to base.
        assert!((drift.rate_at(100) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn drift_parameters_are_validated() {
        assert!(DriftingErrorModel::ramp(1.5, 0.0).is_err());
        assert!(DriftingErrorModel::ramp(0.1, f64::NAN).is_err());
        assert!(DriftingErrorModel::sinusoid(0.1, -0.1, 10.0).is_err());
        assert!(DriftingErrorModel::sinusoid(0.1, 0.1, 0.0).is_err());
        assert!(DriftingErrorModel::sinusoid(0.1, 0.1, f64::INFINITY).is_err());
        assert!(BurstEvent::new(0, 10, -1.0).is_err());
        assert!(BurstEvent::new(0, 10, f64::NAN).is_err());
    }

    #[test]
    fn amplified_drift_scales_and_clamps() {
        let drift = DriftingErrorModel::ramp(0.02, 0.001).unwrap();
        let hot = drift.amplified(10.0);
        assert!((hot.rate_at(0) - 0.2).abs() < 1e-12);
        assert!((hot.rate_at(10) - 0.3).abs() < 1e-12);
        let sin = DriftingErrorModel::sinusoid(0.04, 0.01, 64.0).unwrap();
        let hot = sin.amplified(5.0);
        assert!((hot.base_rate() - 0.2).abs() < 1e-12);
        match hot.kind() {
            DriftKind::Sinusoid {
                amplitude,
                period_rounds,
            } => {
                assert!((amplitude - 0.05).abs() < 1e-12);
                assert!((period_rounds - 64.0).abs() < 1e-12);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn burst_window_arithmetic() {
        let burst = BurstEvent::new(100, 50, 8.0).unwrap();
        assert!(!burst.covers(99));
        assert!(burst.covers(100));
        assert!(burst.covers(149));
        assert!(!burst.covers(150));
        assert_eq!(burst.end_round(), 150);
        assert!((burst.amplified_rate(0.03) - 0.24).abs() < 1e-12);
        assert_eq!(burst.amplified_rate(0.5), 1.0);
        // Degenerate saturating window.
        let tail = BurstEvent::new(u64::MAX, 10, 1.0).unwrap();
        assert_eq!(tail.end_round(), u64::MAX);
    }
}
