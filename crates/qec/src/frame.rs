//! Pauli-frame tracking.
//!
//! Real machines never physically apply decoder corrections qubit-by-qubit;
//! instead the classical controller records them in a *Pauli frame* and
//! reinterprets later measurements.  The paper's motivation section hinges on
//! this: Pauli corrections commute past Clifford gates and can be applied in
//! software, but `T` gates require the frame to be resolved (i.e. all
//! outstanding syndromes decoded) before they execute, which is what creates
//! the decoding backlog.

use crate::pauli::{Pauli, PauliString};
use serde::{Deserialize, Serialize};

/// An accumulated record of corrections awaiting application.
///
/// The frame is a Pauli string over the data qubits plus a counter of decoded
/// cycles, so system-level code can reason about how far behind the decoder
/// is relative to syndrome generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauliFrame {
    frame: PauliString,
    recorded_cycles: u64,
}

impl PauliFrame {
    /// Creates an empty frame over `num_data` qubits.
    #[must_use]
    pub fn new(num_data: usize) -> Self {
        PauliFrame {
            frame: PauliString::identity(num_data),
            recorded_cycles: 0,
        }
    }

    /// The number of data qubits the frame tracks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// Returns `true` if the frame tracks zero qubits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// Records one decoded cycle's correction into the frame.
    ///
    /// # Panics
    ///
    /// Panics if `correction` has a different length than the frame.
    pub fn record(&mut self, correction: &PauliString) {
        self.frame.compose_with(correction);
        self.recorded_cycles += 1;
    }

    /// Records a sparse correction (a Pauli applied to a list of qubits).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn record_sparse(&mut self, qubits: &[usize], pauli: Pauli) {
        for &q in qubits {
            self.frame.apply(q, pauli);
        }
        self.recorded_cycles += 1;
    }

    /// The current accumulated correction.
    #[must_use]
    pub fn as_pauli_string(&self) -> &PauliString {
        &self.frame
    }

    /// The number of decode cycles recorded so far.
    #[must_use]
    pub fn recorded_cycles(&self) -> u64 {
        self.recorded_cycles
    }

    /// Returns `true` if the accumulated frame is the identity.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.frame.is_identity()
    }

    /// Consumes the frame and returns the accumulated correction, e.g. to
    /// apply it before a `T` gate.
    #[must_use]
    pub fn into_correction(self) -> PauliString {
        self.frame
    }

    /// Clears the frame (after its correction has been consumed) while
    /// keeping the cycle counter.
    pub fn reset(&mut self) {
        let len = self.frame.len();
        self.frame = PauliString::identity(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accumulates_and_cancels() {
        let mut frame = PauliFrame::new(4);
        assert!(frame.is_trivial());
        frame.record_sparse(&[0, 2], Pauli::Z);
        frame.record_sparse(&[2], Pauli::Z);
        assert_eq!(frame.as_pauli_string().z_support(), vec![0]);
        assert_eq!(frame.recorded_cycles(), 2);
    }

    #[test]
    fn record_full_strings() {
        let mut frame = PauliFrame::new(3);
        frame.record(&PauliString::from_sparse(3, &[1], Pauli::X));
        frame.record(&PauliString::from_sparse(3, &[1], Pauli::Z));
        assert_eq!(frame.as_pauli_string()[1], Pauli::Y);
        assert_eq!(frame.recorded_cycles(), 2);
    }

    #[test]
    fn reset_clears_operators_but_keeps_count() {
        let mut frame = PauliFrame::new(2);
        frame.record_sparse(&[0], Pauli::X);
        frame.reset();
        assert!(frame.is_trivial());
        assert_eq!(frame.recorded_cycles(), 1);
        assert_eq!(frame.len(), 2);
    }

    #[test]
    fn into_correction_returns_accumulated_string() {
        let mut frame = PauliFrame::new(2);
        frame.record_sparse(&[1], Pauli::Z);
        let corr = frame.into_correction();
        assert_eq!(corr.z_support(), vec![1]);
    }
}
