//! Error types for the surface-code substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or operating on surface-code objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QecError {
    /// The requested code distance is not supported.
    ///
    /// Valid code distances are odd integers greater than or equal to 3.
    InvalidDistance {
        /// The offending distance.
        distance: usize,
    },
    /// A probability argument was outside the `[0, 1]` interval.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A qubit index was out of range for the lattice it was used with.
    QubitIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of qubits in the lattice.
        len: usize,
    },
    /// A syndrome had a different length than the lattice expects.
    SyndromeLengthMismatch {
        /// The provided length.
        got: usize,
        /// The expected length.
        expected: usize,
    },
    /// A time-varying error model was given a non-finite or out-of-range
    /// drift parameter.
    InvalidDriftParameter {
        /// The name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for QecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QecError::InvalidDistance { distance } => {
                write!(
                    f,
                    "invalid code distance {distance}: must be an odd integer >= 3"
                )
            }
            QecError::InvalidProbability { value } => {
                write!(f, "invalid probability {value}: must lie in [0, 1]")
            }
            QecError::QubitIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "qubit index {index} out of range for lattice with {len} qubits"
                )
            }
            QecError::SyndromeLengthMismatch { got, expected } => {
                write!(
                    f,
                    "syndrome length {got} does not match expected {expected}"
                )
            }
            QecError::InvalidDriftParameter { name, value } => {
                write!(f, "invalid drift parameter {name} = {value}")
            }
        }
    }
}

impl Error for QecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = QecError::InvalidDistance { distance: 4 };
        let msg = err.to_string();
        assert!(msg.contains("invalid code distance 4"));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let err = QecError::InvalidProbability { value: 1.5 };
        assert!(err.to_string().contains("1.5"));

        let err = QecError::QubitIndexOutOfRange { index: 10, len: 5 };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("5"));

        let err = QecError::SyndromeLengthMismatch {
            got: 3,
            expected: 12,
        };
        assert!(err.to_string().contains("3"));
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<QecError>();
    }
}
