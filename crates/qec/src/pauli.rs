//! Single-qubit Pauli operators and Pauli strings.
//!
//! The surface code discretizes arbitrary physical noise into the Pauli group
//! `{I, X, Y, Z}` acting on data qubits (Section II-C of the paper).  This
//! module provides a compact representation of Pauli operators on individual
//! qubits and on the whole data-qubit register, together with the group
//! operations the rest of the stack relies on (composition, commutation with
//! stabilizers, weight counting).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, Mul};

/// A single-qubit Pauli operator.
///
/// `Y` is tracked explicitly even though the decoder treats it as a
/// simultaneous `X` and `Z` error, exactly as the paper describes for the
/// stabilizer measurement (Section II-C1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The bit-flip operator.
    X,
    /// The combined bit- and phase-flip operator (`Y = iXZ`).
    Y,
    /// The phase-flip operator.
    Z,
}

impl Pauli {
    /// All four Pauli operators, in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Pauli operators.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns `true` if this operator is the identity.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Returns `true` if this operator has an `X` component (`X` or `Y`).
    ///
    /// X components are what the Z stabilizers of the surface code detect.
    #[must_use]
    pub fn has_x_component(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Returns `true` if this operator has a `Z` component (`Z` or `Y`).
    ///
    /// Z components are what the X stabilizers of the surface code detect.
    #[must_use]
    pub fn has_z_component(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Returns `true` if `self` and `other` commute as operators.
    ///
    /// Two single-qubit Paulis anticommute exactly when they are distinct and
    /// both non-identity.
    #[must_use]
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }

    /// Composes two Paulis, ignoring the global phase.
    ///
    /// The Pauli group modulo phase is isomorphic to `Z_2 x Z_2`; composition
    /// is component-wise XOR of the X and Z parts.
    #[must_use]
    pub fn compose(self, other: Pauli) -> Pauli {
        Pauli::from_components(
            self.has_x_component() ^ other.has_x_component(),
            self.has_z_component() ^ other.has_z_component(),
        )
    }

    /// Builds a Pauli from its X and Z component flags.
    #[must_use]
    pub fn from_components(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns the weight contribution of this operator (0 for `I`, 1 otherwise).
    #[must_use]
    pub fn weight(self) -> usize {
        usize::from(!self.is_identity())
    }
}

impl Mul for Pauli {
    type Output = Pauli;

    fn mul(self, rhs: Pauli) -> Pauli {
        self.compose(rhs)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A Pauli operator on a register of qubits, stored densely.
///
/// The string is indexed by data-qubit index (see
/// [`Lattice`](crate::lattice::Lattice) for the index convention).  It is the
/// canonical representation of both injected physical errors and decoder
/// corrections.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PauliString {
    ops: Vec<Pauli>,
}

impl PauliString {
    /// Creates an identity Pauli string on `len` qubits.
    #[must_use]
    pub fn identity(len: usize) -> Self {
        PauliString {
            ops: vec![Pauli::I; len],
        }
    }

    /// Creates a Pauli string from an explicit list of operators.
    #[must_use]
    pub fn from_ops(ops: Vec<Pauli>) -> Self {
        PauliString { ops }
    }

    /// Creates a string with `pauli` applied on each listed qubit and identity elsewhere.
    ///
    /// Qubits listed more than once compose (so listing a qubit twice cancels).
    ///
    /// # Panics
    ///
    /// Panics if any index in `qubits` is `>= len`.
    #[must_use]
    pub fn from_sparse(len: usize, qubits: &[usize], pauli: Pauli) -> Self {
        let mut s = PauliString::identity(len);
        for &q in qubits {
            s.apply(q, pauli);
        }
        s
    }

    /// The number of qubits the string acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the string acts on zero qubits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the operator acting on qubit `index`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Pauli> {
        self.ops.get(index).copied()
    }

    /// Left-multiplies the operator on qubit `index` by `pauli` (composition).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn apply(&mut self, index: usize, pauli: Pauli) {
        let cur = self.ops[index];
        self.ops[index] = cur.compose(pauli);
    }

    /// Sets the operator on qubit `index`, replacing whatever was there.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, pauli: Pauli) {
        self.ops[index] = pauli;
    }

    /// Resets every operator to the identity, keeping the allocation.
    ///
    /// This is the reuse hook for allocation-free decode loops: a caller can
    /// hold one `PauliString` buffer and hand it to
    /// `Decoder::decode_into`-style APIs round after round.
    pub fn fill_identity(&mut self) {
        self.ops.fill(Pauli::I);
    }

    /// Resets the string to the identity on `len` qubits, reusing the
    /// existing allocation when it is large enough.
    pub fn reset_identity(&mut self, len: usize) {
        self.ops.clear();
        self.ops.resize(len, Pauli::I);
    }

    /// Composes `other` into `self` qubit-by-qubit (ignoring global phase).
    ///
    /// # Panics
    ///
    /// Panics if the two strings act on a different number of qubits.
    pub fn compose_with(&mut self, other: &PauliString) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compose pauli strings of lengths {} and {}",
            self.len(),
            other.len()
        );
        for (a, b) in self.ops.iter_mut().zip(other.ops.iter()) {
            *a = a.compose(*b);
        }
    }

    /// Returns the composition of `self` and `other` as a new string.
    ///
    /// # Panics
    ///
    /// Panics if the two strings act on a different number of qubits.
    #[must_use]
    pub fn composed(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.compose_with(other);
        out
    }

    /// The number of qubits on which the string acts non-trivially.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.ops.iter().map(|p| p.weight()).sum()
    }

    /// Returns `true` if the string is the identity on every qubit.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|p| p.is_identity())
    }

    /// Indices of qubits carrying an X component (`X` or `Y`).
    #[must_use]
    pub fn x_support(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, p)| p.has_x_component())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of qubits carrying a Z component (`Z` or `Y`).
    #[must_use]
    pub fn z_support(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, p)| p.has_z_component())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of qubits on which the string acts non-trivially.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_identity())
            .map(|(i, _)| i)
            .collect()
    }

    /// Parity (`true` = odd) of the overlap between this string's Z components
    /// and the given qubit set.
    ///
    /// This is the measurement outcome of an X-type stabilizer or logical-X
    /// operator supported on `qubits`.
    #[must_use]
    pub fn z_overlap_parity(&self, qubits: &[usize]) -> bool {
        qubits
            .iter()
            .filter(|&&q| self.ops.get(q).is_some_and(|p| p.has_z_component()))
            .count()
            % 2
            == 1
    }

    /// Parity (`true` = odd) of the overlap between this string's X components
    /// and the given qubit set.
    ///
    /// This is the measurement outcome of a Z-type stabilizer or logical-Z
    /// operator supported on `qubits`.
    #[must_use]
    pub fn x_overlap_parity(&self, qubits: &[usize]) -> bool {
        qubits
            .iter()
            .filter(|&&q| self.ops.get(q).is_some_and(|p| p.has_x_component()))
            .count()
            % 2
            == 1
    }

    /// Iterates over the per-qubit operators.
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        self.ops.iter().copied()
    }

    /// Overwrites this string with the contents of `other`, reusing the
    /// existing allocation when it is large enough.
    ///
    /// This is the copy analogue of [`PauliString::fill_identity`] for
    /// allocation-free hot loops.
    pub fn copy_from(&mut self, other: &PauliString) {
        self.ops.clear();
        self.ops.extend_from_slice(&other.ops);
    }

    /// The number of `u64` words [`PauliString::pack_into`] writes for a
    /// string on `len` qubits: two bitplanes (X components, then Z
    /// components) of `ceil(len / 64)` words each.
    #[must_use]
    pub fn packed_words(len: usize) -> usize {
        2 * len.div_ceil(64)
    }

    /// Packs the string into `out` as two bitplanes: X-component bits first,
    /// then Z-component bits, each plane `ceil(len / 64)` words wide with
    /// qubit `i` at bit `i % 64` of word `i / 64`.
    ///
    /// Exactly [`PauliString::packed_words`]`(self.len())` words are written;
    /// any extra words in `out` are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `packed_words(self.len())`.
    pub fn pack_into(&self, out: &mut [u64]) {
        let plane = self.ops.len().div_ceil(64);
        assert!(
            out.len() >= 2 * plane,
            "need {} words to pack {} qubits, got {}",
            2 * plane,
            self.ops.len(),
            out.len()
        );
        out[..2 * plane].fill(0);
        for (i, p) in self.ops.iter().enumerate() {
            if p.has_x_component() {
                out[i / 64] |= 1 << (i % 64);
            }
            if p.has_z_component() {
                out[plane + i / 64] |= 1 << (i % 64);
            }
        }
    }

    /// Unpacks two bitplanes written by [`PauliString::pack_into`] into this
    /// string, keeping its current length.  Bits beyond `self.len()` in each
    /// plane are ignored, so round-tripping through zero-padded buffers is
    /// lossless.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `packed_words(self.len())`.
    pub fn unpack_from(&mut self, words: &[u64]) {
        let plane = self.ops.len().div_ceil(64);
        assert!(
            words.len() >= 2 * plane,
            "need {} words to unpack {} qubits, got {}",
            2 * plane,
            self.ops.len(),
            words.len()
        );
        for (i, op) in self.ops.iter_mut().enumerate() {
            let x = (words[i / 64] >> (i % 64)) & 1 == 1;
            let z = (words[plane + i / 64] >> (i % 64)) & 1 == 1;
            *op = Pauli::from_components(x, z);
        }
    }
}

impl Index<usize> for PauliString {
    type Output = Pauli;

    fn index(&self, index: usize) -> &Pauli {
        &self.ops[index]
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.ops {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<Pauli> for PauliString {
    fn from_iter<T: IntoIterator<Item = Pauli>>(iter: T) -> Self {
        PauliString {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Pauli> for PauliString {
    fn extend<T: IntoIterator<Item = Pauli>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_commutes_with_everything() {
        for p in Pauli::ALL {
            assert!(Pauli::I.commutes_with(p));
            assert!(p.commutes_with(Pauli::I));
        }
    }

    #[test]
    fn distinct_nontrivial_paulis_anticommute() {
        for a in Pauli::ERRORS {
            for b in Pauli::ERRORS {
                if a == b {
                    assert!(a.commutes_with(b));
                } else {
                    assert!(!a.commutes_with(b));
                }
            }
        }
    }

    #[test]
    fn composition_matches_group_table() {
        assert_eq!(Pauli::X * Pauli::Z, Pauli::Y);
        assert_eq!(Pauli::Z * Pauli::X, Pauli::Y);
        assert_eq!(Pauli::X * Pauli::X, Pauli::I);
        assert_eq!(Pauli::Y * Pauli::Y, Pauli::I);
        assert_eq!(Pauli::Z * Pauli::Z, Pauli::I);
        assert_eq!(Pauli::X * Pauli::Y, Pauli::Z);
        assert_eq!(Pauli::Y * Pauli::Z, Pauli::X);
        assert_eq!(Pauli::I * Pauli::Z, Pauli::Z);
    }

    #[test]
    fn components_round_trip() {
        for p in Pauli::ALL {
            assert_eq!(
                Pauli::from_components(p.has_x_component(), p.has_z_component()),
                p
            );
        }
    }

    #[test]
    fn y_has_both_components() {
        assert!(Pauli::Y.has_x_component());
        assert!(Pauli::Y.has_z_component());
        assert!(!Pauli::X.has_z_component());
        assert!(!Pauli::Z.has_x_component());
    }

    #[test]
    fn string_weight_and_support() {
        let mut s = PauliString::identity(5);
        assert_eq!(s.weight(), 0);
        assert!(s.is_identity());
        s.apply(1, Pauli::X);
        s.apply(3, Pauli::Z);
        s.apply(4, Pauli::Y);
        assert_eq!(s.weight(), 3);
        assert_eq!(s.support(), vec![1, 3, 4]);
        assert_eq!(s.x_support(), vec![1, 4]);
        assert_eq!(s.z_support(), vec![3, 4]);
    }

    #[test]
    fn applying_same_pauli_twice_cancels() {
        let mut s = PauliString::identity(3);
        s.apply(0, Pauli::Z);
        s.apply(0, Pauli::Z);
        assert!(s.is_identity());
    }

    #[test]
    fn apply_composes_rather_than_overwrites() {
        let mut s = PauliString::identity(1);
        s.apply(0, Pauli::X);
        s.apply(0, Pauli::Z);
        assert_eq!(s[0], Pauli::Y);
        s.set(0, Pauli::Z);
        assert_eq!(s[0], Pauli::Z);
    }

    #[test]
    fn from_sparse_cancels_duplicates() {
        let s = PauliString::from_sparse(4, &[0, 2, 2], Pauli::Z);
        assert_eq!(s[0], Pauli::Z);
        assert_eq!(s[2], Pauli::I);
        assert_eq!(s.weight(), 1);
    }

    #[test]
    fn overlap_parities() {
        let s = PauliString::from_sparse(6, &[0, 2, 4], Pauli::Z);
        assert!(s.z_overlap_parity(&[0, 1]));
        assert!(!s.z_overlap_parity(&[0, 2]));
        assert!(!s.x_overlap_parity(&[0, 2]));
        let y = PauliString::from_sparse(6, &[1], Pauli::Y);
        assert!(y.z_overlap_parity(&[1]));
        assert!(y.x_overlap_parity(&[1]));
    }

    #[test]
    fn composition_of_strings() {
        let a = PauliString::from_sparse(4, &[0, 1], Pauli::X);
        let b = PauliString::from_sparse(4, &[1, 2], Pauli::Z);
        let c = a.composed(&b);
        assert_eq!(c[0], Pauli::X);
        assert_eq!(c[1], Pauli::Y);
        assert_eq!(c[2], Pauli::Z);
        assert_eq!(c[3], Pauli::I);
    }

    #[test]
    #[should_panic(expected = "cannot compose")]
    fn composing_mismatched_lengths_panics() {
        let mut a = PauliString::identity(3);
        let b = PauliString::identity(4);
        a.compose_with(&b);
    }

    #[test]
    fn display_round_trip() {
        let s = PauliString::from_ops(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z]);
        assert_eq!(s.to_string(), "IXYZ");
        assert_eq!(Pauli::Y.to_string(), "Y");
    }

    #[test]
    fn collect_from_iterator() {
        let s: PauliString = [Pauli::X, Pauli::I, Pauli::Z].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.weight(), 2);
    }

    #[test]
    fn copy_from_reuses_the_buffer() {
        let src = PauliString::from_sparse(5, &[1, 3], Pauli::Y);
        let mut dst = PauliString::identity(5);
        let base = dst.ops.as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.ops.as_ptr(), base, "copy_from must not reallocate");
    }

    #[test]
    fn pack_unpack_round_trips_every_pauli() {
        let mut s = PauliString::identity(130);
        for (i, p) in (0..130).zip(Pauli::ALL.iter().cycle()) {
            s.set(i, *p);
        }
        let mut words = vec![u64::MAX; PauliString::packed_words(130)];
        s.pack_into(&mut words);
        let mut out = PauliString::identity(130);
        out.unpack_from(&words);
        assert_eq!(out, s);
    }

    #[test]
    fn packed_words_covers_both_planes() {
        assert_eq!(PauliString::packed_words(0), 0);
        assert_eq!(PauliString::packed_words(1), 2);
        assert_eq!(PauliString::packed_words(64), 2);
        assert_eq!(PauliString::packed_words(65), 4);
    }

    #[test]
    fn pack_ignores_trailing_capacity_and_unpack_ignores_padding_bits() {
        let s = PauliString::from_sparse(3, &[0, 2], Pauli::X);
        let mut words = vec![0u64; PauliString::packed_words(3) + 2];
        words[PauliString::packed_words(3)] = 0xdead;
        s.pack_into(&mut words);
        assert_eq!(words[PauliString::packed_words(3)], 0xdead);
        // Pollute padding bits above qubit 2 in both planes: unpack must not see them.
        let mut polluted = words.clone();
        polluted[0] |= !0b111;
        polluted[1] |= !0b111;
        let mut out = PauliString::identity(3);
        out.unpack_from(&polluted);
        assert_eq!(out, s);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn pack_into_short_buffer_panics() {
        let s = PauliString::identity(65);
        let mut words = vec![0u64; 2];
        s.pack_into(&mut words);
    }
}
