//! Surface-code substrate for the NISQ+ reproduction.
//!
//! This crate implements everything the approximate decoder needs from the
//! quantum error-correction side of the system described in
//! *NISQ+: Boosting quantum computing power by approximating quantum error
//! correction* (Holmes et al., ISCA 2020):
//!
//! * [`pauli`] — single-qubit Pauli operators and Pauli strings,
//! * [`lattice`] — the planar surface-code lattice of data and ancilla qubits
//!   (Figure 2 of the paper),
//! * [`stabilizer`] — the X/Z stabilizer measurement circuits (Figure 3) and
//!   syndrome extraction,
//! * [`error_model`] — stochastic error channels (depolarizing, pure
//!   dephasing) used by the Monte-Carlo lifetime simulations,
//! * [`syndrome`] — syndrome bit-strings and detection events,
//! * [`logical`] — logical operators and logical-error detection,
//! * [`frame`] — Pauli-frame tracking of corrections.
//!
//! # Example
//!
//! ```rust
//! use nisqplus_qec::lattice::Lattice;
//! use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! # fn main() -> Result<(), nisqplus_qec::QecError> {
//! let lattice = Lattice::new(3)?;
//! let model = PureDephasing::new(0.05)?;
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let error = model.sample(&lattice, &mut rng);
//! let syndrome = lattice.syndrome_of(&error);
//! assert_eq!(syndrome.len(), lattice.num_ancillas());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod error_model;
pub mod frame;
pub mod lattice;
pub mod logical;
pub mod pauli;
pub mod stabilizer;
pub mod syndrome;

pub use error::QecError;
pub use error_model::{
    BiasedChannel, BurstEvent, Depolarizing, DriftKind, DriftingErrorModel, ErrorModel,
    PureDephasing,
};
pub use frame::PauliFrame;
pub use lattice::{Coord, Lattice, QubitKind, Sector};
pub use logical::{LogicalState, ResidualTally};
pub use pauli::{Pauli, PauliString};
pub use syndrome::{DetectionEvents, PackedSyndrome, Syndrome};
