//! Plain-text table formatting used by every figure/table binary.

/// Prints a section header in a consistent style.
pub fn print_header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Prints a simple aligned table: a header row followed by data rows.
///
/// Column widths are chosen from the longest entry in each column.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .take(cols)
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    print_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        print_row(row);
    }
}

/// Reads the Monte-Carlo trial count from the `NISQ_TRIALS` environment
/// variable, falling back to `default` when unset or unparsable.
#[must_use]
pub fn trials_from_env(default: usize) -> usize {
    std::env::var("NISQ_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printing_does_not_panic() {
        print_header("Table I");
        print_table(
            &["benchmark", "qubits"],
            &[vec!["cuccaro adder".to_string(), "42".to_string()]],
        );
    }

    #[test]
    fn trials_default_is_used_when_env_is_missing() {
        assert_eq!(trials_from_env(123), 123);
    }
}
