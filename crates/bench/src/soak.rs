//! The soak harness: one sustained multi-lattice streaming run at machine
//! scale, distilled into the repo-root `BENCH_soak.json` perf artifact.
//!
//! Where the criterion benches measure short, repeated runs, the soak drives
//! a *single* long run — the full profile streams at least a million rounds
//! over at least a hundred mixed-distance lattices — and checks the
//! properties that only show up at that scale: telemetry memory stays
//! bounded (streaming residual classification, capped timelines, no
//! correction history), the books balance (every generated round is decoded
//! or shed, never lost), and the tail latencies and shed rates hold steady.
//!
//! Two profiles, selected by environment:
//!
//! * **full** (the default): [`SoakProfile::FULL_ROUNDS`] rounds over
//!   [`SoakProfile::FULL_LATTICES`] lattices, distances cycling 3/5/7,
//!   a Drop-policy lane every fourth lattice, and lattice 0 served by a
//!   deliberately throttled decoder behind a tiny queue budget so sustained
//!   shedding (and its residual cost) is part of what the soak measures.
//! * **smoke** (`NISQ_SOAK_SMOKE=1`): [`SoakProfile::SMOKE_ROUNDS`] rounds
//!   over [`SoakProfile::SMOKE_LATTICES`] lattices, every lane under
//!   blocking backpressure (an un-paced producer outruns the workers, so
//!   any Drop lane would shed the moment the ring filled), so every verdict
//!   must come back `BOUNDED` — the CI-sized regression gate.
//!
//! `NISQ_SOAK_ROUNDS`, `NISQ_SOAK_LATTICES` and `NISQ_SOAK_WORKERS`
//! override either profile's scale.  [`run`] asserts the invariants;
//! [`emit`] writes the artifact (one `soak/aggregate` entry with the peak
//! RSS filled in, plus one conservative entry per QoS class), which
//! `examples/validate_bench.rs` checks in CI like every other `BENCH_*`
//! artifact.

use nisqplus_decoders::{DynDecoder, UnionFindDecoder};
use nisqplus_qec::logical::ResidualTally;
use nisqplus_runtime::report::write_bench_document;
use nisqplus_runtime::{
    BenchEntry, LatticeReport, LatticeSpec, MachineConfig, PushPolicy, RuntimeOutcome,
    RuntimeReport, StreamingEngine, ThrottledDecoder,
};
use std::sync::Arc;

/// The scale and shape of one soak run, resolved from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakProfile {
    /// Total rounds streamed, split evenly across the lattices.
    pub rounds_total: u64,
    /// Number of lattices (logical qubits) served.
    pub num_lattices: usize,
    /// Decoder worker threads.
    pub workers: usize,
    /// Smoke mode: CI scale, no throttled lane, all verdicts must be
    /// `BOUNDED`.
    pub smoke: bool,
}

/// Which QoS class a soak lattice belongs to — the unit the per-class
/// artifact entries aggregate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakClass {
    /// Blocking backpressure: no round may be lost.
    Block,
    /// Load shedding under a queue budget: rounds may be dropped.
    Drop,
    /// The deliberately slow lane (full profile only): a throttled decoder
    /// behind a tiny budget, shedding sustainedly by design.
    Throttled,
}

impl SoakClass {
    /// The class's artifact-id suffix.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SoakClass::Block => "block",
            SoakClass::Drop => "drop",
            SoakClass::Throttled => "throttled",
        }
    }
}

impl SoakProfile {
    /// Full-profile default rounds (the ISSUE's soak floor).
    pub const FULL_ROUNDS: u64 = 1_000_000;
    /// Full-profile default lattice count.
    pub const FULL_LATTICES: usize = 100;
    /// Smoke-profile default rounds (CI scale).
    pub const SMOKE_ROUNDS: u64 = 50_000;
    /// Smoke-profile default lattice count.
    pub const SMOKE_LATTICES: usize = 16;
    /// Seed base: lattice `i` streams from `SEED_BASE + i`.
    pub const SEED_BASE: u64 = 0x50AC;
    /// Enforced decode floor of the throttled lane, nanoseconds.
    pub const THROTTLE_FLOOR_NS: u64 = 2_000;

    /// Resolves the profile from the environment: `NISQ_SOAK_SMOKE` picks
    /// the smoke defaults, `NISQ_SOAK_ROUNDS` / `NISQ_SOAK_LATTICES` /
    /// `NISQ_SOAK_WORKERS` override scale either way.
    #[must_use]
    pub fn from_env() -> Self {
        let smoke = std::env::var_os("NISQ_SOAK_SMOKE").is_some();
        let rounds_total = env_u64(
            "NISQ_SOAK_ROUNDS",
            if smoke {
                Self::SMOKE_ROUNDS
            } else {
                Self::FULL_ROUNDS
            },
        );
        let num_lattices = env_u64(
            "NISQ_SOAK_LATTICES",
            if smoke {
                Self::SMOKE_LATTICES as u64
            } else {
                Self::FULL_LATTICES as u64
            },
        )
        .max(1) as usize;
        let default_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let workers = env_u64("NISQ_SOAK_WORKERS", default_workers as u64).max(1) as usize;
        SoakProfile {
            rounds_total: rounds_total.max(num_lattices as u64),
            num_lattices,
            workers,
            smoke,
        }
    }

    /// Rounds each lattice streams (the total split evenly).
    #[must_use]
    pub fn rounds_per_lattice(&self) -> u64 {
        (self.rounds_total / self.num_lattices as u64).max(1)
    }

    /// The QoS class of lattice `i`: in the full profile lattice 0 is the
    /// throttled lane and every fourth lattice a Drop lane, the rest running
    /// under blocking backpressure.  The smoke profile is all-Block: its
    /// gate demands every verdict come back `BOUNDED`, and a Drop lane
    /// under an un-paced producer sheds as soon as the ring fills.
    #[must_use]
    pub fn class_of(&self, i: usize) -> SoakClass {
        if self.smoke {
            SoakClass::Block
        } else if i == 0 {
            SoakClass::Throttled
        } else if i % 4 == 3 {
            SoakClass::Drop
        } else {
            SoakClass::Block
        }
    }

    /// The machine this profile describes: mixed distances (cycling 3/5/7),
    /// independent seeded streams, un-paced (the soak measures sustained
    /// capacity, not a cadence), streaming residual classification on, every
    /// O(rounds) structure bounded (`track_shed_rounds` off, no correction
    /// history, capped timelines and journal).
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let distances: Vec<usize> = (0..self.num_lattices).map(|i| [3, 5, 7][i % 3]).collect();
        let mut config = MachineConfig::new(&distances, Self::SEED_BASE);
        let rounds = self.rounds_per_lattice();
        let drop_budget = 256;
        let throttled = ThrottledDecoder::factory(
            Arc::new(|| Box::new(UnionFindDecoder::new()) as DynDecoder),
            Self::THROTTLE_FLOOR_NS,
        );
        for (i, spec) in config.lattices.iter_mut().enumerate() {
            let mut s = LatticeSpec::new(spec.distance)
                .with_seed(Self::SEED_BASE + i as u64)
                .with_rounds(rounds)
                .with_cadence_cycles(0);
            s = match self.class_of(i) {
                SoakClass::Block => s,
                SoakClass::Drop => s
                    .with_push_policy(PushPolicy::Drop)
                    .with_queue_budget(drop_budget),
                SoakClass::Throttled => s
                    .with_push_policy(PushPolicy::Drop)
                    .with_queue_budget(32)
                    .with_shed_slo(1.0)
                    .with_shared_decoder(throttled.clone()),
            };
            *spec = s;
        }
        config.workers = self.workers;
        // Smoke keeps the ring shallow enough that even a *full* ring at the
        // instant generation stops sits under the GROWING threshold
        // (`final_backlog * 20 < rounds_per_lattice`) — the all-BOUNDED gate
        // must hold however slowly the workers drain (debug builds, loaded
        // CI hosts).  The full profile gives the mixed-QoS lanes headroom.
        config.queue_capacity = if self.smoke {
            usize::try_from(rounds / 64)
                .unwrap_or(usize::MAX)
                .clamp(8, 512)
        } else {
            4096
        };
        config.push_policy = PushPolicy::Block;
        // The soak-scale memory posture: classify residuals in stream, keep
        // no correction history, no exact shed-round lists.
        config.analyze_residuals = true;
        config.record_corrections = false;
        config.correction_cap = Some(4096);
        config.track_shed_rounds = false;
        // No background sampler thread: on an oversubscribed host it
        // timeshares with the spinning pipeline (counters, histograms and
        // the journal still run, all bounded).
        config.obs.snapshot_cadence_us = 0;
        config
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `0` on platforms without procfs.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Runs the soak and asserts its scale-invariants before returning the
/// outcome:
///
/// * **conservation**, per lattice: every generated round was decoded or
///   shed (`generated == decoded + dropped`), and the streaming residual
///   tallies classified exactly the generated rounds;
/// * **live-counter agreement**: the per-lattice live failure counters the
///   workers and producer maintained equal the final report's tally;
/// * in **smoke** mode: every per-lattice verdict, and the aggregate, is
///   `BOUNDED`.
///
/// # Panics
///
/// Panics when any invariant fails — the soak is a regression gate, not a
/// best-effort survey.
#[must_use]
pub fn run(profile: &SoakProfile) -> RuntimeOutcome {
    let config = profile.machine_config();
    let engine = StreamingEngine::with_machine(config).expect("valid soak config");
    let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);
    check_invariants(profile, &outcome.report);
    outcome
}

fn check_invariants(profile: &SoakProfile, report: &RuntimeReport) {
    let rounds = profile.rounds_per_lattice();
    for lattice in &report.lattices {
        let c = &lattice.counters;
        assert_eq!(
            c.generated, rounds,
            "lattice {} generated {} of its {} configured rounds",
            lattice.lattice_id, c.generated, rounds
        );
        assert_eq!(
            c.generated,
            c.decoded + c.dropped,
            "lattice {} leaked rounds: generated {} != decoded {} + dropped {}",
            lattice.lattice_id,
            c.generated,
            c.decoded,
            c.dropped
        );
        let residual = lattice
            .residual
            .as_ref()
            .expect("soak runs classify residuals");
        assert_eq!(
            residual.decoded.rounds, c.decoded,
            "lattice {} decoded-tally round count drifted from its counter",
            lattice.lattice_id
        );
        assert_eq!(
            residual.shed.rounds, c.dropped,
            "lattice {} shed-tally round count drifted from its counter",
            lattice.lattice_id
        );
        assert_eq!(
            c.live_failures(),
            residual.total().failures(),
            "lattice {} live failure counters drifted from the final tally",
            lattice.lattice_id
        );
        if profile.smoke {
            assert_eq!(
                lattice.verdict(),
                "BOUNDED",
                "smoke soak demands BOUNDED everywhere; lattice {} came back {}",
                lattice.lattice_id,
                lattice.verdict()
            );
        }
    }
    if profile.smoke {
        assert_eq!(
            report.verdict(),
            "BOUNDED",
            "smoke soak demands a BOUNDED aggregate verdict"
        );
    }
}

/// Distills one QoS class's member lattices into a single conservative
/// [`BenchEntry`]: counts and tallies are summed, latency quantiles take the
/// *worst* member (a class is as slow as its slowest lattice), and the
/// verdict is the worst across members (`GROWING` > `SHEDDING` >
/// `BOUNDED`).
#[must_use]
pub fn class_entry(
    id: impl Into<String>,
    report: &RuntimeReport,
    members: &[&LatticeReport],
) -> BenchEntry {
    let mut generated = 0u64;
    let mut decoded = 0u64;
    let mut dropped = 0u64;
    let mut rounds = 0u64;
    let mut final_backlog = 0u64;
    let mut tally = ResidualTally::default();
    let mut decode_p50: f64 = 0.0;
    let mut decode_p99: f64 = 0.0;
    let mut decode_p999: f64 = 0.0;
    let mut total_p99: f64 = 0.0;
    let mut total_p999: f64 = 0.0;
    let mut decode_mean_weighted = 0.0f64;
    let mut growing = false;
    let mut shedding = false;
    for lattice in members {
        let c = &lattice.counters;
        generated += c.generated;
        decoded += c.decoded;
        dropped += c.dropped;
        rounds += lattice.rounds;
        final_backlog += lattice.final_backlog;
        if let Some(residual) = &lattice.residual {
            tally.absorb(&residual.total());
        }
        decode_p50 = decode_p50.max(lattice.decode_latency.quantiles.p50);
        decode_p99 = decode_p99.max(lattice.decode_latency.quantiles.p99);
        decode_p999 = decode_p999.max(lattice.decode_latency.quantiles.p999);
        total_p99 = total_p99.max(lattice.total_latency.quantiles.p99);
        total_p999 = total_p999.max(lattice.total_latency.quantiles.p999);
        decode_mean_weighted += lattice.decode_latency.summary.mean * c.decoded as f64;
        match lattice.verdict() {
            "GROWING" => growing = true,
            "SHEDDING" => shedding = true,
            _ => {}
        }
    }
    let verdict = if growing {
        "GROWING"
    } else if shedding {
        "SHEDDING"
    } else {
        "BOUNDED"
    };
    BenchEntry {
        id: id.into(),
        lattices: members.len(),
        workers: report.workers,
        batch_size: report.batch_size,
        rounds,
        throughput_per_s: if report.elapsed_s > 0.0 {
            decoded as f64 / report.elapsed_s
        } else {
            0.0
        },
        decode_mean_ns: if decoded > 0 {
            decode_mean_weighted / decoded as f64
        } else {
            0.0
        },
        decode_p50_ns: decode_p50,
        decode_p99_ns: decode_p99,
        decode_p999_ns: decode_p999,
        total_p99_ns: total_p99,
        total_p999_ns: total_p999,
        shed: dropped,
        shed_rate: if generated > 0 {
            dropped as f64 / generated as f64
        } else {
            0.0
        },
        residual_failure_rate: tally.failure_rate(),
        peak_rss_bytes: 0,
        final_backlog,
        verdict: verdict.to_string(),
    }
}

/// Writes `BENCH_soak.json` at the repository root: the `soak/aggregate`
/// entry (with this process's measured peak RSS) plus one entry per QoS
/// class present in the profile.  Returns the entries written.
pub fn emit(profile: &SoakProfile, report: &RuntimeReport) -> Vec<BenchEntry> {
    let mut aggregate = BenchEntry::from_report("soak/aggregate", report);
    aggregate.peak_rss_bytes = peak_rss_bytes();
    let mut entries = vec![aggregate];
    for class in [SoakClass::Block, SoakClass::Drop, SoakClass::Throttled] {
        let members: Vec<&LatticeReport> = report
            .lattices
            .iter()
            .filter(|l| profile.class_of(l.lattice_id) == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        entries.push(class_entry(
            format!("soak/class/{}", class.label()),
            report,
            &members,
        ));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json");
    write_bench_document(path, "soak", &entries).expect("write BENCH_soak.json");
    eprintln!("bench-artifact: wrote {path} ({} entries)", entries.len());
    entries
}

/// The whole soak in one call — resolve the profile, run, assert, emit —
/// returning `(profile, outcome, entries)` for callers that print a summary.
#[must_use]
pub fn run_and_emit() -> (SoakProfile, RuntimeOutcome, Vec<BenchEntry>) {
    let profile = SoakProfile::from_env();
    eprintln!(
        "soak: {} rounds over {} lattices ({} workers, {} profile)",
        profile.rounds_per_lattice() * profile.num_lattices as u64,
        profile.num_lattices,
        profile.workers,
        if profile.smoke { "smoke" } else { "full" },
    );
    let outcome = run(&profile);
    let entries = emit(&profile, &outcome.report);
    (profile, outcome, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_mixes_classes_and_distances() {
        let profile = SoakProfile {
            rounds_total: 1000,
            num_lattices: 12,
            workers: 2,
            smoke: false,
        };
        let config = profile.machine_config();
        assert_eq!(config.lattices.len(), 12);
        assert_eq!(profile.class_of(0), SoakClass::Throttled);
        assert_eq!(profile.class_of(3), SoakClass::Drop);
        assert_eq!(profile.class_of(1), SoakClass::Block);
        let distances: std::collections::BTreeSet<usize> =
            config.lattices.iter().map(|s| s.distance).collect();
        assert_eq!(distances.into_iter().collect::<Vec<_>>(), vec![3, 5, 7]);
        assert!(config.streams_residuals());
        assert!(!config.track_shed_rounds);
        assert!(!config.record_corrections);
        // The throttled lane sheds by design: Drop policy, tiny budget, its
        // own (slow) decoder.
        let lane = &config.lattices[0];
        assert_eq!(lane.push_policy, Some(PushPolicy::Drop));
        assert_eq!(lane.queue_budget, Some(32));
        assert!(lane.decoder.is_some());
    }

    #[test]
    fn smoke_profile_has_no_throttled_lane() {
        let profile = SoakProfile {
            rounds_total: 1000,
            num_lattices: 8,
            workers: 2,
            smoke: true,
        };
        let config = profile.machine_config();
        assert_eq!(profile.class_of(0), SoakClass::Block);
        assert!(config.lattices.iter().all(|s| s.decoder.is_none()));
    }

    #[test]
    fn tiny_smoke_soak_balances_and_stays_bounded() {
        let profile = SoakProfile {
            rounds_total: 2_000,
            num_lattices: 4,
            workers: 2,
            smoke: true,
        };
        // `run` itself asserts conservation, tally agreement and the
        // all-BOUNDED smoke gate.
        let outcome = run(&profile);
        assert_eq!(outcome.report.counters.generated, 2_000);
        let aggregate = BenchEntry::from_report("soak/aggregate", &outcome.report);
        let block = class_entry(
            "soak/class/block",
            &outcome.report,
            &outcome.report.lattices.iter().collect::<Vec<_>>(),
        );
        assert_eq!(aggregate.rounds, 2_000);
        assert_eq!(block.rounds, 2_000);
        assert_eq!(block.verdict, "BOUNDED");
    }
}
