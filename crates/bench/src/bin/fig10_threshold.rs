//! Regenerates Figure 10 (a), (b) and the top-row ablation: logical vs
//! physical error rate for each decoder design variant and code distance.
//!
//! Usage:
//!   fig10_threshold [--variant baseline|reset|boundary|final] [--zoom]
//!
//! `NISQ_TRIALS` controls the Monte-Carlo trials per point (default 4000).

use nisqplus_bench::{print_header, print_table, trials_from_env};
use nisqplus_core::DecoderVariant;
use nisqplus_sim::threshold::{accuracy_threshold, pseudo_threshold, ErrorRateCurve};

fn variant_from_arg(arg: &str) -> DecoderVariant {
    match arg {
        "baseline" => DecoderVariant::Baseline,
        "reset" => DecoderVariant::WithReset,
        "boundary" => DecoderVariant::WithResetAndBoundary,
        _ => DecoderVariant::Final,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut variant = DecoderVariant::Final;
    let mut zoom = false;
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--variant" => {
                if let Some(v) = iter.next() {
                    variant = variant_from_arg(v);
                }
            }
            "--zoom" => zoom = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let trials = trials_from_env(4_000);
    let physical_rates: Vec<f64> = if zoom {
        vec![0.046, 0.048, 0.050, 0.052, 0.054, 0.056, 0.058, 0.060]
    } else {
        vec![0.01, 0.015, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.12]
    };
    let window = if zoom {
        "(b) zoomed 4.6%-6%"
    } else {
        "(a) full range"
    };
    print_header(&format!(
        "Figure 10 {window}: logical error rate, {} design, {trials} trials/point",
        variant.label()
    ));

    let distances = [3usize, 5, 7, 9];
    let mut curves = Vec::new();
    for &d in &distances {
        let curve =
            ErrorRateCurve::measure(d, &physical_rates, trials, variant, 0xF160A + d as u64)
                .expect("valid distances and probabilities");
        curves.push(curve);
    }

    let mut rows = Vec::new();
    for (i, &p) in physical_rates.iter().enumerate() {
        let mut row = vec![format!("{:.1}", p * 100.0)];
        for curve in &curves {
            row.push(format!("{:.3}", curve.points[i].logical * 100.0));
        }
        row.push(format!("{:.1}", p * 100.0));
        rows.push(row);
    }
    print_table(
        &[
            "p (%)",
            "PL d=3 (%)",
            "PL d=5 (%)",
            "PL d=7 (%)",
            "PL d=9 (%)",
            "physical (%)",
        ],
        &rows,
    );

    println!();
    for curve in &curves {
        match pseudo_threshold(curve) {
            Some(pt) => println!(
                "  pseudo-threshold d={}: {:.2}%",
                curve.distance,
                pt * 100.0
            ),
            None => println!(
                "  pseudo-threshold d={}: not reached in this window",
                curve.distance
            ),
        }
    }
    match accuracy_threshold(&curves) {
        Some(th) => println!("  accuracy threshold: {:.2}%", th * 100.0),
        None => println!("  accuracy threshold: not visible in this window"),
    }
    println!();
    println!(
        "Paper reference (final design): accuracy threshold ~5%, pseudo-thresholds ~5% (d=3), \
         4.75% (d=5), 4.5% (d=7), 3.5% (d=9); baseline/reset-only variants show no threshold."
    );
}
