//! Regenerates Table I: characteristics of the simulated benchmarks.

use nisqplus_bench::{print_header, print_table};
use nisqplus_system::standard_benchmarks;

fn main() {
    print_header("Table I: characteristics of the simulated benchmarks");
    let rows: Vec<Vec<String>> = standard_benchmarks()
        .iter()
        .map(|b| {
            vec![
                b.name().to_string(),
                b.qubits().to_string(),
                b.total_gates().to_string(),
                b.t_gates().to_string(),
            ]
        })
        .collect();
    print_table(
        &["benchmark", "# qubits", "# total gates", "# T gates"],
        &rows,
    );
    println!();
    println!(
        "Paper reference: takahashi 40/740/266, barenco 39/1224/504, cnu 37/1156/476, \
         cnx 39/629/259, cuccaro 42/821/280."
    );
}
