//! Regenerates Figure 6: running time of the Table I benchmarks as a function
//! of the syndrome-data processing ratio r_gen / r_proc.

use nisqplus_bench::{print_header, print_table};
use nisqplus_system::backlog::{runtime_vs_ratio, BacklogModel};
use nisqplus_system::standard_benchmarks;

fn main() {
    print_header("Figure 6: benchmark running time vs decoding ratio");
    let ratios = [0.25, 0.5, 0.75, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0];
    let benchmarks = standard_benchmarks();

    let mut header = vec!["ratio".to_string()];
    for bench in &benchmarks {
        header.push(bench.name().to_string());
    }
    let mut rows = Vec::new();
    let sweeps: Vec<_> = benchmarks
        .iter()
        .map(|b| runtime_vs_ratio(b, &ratios, BacklogModel::DEFAULT_SYNDROME_CYCLE_NS))
        .collect();
    for (i, &ratio) in ratios.iter().enumerate() {
        let mut row = vec![format!("{ratio:.2}")];
        for sweep in &sweeps {
            let seconds = sweep[i].1.wall_clock_s;
            row.push(if seconds.is_finite() {
                format!("{seconds:.3e} s")
            } else {
                "overflow".to_string()
            });
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    println!();
    println!(
        "Our decoder: worst-case decode ~20 ns per round against a 400 ns syndrome cycle, i.e. a \
         ratio of ~0.05 — firmly left of 1, where the running time equals the compute time."
    );
    println!(
        "Paper reference: every benchmark's running time explodes combinatorially once the ratio \
         exceeds 1 (ratios of 1.5-2 already give ~1e100+ second runtimes); at or below 1 the \
         curves are flat."
    );
}
