//! Regenerates Figure 5: wall-clock time versus compute time when the decoder
//! is slower than syndrome generation (the backlog builds up at every T gate).

use nisqplus_bench::{print_header, print_table};
use nisqplus_system::backlog::BacklogModel;
use nisqplus_system::benchmarks::BenchmarkCircuit;

fn main() {
    print_header("Figure 5: wall-clock growth at successive T gates (f > 1)");
    // A small illustrative schedule: 10 T gates, 10 Clifford gates between them.
    let bench = BenchmarkCircuit::new("illustration", 4, 110, 10);
    let cycle_ns = BacklogModel::DEFAULT_SYNDROME_CYCLE_NS;

    for ratio in [1.25f64, 1.5, 2.0] {
        let model = BacklogModel::from_ratio(ratio);
        println!("decoding ratio f = {:.2}", model.ratio());
        let gap = bench.total_gates() as f64 / bench.t_gates() as f64;
        let mut rows = Vec::new();
        let mut stall = 0.0f64;
        let mut cumulative_stall = 0.0f64;
        for t in 1..=bench.t_gates() {
            stall = ratio * stall + (ratio - 1.0) * gap;
            cumulative_stall += stall;
            let compute = gap * t as f64;
            rows.push(vec![
                t.to_string(),
                format!("{:.1}", compute * cycle_ns * 1e-3),
                format!("{:.1}", stall * cycle_ns * 1e-3),
                format!("{:.1}", (compute + cumulative_stall) * cycle_ns * 1e-3),
            ]);
        }
        print_table(
            &[
                "T gate #",
                "compute time (us)",
                "stall at this T gate (us)",
                "wall clock (us)",
            ],
            &rows,
        );
        println!();
    }
    println!(
        "Paper reference: with f > 1 the stall before the k-th T gate grows like f^k, so the \
         wall-clock curve bends away from the no-backlog diagonal (line a of Figure 5)."
    );
}
