//! Regenerates Figure 5: wall-clock time versus compute time when the decoder
//! is slower than syndrome generation (the backlog builds up at every T gate).
//!
//! Pass `--measured` (or set `NISQ_MEASURED=1`) to replace the closed-form
//! tables with an *empirical* run: the `nisqplus-runtime` streaming engine
//! decodes a live d=5 syndrome stream with progressively throttled decoders
//! and reports the measured backlog growth next to the model's prediction.

use nisqplus_bench::{print_header, print_table};
use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::DynDecoder;
use nisqplus_runtime::{RuntimeConfig, StreamingEngine, ThrottledDecoder};
use nisqplus_system::backlog::BacklogModel;
use nisqplus_system::benchmarks::BenchmarkCircuit;

/// The measured mode: stream syndromes through the runtime at a fixed
/// cadence and compare the observed backlog slope against the model.
fn measured_mode() {
    print_header("Figure 5 (measured): empirical backlog growth from the streaming runtime");
    let mut config = RuntimeConfig::new(5);
    config.rounds = 4_000;
    config.workers = 2;
    // ~10 us per round: the paper's 400 ns cadence scaled so a shared CPU
    // core can host the producer and both workers (the dynamics depend only
    // on the service/arrival ratio f; see examples/streaming_runtime.rs).
    config.cadence_cycles = RuntimeConfig::PAPER_CADENCE_CYCLES * 25;
    config.queue_capacity = 8_192;
    let engine = StreamingEngine::new(config).expect("valid runtime config");

    let mut rows = Vec::new();
    for floor_ns in [0u64, 25_000, 60_000] {
        let factory = move || {
            if floor_ns == 0 {
                Box::new(SfqMeshDecoder::final_design()) as DynDecoder
            } else {
                Box::new(ThrottledDecoder::new(
                    SfqMeshDecoder::final_design(),
                    floor_ns,
                )) as DynDecoder
            }
        };
        let outcome = engine.run(&factory);
        let report = &outcome.report;
        rows.push(vec![
            report.decoder.clone(),
            format!("{:.2}", report.comparison.effective_ratio),
            format!("{:.4}", report.comparison.predicted_growth_per_round),
            format!("{:.4}", report.comparison.measured_growth_per_round),
            report.final_backlog.to_string(),
            format!("{:.2}x", report.comparison.agreement_factor()),
        ]);
    }
    print_table(
        &[
            "decoder",
            "f_eff",
            "model growth/round",
            "measured growth/round",
            "final backlog",
            "agreement",
        ],
        &rows,
    );
    println!();
    println!(
        "Paper reference: the closed-form model says a decoder with f > 1 accumulates \
         1 - 1/f rounds of backlog per generated round; here the slope is *measured* on a \
         live stream ({} rounds, {} workers, {:.1} us cadence) instead of modeled.",
        config.rounds,
        config.workers,
        config.cadence_ns() / 1000.0
    );
}

fn main() {
    let measured =
        std::env::args().any(|a| a == "--measured") || std::env::var_os("NISQ_MEASURED").is_some();
    if measured {
        measured_mode();
        return;
    }
    print_header("Figure 5: wall-clock growth at successive T gates (f > 1)");
    // A small illustrative schedule: 10 T gates, 10 Clifford gates between them.
    let bench = BenchmarkCircuit::new("illustration", 4, 110, 10);
    let cycle_ns = BacklogModel::DEFAULT_SYNDROME_CYCLE_NS;

    for ratio in [1.25f64, 1.5, 2.0] {
        let model = BacklogModel::from_ratio(ratio);
        println!("decoding ratio f = {:.2}", model.ratio());
        let gap = bench.total_gates() as f64 / bench.t_gates() as f64;
        let mut rows = Vec::new();
        let mut stall = 0.0f64;
        let mut cumulative_stall = 0.0f64;
        for t in 1..=bench.t_gates() {
            stall = ratio * stall + (ratio - 1.0) * gap;
            cumulative_stall += stall;
            let compute = gap * t as f64;
            rows.push(vec![
                t.to_string(),
                format!("{:.1}", compute * cycle_ns * 1e-3),
                format!("{:.1}", stall * cycle_ns * 1e-3),
                format!("{:.1}", (compute + cumulative_stall) * cycle_ns * 1e-3),
            ]);
        }
        print_table(
            &[
                "T gate #",
                "compute time (us)",
                "stall at this T gate (us)",
                "wall clock (us)",
            ],
            &rows,
        );
        println!();
    }
    println!(
        "Paper reference: with f > 1 the stall before the k-th T gate grows like f^k, so the \
         wall-clock curve bends away from the no-backlog diagonal (line a of Figure 5)."
    );
}
