//! Regenerates Figure 10(c): the distribution of decoding cycles required by
//! each code distance (truncated at 20 mesh cycles for comparison).

use nisqplus_bench::{print_header, print_table, trials_from_env};
use nisqplus_core::DecoderVariant;
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::PureDephasing;
use nisqplus_sim::monte_carlo::{run_sfq_lifetime, MonteCarloConfig};
use nisqplus_sim::timing::CycleDistribution;

fn main() {
    let trials = trials_from_env(5_000);
    print_header("Figure 10(c): probability distribution of decode cycles (final design)");
    println!("({trials} trials per distance at p = 5%)");
    println!();

    let bins = 10;
    let window = 120usize;
    let mut rows = Vec::new();
    let mut header = vec!["cycles bin".to_string()];
    let mut columns = Vec::new();
    for d in [3usize, 5, 7, 9] {
        let lattice = Lattice::new(d).expect("valid distance");
        let model = PureDephasing::new(0.05).expect("valid probability");
        let config = MonteCarloConfig::new(trials).with_seed(0xC1C1E + d as u64);
        let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
        let dist = CycleDistribution::from_cycles(d, &result.cycle_samples, bins, window);
        header.push(format!("d={d}"));
        columns.push(dist);
    }
    for bin in 0..bins {
        let lo = columns[0].bin_edges[bin];
        let hi = columns[0].bin_edges[bin + 1];
        let mut row = vec![format!("{lo:.0}-{hi:.0}")];
        for dist in &columns {
            row.push(format!("{:.3}", dist.densities[bin]));
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!();
    for dist in &columns {
        println!(
            "  d={}: most probable bin starts at {:.0} cycles",
            dist.distance,
            dist.mode_cycles()
        );
    }
    println!();
    println!(
        "Paper reference: the distributions for d = 3, 5, 7, 9 peak at roughly 0, 5, 9 and 14 \
         cycles respectively, with tails that grow with distance."
    );
}
