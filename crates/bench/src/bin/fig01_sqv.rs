//! Regenerates Figure 1 and the Section VIII SQV analysis: the Simple Quantum
//! Volume of a near-term machine with and without approximate QEC.

use nisqplus_bench::{print_header, print_table};
use nisqplus_system::sqv::{data_qubits_per_logical, ScalingModel, SqvAnalysis};

fn main() {
    print_header("Figure 1: Simple Quantum Volume with and without AQEC");
    let analysis = SqvAnalysis::near_term_machine();

    let physical = analysis.physical_machine();
    let d3 = analysis.encoded_machine(3, &ScalingModel::sfq_paper(3), data_qubits_per_logical(3));
    let d5 = analysis.encoded_machine(5, &ScalingModel::sfq_paper(5), data_qubits_per_logical(5));

    let rows: Vec<Vec<String>> = [&physical, &d3, &d5]
        .iter()
        .map(|point| {
            vec![
                point.label.clone(),
                point.qubits.to_string(),
                format!("{:.3e}", point.gates_per_qubit),
                format!("{:.3e}", point.sqv),
                format!("{:.0}x", analysis.boost_factor(point)),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "# qubits",
            "gates per qubit",
            "SQV",
            "boost vs NISQ target (1e5)",
        ],
        &rows,
    );

    println!();
    println!("Section VIII working points:");
    for (d, paper_pl) in [(3usize, 2.94e-9), (5, 8.96e-10)] {
        let model = ScalingModel::sfq_paper(d);
        let pl = model.logical_error_rate(analysis.physical_error_rate, d);
        println!(
            "  d={d}: logical error rate {pl:.3e} (paper: {paper_pl:.2e}), \
             SQV = 1/PL = {:.3e}",
            1.0 / pl
        );
    }
    println!();
    println!(
        "Paper reference: 1,024 physical qubits at p=1e-5 give SQV ~1e8; AQEC at d=3 packs 78 \
         logical qubits and reaches SQV 3.4e8 (3,402x the 1e5 NISQ target); d=5 reaches 1.12e9 \
         (11,163x)."
    );
}
