//! Regenerates Figure 11: the code distance each decoder needs to run a
//! 100-T-gate algorithm, with the decoding backlog taken into account.

use nisqplus_bench::{print_header, print_table};
use nisqplus_system::comparison::{figure_11_sweep, ComparisonSetup};

fn main() {
    print_header("Figure 11: required code distance vs physical error rate");
    let setup = ComparisonSetup::default();
    let rates = [1e-5, 1e-4, 1e-3, 1e-2, 3e-2];
    let sweep = figure_11_sweep(&rates, &setup);

    let mut header = vec!["physical error rate".to_string()];
    for (profile, _) in &sweep {
        header.push(profile.name.clone());
    }
    let mut rows = Vec::new();
    for (i, &p) in rates.iter().enumerate() {
        let mut row = vec![format!("{p:.0e}")];
        for (_, points) in &sweep {
            row.push(match points[i].1 {
                Some(d) => d.to_string(),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    println!();
    // Headline ratio at p = 1e-3.
    let sfq = sweep[0].1[2].1;
    let mwpm = sweep[1].1[2].1;
    if let (Some(sfq), Some(mwpm)) = (sfq, mwpm) {
        println!(
            "At p = 1e-3 the online SFQ decoder needs d = {sfq} while backlogged MWPM needs d = {mwpm} \
             ({}x larger).",
            mwpm / sfq.max(1)
        );
    }
    println!(
        "Paper reference: the SFQ decoder requires ~10x smaller code distances than offline \
         decoders (MWPM, neural network, union-find) once the decoding backlog is accounted for; \
         only the hypothetical backlog-free MWPM matches it."
    );
}
