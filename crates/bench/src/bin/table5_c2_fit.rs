//! Regenerates Table V: the fitted `c2` exponents of the scaling model
//! `PL ~ c1 (p/pth)^(c2 d)` for the final decoder design.

use nisqplus_bench::{print_header, print_table, trials_from_env};
use nisqplus_core::DecoderVariant;
use nisqplus_sim::fit::fit_scaling_exponent;
use nisqplus_sim::threshold::ErrorRateCurve;

fn main() {
    let trials = trials_from_env(8_000);
    print_header("Table V: empirical c2 estimates (PL ~ c1 (p/pth)^(c2 d))");
    println!("({trials} trials per point; fit uses points below the ~5% threshold)");
    println!();

    // Sub-threshold window for the fit.
    let physical_rates = [0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045];
    let pth = 0.05;
    let mut rows = Vec::new();
    for d in [3usize, 5, 7, 9] {
        let curve = ErrorRateCurve::measure(
            d,
            &physical_rates,
            trials,
            DecoderVariant::Final,
            0x7AB5 + d as u64,
        )
        .expect("valid parameters");
        match fit_scaling_exponent(&curve, pth) {
            Some(fit) => rows.push(vec![
                d.to_string(),
                format!("{:.3}", fit.c2),
                format!("{:.3}", fit.c1),
                fit.points_used.to_string(),
            ]),
            None => rows.push(vec![d.to_string(), "n/a".into(), "n/a".into(), "0".into()]),
        }
    }
    print_table(&["Code Distance", "c2", "c1", "points used"], &rows);
    println!();
    println!("Paper reference: c2 = 0.650 (d=3), 0.429 (d=5), 0.306 (d=7), 0.323 (d=9).");
}
