//! Regenerates Table IV: decoder execution time (ns) per code distance,
//! aggregated across all simulated physical error rates.

use nisqplus_bench::{print_header, print_table, trials_from_env};
use nisqplus_core::{DecoderModuleHardware, DecoderVariant};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::PureDephasing;
use nisqplus_sim::monte_carlo::{run_sfq_lifetime, MonteCarloConfig};
use nisqplus_sim::timing::{CycleTimeConverter, ExecutionTimeRow};

fn main() {
    let trials = trials_from_env(2_000);
    print_header("Table IV: decoder execution time in nanoseconds");
    println!("({trials} trials per (d, p) point; set NISQ_TRIALS to change)");
    println!();

    let converter = CycleTimeConverter::new(DecoderModuleHardware::ersfq().cycle_time_ps());
    let error_rates = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10];
    let mut rows = Vec::new();
    for d in [3usize, 5, 7, 9] {
        let lattice = Lattice::new(d).expect("valid distance");
        let mut cycles = Vec::new();
        for (i, &p) in error_rates.iter().enumerate() {
            let model = PureDephasing::new(p).expect("valid probability");
            let config = MonteCarloConfig::new(trials).with_seed(0xA11CE + i as u64);
            let result = run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final);
            cycles.extend(result.cycle_samples);
        }
        let row = ExecutionTimeRow::from_cycles(d, &cycles, &converter);
        rows.push(vec![
            d.to_string(),
            format!("{:.2}", row.max_ns),
            format!("{:.2}", row.average_ns),
            format!("{:.2}", row.std_dev_ns),
        ]);
    }
    print_table(
        &["Code Distance", "Max", "Average", "Standard Deviation"],
        &rows,
    );
    println!();
    println!(
        "Paper reference: d=3 3.74/0.28/0.58, d=5 9.28/0.72/1.09, d=7 14.2/2.00/1.99, \
         d=9 19.2/3.81/3.11 ns (at 162.72 ps per cycle)."
    );
    println!(
        "Cycle time used here: {:.2} ps per mesh cycle.",
        converter.cycle_time_ps()
    );
}
