//! Regenerates Table II: the ERSFQ cell library.

use nisqplus_bench::{print_header, print_table};
use nisqplus_sfq::cell::CellLibrary;

fn main() {
    print_header("Table II: ERSFQ cell library");
    let library = CellLibrary::ersfq();
    let rows: Vec<Vec<String>> = library
        .iter()
        .map(|(cell, spec)| {
            vec![
                cell.to_string(),
                format!("{:.0}", spec.area_um2),
                spec.jj_count.to_string(),
                format!("{:.1}", spec.delay_ps),
            ]
        })
        .collect();
    print_table(&["Cell", "Area (um^2)", "JJ Count", "Delay (ps)"], &rows);
    println!();
    println!(
        "Paper reference: AND2 4200/17/9.2, OR2 4200/12/7.2, XOR2 4200/12/5.7, NOT 4200/13/9.2, \
         DRO DFF 3360/10/5.0."
    );
}
