//! Regenerates Table III: synthesis results for the SFQ decoder module, plus
//! the mesh scaling and refrigerator-budget analysis of Section VIII.

use nisqplus_bench::{print_header, print_table};
use nisqplus_core::{DecoderModuleHardware, ModuleSubcircuit};
use nisqplus_sfq::report::RefrigeratorBudget;
use nisqplus_system::cooling_feasibility;

fn main() {
    print_header("Table III: synthesis results for the SFQ decoder module");
    let hardware = DecoderModuleHardware::ersfq();
    let rows: Vec<Vec<String>> = hardware
        .reports()
        .iter()
        .map(|(which, report)| {
            vec![
                which.to_string(),
                report.logical_depth.to_string(),
                format!("{:.2}", report.latency_ps),
                format!("{:.0}", report.area_um2),
                format!("{:.3}", report.power_uw),
                report.jj_count.to_string(),
                report.total_cells().to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Circuit",
            "Logical Depth",
            "Latency (ps)",
            "Area (um^2)",
            "Power (uW)",
            "JJs",
            "Cells",
        ],
        &rows,
    );
    println!();
    println!(
        "Paper reference (Full Circuit): depth 6, 162.72 ps, 1,279,320 um^2, 13.08 uW; \
         sub-circuits ~5 deep, 85.6-96 ps, 0.34-0.45 mm^2 each."
    );

    print_header("Section VIII: mesh scaling and refrigerator budget");
    let full = hardware.report(ModuleSubcircuit::FullModule);
    println!(
        "One module: {:.3} mm^2, {:.2} uW, cycle time {:.2} ps",
        full.area_um2 * 1e-6,
        full.power_uw,
        hardware.cycle_time_ps()
    );
    for d in [3, 5, 7, 9] {
        let mesh = hardware.mesh_for_distance(d);
        println!("  d={d}: {mesh}");
    }
    println!("Paper reference: d=9 mesh (289 modules) = 369.72 mm^2, 3.78 mW.");
    println!();
    for (label, budget) in [
        ("typical (1 W)", RefrigeratorBudget::typical()),
        ("generous (2 W)", RefrigeratorBudget::generous()),
    ] {
        let report = cooling_feasibility(&hardware, 9, &budget);
        println!(
            "Budget {label}: max mesh {0}x{0} -> single logical qubit at d={1} or {2} logical qubits at d=5",
            report.max_mesh_side, report.max_protected_distance, report.logical_qubits_at_d5
        );
    }
    println!("Paper reference: 87x87 mesh, one qubit at d=44 or ~100 qubits at d=5.");
}
