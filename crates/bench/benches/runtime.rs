//! Criterion benchmarks of the streaming runtime: ring-buffer hot path,
//! packet codec, and short end-to-end streaming runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::DynDecoder;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_runtime::{PacketCodec, RuntimeConfig, SpmcRing, StreamingEngine, SyndromePacket};

fn ring_benchmarks(c: &mut Criterion) {
    let ring = SpmcRing::new(1024, 3);
    let record = [7u64, 11, 13];
    let mut out = [0u64; 3];
    c.bench_function("ring_push_pop", |b| {
        b.iter(|| {
            ring.try_push(&record).expect("ring never fills");
            assert!(ring.try_pop(&mut out));
            out[0]
        })
    });
}

fn codec_benchmarks(c: &mut Criterion) {
    // d=5: 40 ancillas, a typical 3-defect round.
    let codec = PacketCodec::new(40);
    let syndrome = Syndrome::from_hot(40, &[3, 17, 31]);
    let packet = SyndromePacket::new(42, 123_456, &syndrome);
    let mut record = vec![0u64; codec.words_per_packet()];
    c.bench_function("packet_encode_decode", |b| {
        b.iter(|| {
            codec.encode(&packet, &mut record);
            codec.decode(&record)
        })
    });
}

fn streaming_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_1k_rounds");
    group.sample_size(10);
    for workers in [1usize, 2] {
        let mut config = RuntimeConfig::new(5);
        config.rounds = 1_000;
        config.workers = workers;
        config.cadence_cycles = 0; // un-paced: measure pure pipeline throughput
        config.queue_capacity = 256;
        let engine = StreamingEngine::new(config).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| engine.run(&|| Box::new(SfqMeshDecoder::final_design()) as DynDecoder))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ring_benchmarks, codec_benchmarks, streaming_benchmarks
}
criterion_main!(benches);
