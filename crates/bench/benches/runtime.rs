//! Criterion benchmarks of the streaming runtime: ring-buffer hot path,
//! packet codec, and short end-to-end streaming runs (work-stealing pool,
//! batched windows).
//!
//! Before any timing runs, [`assert_steady_state_decode_is_allocation_free`]
//! guards the PR's core invariant with a counting global allocator: a
//! prepared decoder's `decode_into` loop must perform **zero** heap
//! allocations in steady state.  The guard fails the bench run loudly if a
//! regression reintroduces per-round allocation.
//! [`assert_obs_hot_path_is_allocation_free`] extends the same guard to the
//! observability plane: latency-histogram records and event-journal
//! publishes must not allocate either.
//!
//! After the timed suite, [`emit_bench_artifacts`] writes the
//! schema-versioned perf artifacts `BENCH_streaming.json` and
//! `BENCH_lattices.json` at the repository root (validated in CI by
//! `cargo run --example validate_bench`).  Setting `NISQ_BENCH_SOAK=1`
//! additionally runs the soak harness (`nisqplus_bench::soak`) after the
//! suite and regenerates `BENCH_soak.json` — the same driver as
//! `cargo run --release --example soak`, honouring the same
//! `NISQ_SOAK_*` environment knobs.

use criterion::{criterion_group, BenchmarkId, Criterion};
use nisqplus_core::SfqMeshDecoder;
use nisqplus_decoders::{
    Decoder, DynDecoder, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder,
};
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use nisqplus_runtime::report::write_bench_document;
use nisqplus_runtime::{
    BenchEntry, EventJournal, EventKind, EventSeverity, FaultInjector, LatticeDecoder,
    LogHistogram, MachineConfig, PacketCodec, RuntimeConfig, SpmcRing, StreamingEngine,
    SyndromePacket,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocations, so the bench can assert
/// the steady-state decode loop never touches the heap.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn sample_syndromes(distance: usize, p: f64, count: usize) -> (Lattice, Vec<Syndrome>) {
    let lattice = Lattice::new(distance).expect("valid distance");
    let model = PureDephasing::new(p).expect("valid probability");
    let mut rng = ChaCha8Rng::seed_from_u64(0xFEED + distance as u64);
    let syndromes = (0..count)
        .map(|_| {
            let error = model.sample(&lattice, &mut rng);
            lattice.syndrome_of(&error)
        })
        .collect();
    (lattice, syndromes)
}

/// The allocation guard: after `prepare` and one warm-up pass (which may
/// still grow scratch capacities), a prepared decoder's `decode_into` loop
/// must run the steady state with zero heap allocations.
fn assert_allocation_free(name: &str, decoder: &mut dyn Decoder, distance: usize) {
    let (lattice, syndromes) = sample_syndromes(distance, 0.06, 64);
    decoder.prepare(&lattice);
    let mut out = PauliString::identity(lattice.num_data());
    // Warm-up: first decodes may still grow arena capacities to this
    // syndrome population's high-water mark.
    for syndrome in &syndromes {
        for sector in Sector::ALL {
            decoder.decode_into(&lattice, syndrome, sector, &mut out);
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..4 {
        for syndrome in &syndromes {
            for sector in Sector::ALL {
                decoder.decode_into(&lattice, syndrome, sector, &mut out);
            }
        }
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "steady-state decode_into of `{name}` (d={distance}) performed {allocated} heap \
         allocations over 512 sector decodes; the prepared hot path must not allocate"
    );
    eprintln!("alloc-guard: {name:<16} d={distance}: 0 allocations over 512 steady-state decodes");
}

/// Runs the allocation guard for every decoder that promises an
/// allocation-free hot path, before any timing happens.
fn assert_steady_state_decode_is_allocation_free() {
    assert_allocation_free("union-find", &mut UnionFindDecoder::new(), 9);
    assert_allocation_free("greedy-matching", &mut GreedyMatchingDecoder::new(), 9);
    let lattice = Lattice::new(3).expect("valid distance");
    let mut lookup = LookupDecoder::new(&lattice).expect("d=3 fits the table");
    assert_allocation_free("lookup-table", &mut lookup, 3);
}

/// The observability plane's own allocation guard: recording a latency into
/// the log-bucket histogram and publishing an event into the bounded journal
/// are both on (or near) the decode hot path, so after construction they
/// must not touch the heap either.
fn assert_obs_hot_path_is_allocation_free() {
    let hist = LogHistogram::new();
    let journal = EventJournal::new(256);
    // Warm-up (nothing to warm, but keep the shape parallel to the decoder
    // guard): one record and one publish before counting starts.
    hist.record(1_000);
    journal.publish(EventKind::Shed, EventSeverity::Warning, Some(0), None, 0, 0);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..512u64 {
        hist.record(round * 977 + 13);
        journal.publish(
            EventKind::BackpressureStall,
            EventSeverity::Info,
            Some((round % 4) as u32),
            Some((round % 2) as u32),
            round * 100,
            round,
        );
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "histogram record + journal publish performed {allocated} heap allocations over 512 \
         steady-state rounds; the observability hot path must not allocate"
    );
    assert_eq!(hist.count(), 513);
    assert_eq!(journal.published(), 513);
    eprintln!("alloc-guard: obs hot path      : 0 allocations over 512 records + 512 publishes");
}

/// The streaming-residual guard: classifying a decoded round's residual
/// (and a shed round's) sits directly on the worker and producer hot paths
/// when residual analysis streams, so with the scratch residual buffer
/// prepared it must not allocate either — otherwise soak-scale runs would
/// pay a heap round-trip per round.
fn assert_streaming_residual_classification_is_allocation_free() {
    use nisqplus_qec::logical::{classify_both_sectors_into, classify_shed_round, ResidualTally};
    let (lattice, syndromes) = sample_syndromes(7, 0.05, 32);
    let model = PureDephasing::new(0.05).expect("valid probability");
    let mut rng = ChaCha8Rng::seed_from_u64(0xC1A55);
    let errors: Vec<PauliString> = (0..32).map(|_| model.sample(&lattice, &mut rng)).collect();
    let mut decoder = UnionFindDecoder::new();
    decoder.prepare(&lattice);
    let mut correction = PauliString::identity(lattice.num_data());
    let mut residual = PauliString::identity(lattice.num_data());
    let mut tally = ResidualTally::default();
    // Warm-up: one classify of each kind before counting starts.
    let (x, z) = classify_both_sectors_into(&lattice, &errors[0], &correction, &mut residual);
    tally.record_states(x, z);
    let _ = classify_shed_round(&lattice, &errors[0]);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (error, syndrome) in errors.iter().zip(&syndromes) {
        for sector in Sector::ALL {
            decoder.decode_into(&lattice, syndrome, sector, &mut correction);
        }
        let (x, z) = classify_both_sectors_into(&lattice, error, &correction, &mut residual);
        tally.record_states(x, z);
        let (sx, sz) = classify_shed_round(&lattice, error);
        tally.record_states(sx, sz);
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "streaming residual classification performed {allocated} heap allocations over 32 \
         decode+classify rounds; the in-stream residual path must not allocate"
    );
    assert_eq!(tally.rounds, 65);
    eprintln!(
        "alloc-guard: residual classify  : 0 allocations over 32 decoded + 32 shed classifications"
    );
}

/// The fault plane's allocation guard: with an empty [`FaultPlan`] (the
/// production default) the injector's hot-path hooks — the per-batch crash
/// check, the per-round corruption lookup, and the per-send stall gate —
/// sit on the decode path of every run, so they must be free of heap
/// allocations (and, plan-free, of clock reads and atomics beyond one load).
fn assert_fault_hooks_are_allocation_free() {
    let injector = FaultInjector::disabled();
    // Warm-up, parallel in shape to the other guards.
    assert!(!injector.should_crash(0, 0));
    assert!(injector.corrupt(0, 0).is_none());
    assert!(!injector.stall_active(0, 0, 0));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..512u64 {
        assert!(!injector.should_crash((round % 4) as usize, round));
        assert!(injector.corrupt((round % 8) as u32, round).is_none());
        assert!(!injector.stall_active((round % 2) as usize, round, round * 100));
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "disabled fault-injector hooks performed {allocated} heap allocations over 512 \
         steady-state rounds; the fault-free hot path must not allocate"
    );
    eprintln!("alloc-guard: fault hooks       : 0 allocations over 512 disabled-plan rounds");
}

/// Emits the machine-readable bench artifacts at the repository root:
/// `BENCH_streaming.json` (single-lattice pipeline throughput) and
/// `BENCH_lattices.json` (multi-lattice sharding sweep).  Each entry is one
/// full engine run distilled through [`BenchEntry::from_report`]; the files
/// are schema-versioned and validated by `examples/validate_bench.rs`.
fn emit_bench_artifacts() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");

    let mut streaming = Vec::new();
    for workers in [1usize, 2] {
        let mut config = RuntimeConfig::new(5);
        config.rounds = 1_000;
        config.workers = workers;
        config.cadence_cycles = 0;
        config.queue_capacity = 256;
        let engine = StreamingEngine::new(config).expect("valid config");
        let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);
        streaming.push(BenchEntry::from_report(
            format!("streaming_1k_rounds/{workers}"),
            &outcome.report,
        ));
    }
    for batch in [4usize, 16] {
        let mut config = RuntimeConfig::new(5);
        config.rounds = 1_000;
        config.workers = 1;
        config.batch_size = batch;
        config.cadence_cycles = 0;
        config.queue_capacity = 256;
        let engine = StreamingEngine::new(config).expect("valid config");
        let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);
        streaming.push(BenchEntry::from_report(
            format!("streaming_1k_rounds_batch/{batch}"),
            &outcome.report,
        ));
    }
    let path = format!("{root}BENCH_streaming.json");
    write_bench_document(&path, "streaming", &streaming).expect("write BENCH_streaming.json");
    eprintln!("bench-artifact: wrote {path} ({} entries)", streaming.len());

    let mut lattices = Vec::new();
    for num_lattices in [1usize, 4, 8] {
        let distances: Vec<usize> = (0..num_lattices).map(|i| [3, 5, 7][i % 3]).collect();
        let mut config = MachineConfig::new(&distances, 0xFEED);
        for spec in &mut config.lattices {
            spec.rounds = 1_000 / num_lattices as u64;
            spec.cadence_cycles = 0;
        }
        config.workers = 2;
        config.queue_capacity = 256;
        let engine = StreamingEngine::with_machine(config).expect("valid config");
        let outcome = engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder);
        lattices.push(BenchEntry::from_report(
            format!("streaming_1k_rounds_lattices/{num_lattices}"),
            &outcome.report,
        ));
    }
    let path = format!("{root}BENCH_lattices.json");
    write_bench_document(&path, "lattices", &lattices).expect("write BENCH_lattices.json");
    eprintln!("bench-artifact: wrote {path} ({} entries)", lattices.len());
}

fn ring_benchmarks(c: &mut Criterion) {
    let ring = SpmcRing::new(1024, 3);
    let record = [7u64, 11, 13];
    let mut out = [0u64; 3];
    c.bench_function("ring_push_pop", |b| {
        b.iter(|| {
            ring.try_push(&record).expect("ring never fills");
            assert!(ring.try_pop(&mut out));
            out[0]
        })
    });
}

fn codec_benchmarks(c: &mut Criterion) {
    // d=5: 40 ancillas, a typical 3-defect round.
    let codec = PacketCodec::new(40);
    let syndrome = Syndrome::from_hot(40, &[3, 17, 31]);
    let packet = SyndromePacket::new(0, 42, 123_456, &syndrome);
    let mut record = vec![0u64; codec.words_per_packet()];
    let mut buffer = SyndromePacket::new(0, 0, 0, &Syndrome::new(40));
    c.bench_function("packet_encode_decode", |b| {
        b.iter(|| {
            codec.encode(&packet, &mut record);
            codec
                .try_decode_into(&record, &mut buffer)
                .expect("clean record decodes");
            buffer.round
        })
    });
}

fn streaming_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_1k_rounds");
    group.sample_size(10);
    for workers in [1usize, 2] {
        let mut config = RuntimeConfig::new(5);
        config.rounds = 1_000;
        config.workers = workers;
        config.cadence_cycles = 0; // un-paced: measure pure pipeline throughput
        config.queue_capacity = 256;
        let mut machine = MachineConfig::from(config);
        // Timed groups keep every per-round instrumentation cost in the
        // measured path (counters, histograms, journal publishes) but turn
        // off the *background* snapshot thread: on an oversubscribed host it
        // timeshares with the spinning pipeline and measures the scheduler,
        // not the pipeline.  `emit_bench_artifacts` runs the full plane.
        machine.obs.snapshot_cadence_us = 0;
        let engine = StreamingEngine::with_machine(machine).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| engine.run(&|| Box::new(SfqMeshDecoder::final_design()) as DynDecoder))
        });
    }
    group.finish();

    // The batched-window amortization sweep: same stream, one worker, growing
    // windows.  Larger k amortizes per-packet timestamping/counter overhead.
    let mut group = c.benchmark_group("streaming_1k_rounds_batch");
    group.sample_size(10);
    for batch in [1usize, 4, 16] {
        let mut config = RuntimeConfig::new(5);
        config.rounds = 1_000;
        config.workers = 1;
        config.batch_size = batch;
        config.cadence_cycles = 0;
        config.queue_capacity = 256;
        let mut machine = MachineConfig::from(config);
        machine.obs.snapshot_cadence_us = 0; // timed group: no sampler thread
        let engine = StreamingEngine::with_machine(machine).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder))
        });
    }
    group.finish();

    // Heterogeneous decoder assignment: the same 6-lattice machine (d
    // cycling 3/5/7, 1k rounds total) served once by a homogeneous
    // union-find fleet and once with per-lattice overrides (lookup for the
    // d=3 patches, greedy matching for d=5, union-find for d=7).  Measures
    // the cost of per-(distance, factory) prepared-decoder routing and what
    // matching the algorithm to the patch buys end to end.
    let mut group = c.benchmark_group("streaming_1k_rounds_hetero");
    group.sample_size(10);
    for hetero in [false, true] {
        let distances: Vec<usize> = (0..6).map(|i| [3, 5, 7][i % 3]).collect();
        let mut config = MachineConfig::new(&distances, 0xFEED);
        // One shared factory per distance class, so equal-distance lattices
        // share one prepared decoder per worker (the intended sharing; a
        // fresh factory per lattice would defeat it and bias the numbers).
        let lookup3 = LatticeDecoder::new(|| {
            Box::new(
                LookupDecoder::new(&Lattice::new(3).expect("valid distance"))
                    .expect("d=3 fits the table"),
            ) as DynDecoder
        });
        let greedy5 = LatticeDecoder::new(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        for spec in &mut config.lattices {
            spec.rounds = 1_000 / 6;
            spec.cadence_cycles = 0; // un-paced: measure pure pipeline throughput
            if hetero {
                spec.decoder = match spec.distance {
                    3 => Some(lookup3.clone()),
                    5 => Some(greedy5.clone()),
                    _ => None, // d=7 stays on the machine-wide union-find
                };
            }
        }
        config.workers = 2;
        config.queue_capacity = 256;
        config.obs.snapshot_cadence_us = 0; // timed group: no sampler thread
        let engine = StreamingEngine::with_machine(config).expect("valid config");
        let label = if hetero {
            "lookup3+greedy5+uf7"
        } else {
            "uf-everywhere"
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &hetero, |b, _| {
            b.iter(|| engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder))
        });
    }
    group.finish();

    // The multi-lattice sharding sweep: 1k rounds total, spread over a
    // growing number of mixed-distance lattices (cycling d = 3, 5, 7).
    // Measures the per-round cost of serving a whole machine — header
    // routing, per-lattice prepared-state lookup, per-lattice telemetry —
    // relative to the single-lattice pipeline.
    let mut group = c.benchmark_group("streaming_1k_rounds_lattices");
    group.sample_size(10);
    for num_lattices in [1usize, 4, 8] {
        let distances: Vec<usize> = (0..num_lattices).map(|i| [3, 5, 7][i % 3]).collect();
        let mut config = MachineConfig::new(&distances, 0xFEED);
        for spec in &mut config.lattices {
            spec.rounds = 1_000 / num_lattices as u64;
            spec.cadence_cycles = 0; // un-paced: measure pure pipeline throughput
        }
        config.workers = 2;
        config.queue_capacity = 256;
        config.obs.snapshot_cadence_us = 0; // timed group: no sampler thread
        let engine = StreamingEngine::with_machine(config).expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(num_lattices),
            &num_lattices,
            |b, _| b.iter(|| engine.run(&|| Box::new(UnionFindDecoder::new()) as DynDecoder)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ring_benchmarks, codec_benchmarks, streaming_benchmarks
}

fn main() {
    assert_steady_state_decode_is_allocation_free();
    assert_streaming_residual_classification_is_allocation_free();
    assert_obs_hot_path_is_allocation_free();
    assert_fault_hooks_are_allocation_free();
    benches();
    emit_bench_artifacts();
    // Opt-in soak mode: drive the sustained multi-lattice soak and
    // regenerate BENCH_soak.json as part of the bench run.
    if std::env::var_os("NISQ_BENCH_SOAK").is_some() {
        let (_, outcome, _) = nisqplus_bench::soak::run_and_emit();
        eprintln!(
            "soak: {} rounds, verdict {}",
            outcome.report.counters.generated,
            outcome.report.verdict()
        );
    }
}
