//! Criterion benchmarks of the system-level analyses: backlog simulation,
//! SFQ synthesis and the Monte-Carlo harness itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisqplus_core::{DecoderModuleHardware, DecoderVariant};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::PureDephasing;
use nisqplus_sim::monte_carlo::{run_sfq_lifetime, MonteCarloConfig};
use nisqplus_system::backlog::{BacklogModel, BacklogSimulation};
use nisqplus_system::standard_benchmarks;

fn backlog_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("backlog_simulation");
    for bench in standard_benchmarks() {
        let sim = BacklogSimulation::new(BacklogModel::from_ratio(1.5));
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, bench| {
                b.iter(|| sim.run(bench));
            },
        );
    }
    group.finish();
}

fn synthesis_benchmarks(c: &mut Criterion) {
    c.bench_function("sfq_module_synthesis", |b| {
        b.iter(DecoderModuleHardware::ersfq)
    });
}

fn monte_carlo_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_500_trials");
    group.sample_size(10);
    for d in [3usize, 5] {
        let lattice = Lattice::new(d).expect("valid distance");
        let model = PureDephasing::new(0.04).expect("valid probability");
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let config = MonteCarloConfig::new(500).with_threads(1);
                run_sfq_lifetime(&lattice, &model, &config, DecoderVariant::Final)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = backlog_benchmarks, synthesis_benchmarks, monte_carlo_benchmarks
}
criterion_main!(benches);
