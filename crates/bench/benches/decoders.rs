//! Criterion benchmarks of decoding throughput: the SFQ mesh decoder (both
//! execution models) against the software baselines, across code distances.
//!
//! These benches measure host-CPU decode time; the hardware latency of the
//! real SFQ mesh is reported separately by `table3_synthesis` /
//! `table4_exec_time`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisqplus_core::decoder::ExecutionModel;
use nisqplus_core::{DecoderVariant, SfqMeshDecoder};
use nisqplus_decoders::{Decoder, ExactMatchingDecoder, GreedyMatchingDecoder, UnionFindDecoder};
use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::syndrome::Syndrome;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_syndromes(distance: usize, p: f64, count: usize) -> (Lattice, Vec<Syndrome>) {
    let lattice = Lattice::new(distance).expect("valid distance");
    let model = PureDephasing::new(p).expect("valid probability");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF + distance as u64);
    let syndromes = (0..count)
        .map(|_| {
            let error = model.sample(&lattice, &mut rng);
            lattice.syndrome_of(&error)
        })
        .collect();
    (lattice, syndromes)
}

fn bench_decoder<D: Decoder>(
    c: &mut Criterion,
    group_name: &str,
    mut decoder: D,
    distances: &[usize],
) {
    let mut group = c.benchmark_group(group_name);
    for &d in distances {
        let (lattice, syndromes) = sample_syndromes(d, 0.05, 64);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let syndrome = &syndromes[i % syndromes.len()];
                i += 1;
                decoder.decode(&lattice, syndrome, Sector::X)
            });
        });
    }
    group.finish();
}

fn decoder_benchmarks(c: &mut Criterion) {
    let distances = [3usize, 5, 7, 9];
    bench_decoder(
        c,
        "sfq_mesh_signal_timing",
        SfqMeshDecoder::final_design(),
        &distances,
    );
    bench_decoder(
        c,
        "sfq_mesh_pulse_level",
        SfqMeshDecoder::final_design().with_execution_model(ExecutionModel::PulseLevel),
        &[3, 5, 7],
    );
    bench_decoder(
        c,
        "mwpm_exact_matching",
        ExactMatchingDecoder::new(),
        &distances,
    );
    bench_decoder(
        c,
        "greedy_matching",
        GreedyMatchingDecoder::new(),
        &distances,
    );
    bench_decoder(c, "union_find", UnionFindDecoder::new(), &distances);
}

fn variant_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfq_mesh_variants_d5");
    let (lattice, syndromes) = sample_syndromes(5, 0.05, 64);
    for variant in DecoderVariant::ALL {
        let mut decoder = SfqMeshDecoder::new(variant);
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let syndrome = &syndromes[i % syndromes.len()];
                    i += 1;
                    decoder.decode(&lattice, syndrome, Sector::X)
                });
            },
        );
    }
    group.finish();
}

fn syndrome_extraction_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("syndrome_extraction");
    for d in [3usize, 5, 7, 9] {
        let lattice = Lattice::new(d).expect("valid distance");
        let model = PureDephasing::new(0.05).expect("valid probability");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let error = model.sample(&lattice, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| lattice.syndrome_of(&error));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = decoder_benchmarks, variant_benchmarks, syndrome_extraction_benchmarks
}
criterion_main!(benches);
