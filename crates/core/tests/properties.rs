//! Property-based tests for the SFQ mesh decoder.

use nisqplus_core::{DecoderVariant, SfqMeshDecoder};
use nisqplus_decoders::Decoder;
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::logical::{classify_residual, LogicalState};
use nisqplus_qec::pauli::{Pauli, PauliString};
use proptest::prelude::*;

fn arb_distance() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5), Just(7), Just(9)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The final design always clears the syndrome it was handed: the
    /// approximation can produce logical errors, never residual defects.
    #[test]
    fn final_design_never_leaves_residual_syndrome(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..14),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let mut decoder = SfqMeshDecoder::final_design();
        let correction = decoder.decode(&lattice, &syndrome, Sector::X);
        let state = classify_residual(&lattice, &error, correction.pauli_string(), Sector::X);
        prop_assert_ne!(state, LogicalState::InvalidCorrection);
        let stats = decoder.last_stats().unwrap();
        prop_assert!(stats.completed);
    }

    /// Every variant terminates within the configured cycle cap and reports
    /// monotone statistics.
    #[test]
    fn all_variants_terminate(
        d in prop_oneof![Just(3usize), Just(5)],
        raw in prop::collection::vec(0usize..1000, 0..10),
        variant_idx in 0usize..4,
    ) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let variant = DecoderVariant::ALL[variant_idx];
        let mut decoder = SfqMeshDecoder::new(variant);
        let _ = decoder.decode(&lattice, &syndrome, Sector::X);
        let stats = decoder.last_stats().unwrap();
        let cap = variant.config().max_cycles(lattice.size() + 2);
        prop_assert!(stats.cycles <= cap);
        prop_assert!(stats.time_ns >= 0.0);
    }

    /// Weight-one errors are corrected by the final design in both sectors,
    /// at every distance.
    #[test]
    fn single_errors_always_corrected(d in arb_distance(), q in 0usize..1000) {
        let lattice = Lattice::new(d).unwrap();
        let q = q % lattice.num_data();
        for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
            let error = PauliString::from_sparse(lattice.num_data(), &[q], pauli);
            let syndrome = lattice.syndrome_of(&error);
            let mut decoder = SfqMeshDecoder::final_design();
            let correction = decoder.decode(&lattice, &syndrome, sector);
            prop_assert_eq!(
                classify_residual(&lattice, &error, correction.pauli_string(), sector),
                LogicalState::Success
            );
        }
    }

    /// Decode time in nanoseconds stays within the paper's reported ceiling
    /// (about 20 ns) for realistic defect densities at the studied distances.
    #[test]
    fn decode_time_stays_below_paper_ceiling(
        d in arb_distance(),
        raw in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let lattice = Lattice::new(d).unwrap();
        let support: Vec<usize> = raw.iter().map(|&q| q % lattice.num_data()).collect();
        let error = PauliString::from_sparse(lattice.num_data(), &support, Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);
        let mut decoder = SfqMeshDecoder::final_design();
        let _ = decoder.decode(&lattice, &syndrome, Sector::X);
        let stats = decoder.last_stats().unwrap();
        if stats.completed {
            prop_assert!(stats.time_ns <= 60.0, "decode took {} ns", stats.time_ns);
        }
    }
}
