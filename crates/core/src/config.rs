//! Decoder design variants and mesh configuration.
//!
//! The paper builds its decoder incrementally (Section V-C and the top row of
//! Figure 10): a naive baseline, then a global reset mechanism, then boundary
//! modules, then the request/grant handshake that resolves equidistant ties.
//! Each step is a first-class configuration here so the ablation study can be
//! reproduced.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four incremental design points evaluated in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecoderVariant {
    /// Grow/pair signalling only: no reset, no boundary modules, no
    /// equidistant handling.
    Baseline,
    /// Baseline plus the global reset mechanism.
    WithReset,
    /// Reset plus boundary modules that let chains terminate on the lattice
    /// edge.
    WithResetAndBoundary,
    /// The full design: reset, boundaries and the pair-request / pair-grant
    /// handshake (the design whose thresholds the paper reports).
    Final,
}

impl DecoderVariant {
    /// All variants in the order the paper introduces them.
    pub const ALL: [DecoderVariant; 4] = [
        DecoderVariant::Baseline,
        DecoderVariant::WithReset,
        DecoderVariant::WithResetAndBoundary,
        DecoderVariant::Final,
    ];

    /// The mesh configuration corresponding to this variant.
    #[must_use]
    pub fn config(self) -> MeshConfig {
        match self {
            DecoderVariant::Baseline => MeshConfig {
                reset: false,
                boundary: false,
                equidistant_handshake: false,
                ..MeshConfig::default()
            },
            DecoderVariant::WithReset => MeshConfig {
                reset: true,
                boundary: false,
                equidistant_handshake: false,
                ..MeshConfig::default()
            },
            DecoderVariant::WithResetAndBoundary => MeshConfig {
                reset: true,
                boundary: true,
                equidistant_handshake: false,
                ..MeshConfig::default()
            },
            DecoderVariant::Final => MeshConfig::default(),
        }
    }

    /// A short label used in reports and plots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DecoderVariant::Baseline => "baseline",
            DecoderVariant::WithReset => "reset",
            DecoderVariant::WithResetAndBoundary => "reset+boundary",
            DecoderVariant::Final => "final",
        }
    }
}

impl fmt::Display for DecoderVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Low-level mesh configuration.
///
/// [`DecoderVariant`] covers the paper's four design points; `MeshConfig`
/// additionally exposes the pipeline depth (which sets how long the global
/// reset blocks module inputs) and the simulation cycle cap, for ablation
/// studies beyond the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Enable the global reset wire that quiets the mesh after each pairing.
    pub reset: bool,
    /// Instantiate boundary modules around the lattice edges of the sector.
    pub boundary: bool,
    /// Use the pair-request / pair-grant handshake to break equidistant ties.
    pub equidistant_handshake: bool,
    /// Pipeline depth of one module; the reset signal blocks inputs for this
    /// many cycles (the paper's circuits have depth 5).
    pub module_depth: u8,
    /// Hard cap on simulated cycles per decode, expressed as a multiple of
    /// the mesh side length; decodes that hit the cap abandon the remaining
    /// hot syndromes (and are counted as failures downstream).
    pub max_cycles_per_side: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            reset: true,
            boundary: true,
            equidistant_handshake: true,
            module_depth: 5,
            max_cycles_per_side: 24,
        }
    }
}

impl MeshConfig {
    /// The maximum number of cycles a decode may take on a mesh of the given
    /// side length before it is abandoned.
    #[must_use]
    pub fn max_cycles(&self, side: usize) -> usize {
        self.max_cycles_per_side * side.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_variant_enables_everything() {
        let cfg = DecoderVariant::Final.config();
        assert!(cfg.reset && cfg.boundary && cfg.equidistant_handshake);
        assert_eq!(cfg.module_depth, 5);
    }

    #[test]
    fn baseline_disables_everything() {
        let cfg = DecoderVariant::Baseline.config();
        assert!(!cfg.reset && !cfg.boundary && !cfg.equidistant_handshake);
    }

    #[test]
    fn intermediate_variants_are_ordered() {
        let reset = DecoderVariant::WithReset.config();
        assert!(reset.reset && !reset.boundary && !reset.equidistant_handshake);
        let boundary = DecoderVariant::WithResetAndBoundary.config();
        assert!(boundary.reset && boundary.boundary && !boundary.equidistant_handshake);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(DecoderVariant::Final.to_string(), "final");
        assert_eq!(DecoderVariant::Baseline.label(), "baseline");
        assert_eq!(DecoderVariant::ALL.len(), 4);
    }

    #[test]
    fn max_cycles_scales_with_side() {
        let cfg = MeshConfig::default();
        assert_eq!(cfg.max_cycles(17), 24 * 17);
        assert!(cfg.max_cycles(0) > 0);
    }
}
