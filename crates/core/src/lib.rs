//! The NISQ+ approximate SFQ mesh decoder ("AQEC").
//!
//! This crate implements the paper's primary contribution: an online,
//! approximate surface-code decoder realised as a two-dimensional mesh of
//! identical Single-Flux-Quantum modules, one module per physical qubit, that
//! decodes error syndromes at the speed they are generated (Sections V and
//! VI of the paper).
//!
//! The decoder works by local signalling between neighbouring modules:
//!
//! 1. every *hot-syndrome* module continuously emits **grow** pulses in all
//!    four directions; pulses travel in straight lines, one module per clock,
//! 2. a module reached by grow pulses from two different directions is an
//!    *intermediate* module and starts the pairing of the two closest hot
//!    modules,
//! 3. in the full design a **pair-request / pair-grant** handshake resolves
//!    equidistant ties, after which **pair** pulses trace out the correction
//!    chain back to the two hot modules,
//! 4. when a pair pulse reaches a hot module the pairing completes, a global
//!    **reset** quiets the mesh (for five cycles — the module pipeline depth)
//!    and the search restarts for the remaining hot syndromes,
//! 5. modules on lattice boundaries are *boundary modules* that can absorb a
//!    chain, letting defects match to the edge of the code.
//!
//! The crate exposes:
//!
//! * [`config`] — the incremental design variants of Figure 10 (baseline,
//!   +reset, +boundary, +equidistant handshake),
//! * [`mesh`] — the cycle-accurate mesh simulation engine,
//! * [`decoder`] — [`SfqMeshDecoder`], the [`nisqplus_decoders::Decoder`]
//!   implementation with per-decode cycle statistics,
//! * [`hardware`] — the module micro-architecture of Figure 9 expressed as
//!   ERSFQ netlists, its synthesis (Table III) and mesh-level area/power
//!   scaling (Section VIII).
//!
//! # Example
//!
//! ```rust
//! use nisqplus_core::{DecoderVariant, SfqMeshDecoder};
//! use nisqplus_decoders::Decoder;
//! use nisqplus_qec::lattice::{Lattice, Sector};
//! use nisqplus_qec::logical::{classify_residual, LogicalState};
//! use nisqplus_qec::pauli::{Pauli, PauliString};
//!
//! # fn main() -> Result<(), nisqplus_qec::QecError> {
//! let lattice = Lattice::new(5)?;
//! let error = PauliString::from_sparse(lattice.num_data(), &[12], Pauli::Z);
//! let syndrome = lattice.syndrome_of(&error);
//! let mut decoder = SfqMeshDecoder::new(DecoderVariant::Final);
//! let correction = decoder.decode(&lattice, &syndrome, Sector::X);
//! assert_eq!(
//!     classify_residual(&lattice, &error, correction.pauli_string(), Sector::X),
//!     LogicalState::Success
//! );
//! assert!(decoder.last_stats().unwrap().cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm;
pub mod config;
pub mod decoder;
pub mod hardware;
pub mod mesh;

pub use algorithm::{GreedyMeshAlgorithm, MeshPairing};
pub use config::{DecoderVariant, MeshConfig};
pub use decoder::{DecodeStats, SfqMeshDecoder};
pub use hardware::{DecoderModuleHardware, ModuleSubcircuit};
pub use mesh::{MeshDecodeResult, MeshEngine};
