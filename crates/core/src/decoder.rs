//! [`SfqMeshDecoder`]: the paper's decoder behind the common [`Decoder`] trait.
//!
//! The decoder wraps the greedy signal-timing algorithm (and, optionally, the
//! pulse-level mesh engine) and records per-decode statistics — mesh cycles,
//! wall-clock nanoseconds, and whether the decode completed — which are what
//! Table IV and Figure 10(c) of the paper report.

use crate::algorithm::GreedyMeshAlgorithm;
use crate::config::{DecoderVariant, MeshConfig};
use crate::hardware::DecoderModuleHardware;
use crate::mesh::{MeshDecodeResult, MeshEngine};
use nisqplus_decoders::traits::{sector_correction_pauli, Correction, Decoder};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use serde::{Deserialize, Serialize};

/// Which level of modelling executes the decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// The signal-timing algorithm (default): fast, used for accuracy sweeps.
    SignalTiming,
    /// The pulse-level mesh engine: slower, models individual SFQ pulses.
    PulseLevel,
}

/// Statistics of the most recent decode call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Number of detection events decoded.
    pub defects: usize,
    /// Mesh clock cycles consumed.
    pub cycles: usize,
    /// Wall-clock decode time in nanoseconds (cycles x module latency).
    pub time_ns: f64,
    /// Whether every hot syndrome was cleared.
    pub completed: bool,
}

/// The approximate SFQ mesh decoder of the paper.
///
/// The decoder implements [`Decoder`], so it can be dropped into any
/// experiment alongside the software baselines, and exposes per-decode cycle
/// and timing statistics via [`SfqMeshDecoder::last_stats`].
#[derive(Debug, Clone)]
pub struct SfqMeshDecoder {
    variant: DecoderVariant,
    algorithm: GreedyMeshAlgorithm,
    engine: MeshEngine,
    execution: ExecutionModel,
    cycle_time_ps: f64,
    last_stats: Option<DecodeStats>,
    name: String,
    /// Reusable defect-list buffer for the streaming hot path (filled by an
    /// allocation-free syndrome scan instead of `Lattice::defects`).
    defect_scratch: Vec<usize>,
}

impl SfqMeshDecoder {
    /// Creates a decoder for one of the paper's design variants.
    #[must_use]
    pub fn new(variant: DecoderVariant) -> Self {
        Self::with_config(variant, variant.config())
    }

    /// Creates a decoder with an explicit mesh configuration (for ablations
    /// beyond the four named variants).
    #[must_use]
    pub fn with_config(variant: DecoderVariant, config: MeshConfig) -> Self {
        let cycle_time_ps = DecoderModuleHardware::ersfq().cycle_time_ps();
        SfqMeshDecoder {
            variant,
            algorithm: GreedyMeshAlgorithm::new(config),
            engine: MeshEngine::new(config),
            execution: ExecutionModel::SignalTiming,
            cycle_time_ps,
            last_stats: None,
            name: format!("sfq-mesh-{}", variant.label()),
            defect_scratch: Vec::new(),
        }
    }

    /// The full design (reset + boundary + equidistant handshake).
    #[must_use]
    pub fn final_design() -> Self {
        SfqMeshDecoder::new(DecoderVariant::Final)
    }

    /// Switches between the signal-timing and pulse-level execution models.
    #[must_use]
    pub fn with_execution_model(mut self, execution: ExecutionModel) -> Self {
        self.execution = execution;
        self
    }

    /// Overrides the per-cycle latency (picoseconds) used to convert cycles
    /// into nanoseconds.
    #[must_use]
    pub fn with_cycle_time_ps(mut self, cycle_time_ps: f64) -> Self {
        self.cycle_time_ps = cycle_time_ps;
        self
    }

    /// The design variant this decoder implements.
    #[must_use]
    pub fn variant(&self) -> DecoderVariant {
        self.variant
    }

    /// The per-cycle latency in picoseconds used for timing conversion.
    #[must_use]
    pub fn cycle_time_ps(&self) -> f64 {
        self.cycle_time_ps
    }

    /// Statistics of the most recent [`Decoder::decode`] call, if any.
    #[must_use]
    pub fn last_stats(&self) -> Option<DecodeStats> {
        self.last_stats
    }

    fn run(&self, lattice: &Lattice, sector: Sector, defects: &[usize]) -> MeshDecodeResult {
        match self.execution {
            ExecutionModel::SignalTiming => self.algorithm.decode_defects(lattice, sector, defects),
            ExecutionModel::PulseLevel => self.engine.decode_defects(lattice, sector, defects),
        }
    }
}

impl SfqMeshDecoder {
    /// Runs one sector decode via the reusable defect buffer, recording the
    /// per-decode statistics.  Shared by `decode` and `decode_into`.
    fn decode_stats_run(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
    ) -> MeshDecodeResult {
        self.defect_scratch.clear();
        let scratch = &mut self.defect_scratch;
        lattice.for_each_defect(syndrome, sector, |a| scratch.push(a));
        let result = self.run(lattice, sector, &self.defect_scratch);
        self.last_stats = Some(DecodeStats {
            defects: self.defect_scratch.len(),
            cycles: result.cycles,
            time_ns: result.cycles as f64 * self.cycle_time_ps * 1e-3,
            completed: result.completed,
        });
        result
    }
}

impl Decoder for SfqMeshDecoder {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&mut self, lattice: &Lattice) {
        // The mesh is configured per decode; preparation sizes the defect
        // buffer for the worst case (every same-sector ancilla hot).
        self.defect_scratch.reserve(lattice.ancillas_per_sector());
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let result = self.decode_stats_run(lattice, syndrome, sector);
        let pauli = sector_correction_pauli(sector);
        let flips = PauliString::from_sparse(lattice.num_data(), &result.chain_data_qubits, pauli);
        Correction::from_pauli_string(flips)
    }

    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut PauliString,
    ) {
        let result = self.decode_stats_run(lattice, syndrome, sector);
        out.reset_identity(lattice.num_data());
        let pauli = sector_correction_pauli(sector);
        for &q in &result.chain_data_qubits {
            out.apply(q, pauli);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_qec::error_model::{ErrorModel, PureDephasing};
    use nisqplus_qec::lattice::Coord;
    use nisqplus_qec::logical::{classify_residual, LogicalState};
    use nisqplus_qec::pauli::Pauli;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn final_design_corrects_every_single_error() {
        for d in [3, 5, 7, 9] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = SfqMeshDecoder::final_design();
            for q in 0..lat.num_data() {
                for (pauli, sector) in [(Pauli::Z, Sector::X), (Pauli::X, Sector::Z)] {
                    let error = PauliString::from_sparse(lat.num_data(), &[q], pauli);
                    let syndrome = lat.syndrome_of(&error);
                    let correction = decoder.decode(&lat, &syndrome, sector);
                    assert_eq!(
                        classify_residual(&lat, &error, correction.pauli_string(), sector),
                        LogicalState::Success,
                        "final design failed on single {pauli} at qubit {q}, d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn final_design_corrections_always_clear_the_syndrome() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let model = PureDephasing::new(0.08).unwrap();
        for d in [3, 5, 7] {
            let lat = Lattice::new(d).unwrap();
            let mut decoder = SfqMeshDecoder::final_design();
            for _ in 0..100 {
                let error = model.sample(&lat, &mut rng);
                let syndrome = lat.syndrome_of(&error);
                let correction = decoder.decode(&lat, &syndrome, Sector::X);
                let state = classify_residual(&lat, &error, correction.pauli_string(), Sector::X);
                assert_ne!(
                    state,
                    LogicalState::InvalidCorrection,
                    "final design produced an invalid correction at d={d}"
                );
            }
        }
    }

    #[test]
    fn baseline_variant_fails_more_often_than_final() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let model = PureDephasing::new(0.04).unwrap();
        let lat = Lattice::new(5).unwrap();
        let trials = 400;
        let mut failures = [0usize; 2];
        for _ in 0..trials {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            for (slot, variant) in [DecoderVariant::Baseline, DecoderVariant::Final]
                .iter()
                .enumerate()
            {
                let mut decoder = SfqMeshDecoder::new(*variant);
                let correction = decoder.decode(&lat, &syndrome, Sector::X);
                if classify_residual(&lat, &error, correction.pauli_string(), Sector::X)
                    .is_failure()
                {
                    failures[slot] += 1;
                }
            }
        }
        assert!(
            failures[0] > failures[1],
            "baseline ({}) should fail more than final ({})",
            failures[0],
            failures[1]
        );
    }

    #[test]
    fn stats_are_recorded_and_timed() {
        let lat = Lattice::new(5).unwrap();
        let mut decoder = SfqMeshDecoder::final_design();
        assert!(decoder.last_stats().is_none());
        let q = lat.cell(Coord::new(2, 2)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let _ = decoder.decode(&lat, &syndrome, Sector::X);
        let stats = decoder.last_stats().unwrap();
        assert_eq!(stats.defects, 2);
        assert!(stats.cycles > 0);
        assert!(stats.completed);
        let expected_ns = stats.cycles as f64 * decoder.cycle_time_ps() * 1e-3;
        assert!((stats.time_ns - expected_ns).abs() < 1e-9);
        assert!(
            stats.time_ns < 25.0,
            "simple decodes finish well under 25 ns"
        );
    }

    #[test]
    fn pulse_level_and_signal_timing_agree_on_simple_pairs() {
        let lat = Lattice::new(5).unwrap();
        let q = lat.cell(Coord::new(4, 4)).index;
        let error = PauliString::from_sparse(lat.num_data(), &[q], Pauli::Z);
        let syndrome = lat.syndrome_of(&error);
        let mut timing = SfqMeshDecoder::final_design();
        let mut pulse =
            SfqMeshDecoder::final_design().with_execution_model(ExecutionModel::PulseLevel);
        let ct = timing.decode(&lat, &syndrome, Sector::X);
        let cp = pulse.decode(&lat, &syndrome, Sector::X);
        for c in [&ct, &cp] {
            assert_eq!(
                classify_residual(&lat, &error, c.pauli_string(), Sector::X),
                LogicalState::Success
            );
        }
        // The two execution models agree on the cycle count within a small
        // constant (the pulse engine pays a couple of extra cycles for pulse
        // injection and final propagation).
        let t = timing.last_stats().unwrap().cycles as i64;
        let p = pulse.last_stats().unwrap().cycles as i64;
        assert!((t - p).abs() <= 4, "timing {t} vs pulse {p}");
    }

    #[test]
    fn decoder_names_include_variant() {
        assert_eq!(SfqMeshDecoder::final_design().name(), "sfq-mesh-final");
        assert_eq!(
            SfqMeshDecoder::new(DecoderVariant::Baseline).name(),
            "sfq-mesh-baseline"
        );
        assert_eq!(
            SfqMeshDecoder::final_design().variant(),
            DecoderVariant::Final
        );
    }

    #[test]
    fn cycle_time_override() {
        let decoder = SfqMeshDecoder::final_design().with_cycle_time_ps(200.0);
        assert_eq!(decoder.cycle_time_ps(), 200.0);
    }

    #[test]
    fn decode_into_matches_decode_and_records_stats() {
        let lat = Lattice::new(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let model = PureDephasing::new(0.08).unwrap();
        let mut decoder = SfqMeshDecoder::final_design();
        decoder.prepare(&lat);
        let mut buf = PauliString::identity(lat.num_data());
        for _ in 0..50 {
            let error = model.sample(&lat, &mut rng);
            let syndrome = lat.syndrome_of(&error);
            let via_decode = decoder.decode(&lat, &syndrome, Sector::X);
            let stats_decode = decoder.last_stats().unwrap();
            decoder.decode_into(&lat, &syndrome, Sector::X, &mut buf);
            let stats_into = decoder.last_stats().unwrap();
            assert_eq!(&buf, via_decode.pauli_string());
            assert_eq!(stats_decode, stats_into);
        }
    }

    /// Compile-time assertion: the SFQ mesh decoder is `Send + Sync`, so the
    /// streaming runtime can hand one instance to each worker thread (or
    /// share a prototype to clone from) without wrappers.
    #[test]
    fn mesh_decoder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SfqMeshDecoder>();
        assert_send_sync::<DecodeStats>();
        fn assert_send<T: Send>() {}
        assert_send::<nisqplus_decoders::DynDecoder>();
    }
}
