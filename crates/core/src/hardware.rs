//! The decoder-module micro-architecture (Figure 9) in ERSFQ hardware.
//!
//! Each mesh module contains five sub-circuits — grow, pair-request,
//! pair-grant, pair and reset — built from the ERSFQ cell library of
//! Table II.  This module constructs the gate-level netlists for each
//! sub-circuit, path-balances and characterises them with the synthesis flow
//! of `nisqplus-sfq`, and scales the single-module figures up to full decoder
//! meshes (Table III and the Section VIII refrigerator-budget analysis).
//!
//! The exact gate counts of the paper's circuits are not public; the netlists
//! here implement the documented behaviour of each sub-circuit, so the
//! resulting area / power / latency are of the same order as Table III rather
//! than identical to it.  `EXPERIMENTS.md` records both side by side.

use nisqplus_sfq::cell::CellLibrary;
use nisqplus_sfq::netlist::{NetId, Netlist, NetlistBuilder};
use nisqplus_sfq::report::{
    max_mesh_side, CircuitCharacterization, MeshReport, RefrigeratorBudget,
};
use nisqplus_sfq::synth::{synthesize, SynthesisReport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The sub-circuits of one decoder module (Figure 9) plus the full module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleSubcircuit {
    /// Propagates grow pulses and emits them for hot-syndrome modules.
    Grow,
    /// Generates and forwards pair-request pulses at intermediate modules.
    PairRequest,
    /// Grants one pair request at hot-syndrome modules and forwards grants.
    PairGrant,
    /// Emits and forwards pair pulses; raises the global reset when a pair
    /// reaches a hot module.
    Pair,
    /// Stretches the global reset pulse over the pipeline depth.
    Reset,
    /// The combined pair-request + grow block reported in Table III.
    PairRequestGrow,
    /// The complete decoder module.
    FullModule,
}

impl ModuleSubcircuit {
    /// All sub-circuits, in Table III order.
    pub const ALL: [ModuleSubcircuit; 7] = [
        ModuleSubcircuit::Grow,
        ModuleSubcircuit::PairRequest,
        ModuleSubcircuit::PairGrant,
        ModuleSubcircuit::Pair,
        ModuleSubcircuit::Reset,
        ModuleSubcircuit::PairRequestGrow,
        ModuleSubcircuit::FullModule,
    ];
}

impl fmt::Display for ModuleSubcircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModuleSubcircuit::Grow => "Grow Subcircuit",
            ModuleSubcircuit::PairRequest => "Pair Req. Subcircuit",
            ModuleSubcircuit::PairGrant => "Pair Grant Subcircuit",
            ModuleSubcircuit::Pair => "Pair Subcircuit",
            ModuleSubcircuit::Reset => "Reset Subcircuit",
            ModuleSubcircuit::PairRequestGrow => "Pair Req./Grow Subcircuit",
            ModuleSubcircuit::FullModule => "Full Circuit",
        };
        write!(f, "{name}")
    }
}

const DIRECTIONS: [&str; 4] = ["up", "down", "left", "right"];

fn opposite(dir: usize) -> usize {
    match dir {
        0 => 1,
        1 => 0,
        2 => 3,
        _ => 2,
    }
}

/// Nets shared by the sub-circuits of one module.
struct ModuleInputs {
    hot: NetId,
    block: NetId,
    grow_in: [NetId; 4],
    pair_req_in: [NetId; 4],
    pair_grant_in: [NetId; 4],
    pair_in: [NetId; 4],
}

fn declare_inputs(b: &mut NetlistBuilder, which: ModuleSubcircuit) -> ModuleInputs {
    let hot = b.input("hot_syndrome");
    let block = b.input("block");
    let mut named = |prefix: &str| -> [NetId; 4] {
        [0, 1, 2, 3].map(|d| b.input(format!("{prefix}_{}", DIRECTIONS[d])))
    };
    use ModuleSubcircuit as S;
    let grow_in = match which {
        S::Grow | S::PairRequest | S::PairRequestGrow | S::FullModule => named("grow_in"),
        _ => [hot; 4],
    };
    let pair_req_in = match which {
        S::PairRequest | S::PairGrant | S::PairRequestGrow | S::FullModule => named("pair_req_in"),
        _ => [hot; 4],
    };
    let pair_grant_in = match which {
        S::PairGrant | S::Pair | S::FullModule => named("pair_grant_in"),
        _ => [hot; 4],
    };
    let pair_in = match which {
        S::Pair | S::FullModule => named("pair_in"),
        _ => [hot; 4],
    };
    ModuleInputs {
        hot,
        block,
        grow_in,
        pair_req_in,
        pair_grant_in,
        pair_in,
    }
}

/// Grow logic: `grow_out[d] = (hot OR grow_in[opposite(d)]) AND NOT block`.
fn add_grow_logic(b: &mut NetlistBuilder, io: &ModuleInputs) -> [NetId; 4] {
    let not_block = b.not(io.block);
    [0, 1, 2, 3].map(|d| {
        let pass = b.or2(io.hot, io.grow_in[opposite(d)]);
        b.and2(pass, not_block)
    })
}

/// Pair-request logic: a module that sees grow pulses from two directions
/// sends requests back along them; requests passing through non-hot modules
/// continue straight.
fn add_pair_request_logic(b: &mut NetlistBuilder, io: &ModuleInputs) -> [NetId; 4] {
    let not_block = b.not(io.block);
    let not_hot = b.not(io.hot);
    [0, 1, 2, 3].map(|d| {
        // Intersection component for this output direction: a grow pulse came
        // from `d` and at least one other direction.
        let others: Vec<NetId> = (0..4).filter(|&o| o != d).map(|o| io.grow_in[o]).collect();
        let any_other = b.or_tree(&others);
        let intersect = b.and2(io.grow_in[d], any_other);
        // Pass-through component: forward a request travelling through us
        // unless we are a hot module (which answers with a grant instead).
        let incoming = io.pair_req_in[opposite(d)];
        let pass = b.and2(incoming, not_hot);
        let combined = b.or2(intersect, pass);
        b.and2(combined, not_block)
    })
}

/// Pair-grant logic: a hot module grants the highest-priority incoming
/// request; non-hot modules forward grants straight through.
fn add_pair_grant_logic(b: &mut NetlistBuilder, io: &ModuleInputs) -> [NetId; 4] {
    let not_block = b.not(io.block);
    let not_hot = b.not(io.hot);
    // Priority chain: direction d is granted only if no lower-indexed
    // direction is also requesting.
    let mut higher_pending: Option<NetId> = None;
    let mut grant_terms: Vec<NetId> = Vec::with_capacity(4);
    for d in 0..4 {
        let req = io.pair_req_in[d];
        let eligible = match higher_pending {
            Some(p) => {
                let not_p = b.not(p);
                b.and2(req, not_p)
            }
            None => req,
        };
        let grant = b.and2(eligible, io.hot);
        grant_terms.push(grant);
        higher_pending = Some(match higher_pending {
            Some(p) => b.or2(p, req),
            None => req,
        });
    }
    [0, 1, 2, 3].map(|d| {
        let pass = b.and2(io.pair_grant_in[opposite(d)], not_hot);
        let combined = b.or2(grant_terms[d], pass);
        b.and2(combined, not_block)
    })
}

/// Pair logic: two grants meeting produce pair pulses; pair pulses pass
/// through non-hot modules and raise the global reset at hot modules.
/// Returns the four pair outputs plus the reset-request output.
fn add_pair_logic(b: &mut NetlistBuilder, io: &ModuleInputs) -> ([NetId; 4], NetId) {
    let not_hot = b.not(io.hot);
    let outs = [0, 1, 2, 3].map(|d| {
        let others: Vec<NetId> = (0..4)
            .filter(|&o| o != d)
            .map(|o| io.pair_grant_in[o])
            .collect();
        let any_other = b.or_tree(&others);
        let meet = b.and2(io.pair_grant_in[d], any_other);
        let pass = b.and2(io.pair_in[opposite(d)], not_hot);
        b.or2(meet, pass)
    });
    let any_pair = b.or_tree(&io.pair_in);
    let reset_request = b.and2(any_pair, io.hot);
    (outs, reset_request)
}

/// Reset logic: stretch the global reset pulse over `depth` cycles using a
/// chain of DRO DFF buffers, and OR everything into the block signal.
fn add_reset_logic(b: &mut NetlistBuilder, reset_in: NetId, depth: usize) -> NetId {
    let mut taps = vec![reset_in];
    let mut stage = reset_in;
    for _ in 0..depth {
        stage = b.dff(stage);
        taps.push(stage);
    }
    b.or_tree(&taps)
}

/// Builds the netlist of one sub-circuit (or of the whole module).
#[must_use]
pub fn build_subcircuit(which: ModuleSubcircuit) -> Netlist {
    let mut b = NetlistBuilder::new(which.to_string());
    match which {
        ModuleSubcircuit::Grow => {
            let io = declare_inputs(&mut b, which);
            let outs = add_grow_logic(&mut b, &io);
            for (d, net) in outs.into_iter().enumerate() {
                b.output(format!("grow_out_{}", DIRECTIONS[d]), net);
            }
        }
        ModuleSubcircuit::PairRequest => {
            let io = declare_inputs(&mut b, which);
            let outs = add_pair_request_logic(&mut b, &io);
            for (d, net) in outs.into_iter().enumerate() {
                b.output(format!("pair_req_out_{}", DIRECTIONS[d]), net);
            }
        }
        ModuleSubcircuit::PairGrant => {
            let io = declare_inputs(&mut b, which);
            let outs = add_pair_grant_logic(&mut b, &io);
            for (d, net) in outs.into_iter().enumerate() {
                b.output(format!("pair_grant_out_{}", DIRECTIONS[d]), net);
            }
        }
        ModuleSubcircuit::Pair => {
            let io = declare_inputs(&mut b, which);
            let (outs, reset) = add_pair_logic(&mut b, &io);
            for (d, net) in outs.into_iter().enumerate() {
                b.output(format!("pair_out_{}", DIRECTIONS[d]), net);
            }
            b.output("reset_request", reset);
        }
        ModuleSubcircuit::Reset => {
            let reset_in = b.input("reset_global");
            let block = add_reset_logic(&mut b, reset_in, 5);
            b.output("block", block);
        }
        ModuleSubcircuit::PairRequestGrow => {
            let io = declare_inputs(&mut b, which);
            let grow = add_grow_logic(&mut b, &io);
            let req = add_pair_request_logic(&mut b, &io);
            for (d, net) in grow.into_iter().enumerate() {
                b.output(format!("grow_out_{}", DIRECTIONS[d]), net);
            }
            for (d, net) in req.into_iter().enumerate() {
                b.output(format!("pair_req_out_{}", DIRECTIONS[d]), net);
            }
        }
        ModuleSubcircuit::FullModule => {
            let reset_in = b.input("reset_global");
            let io = declare_inputs(&mut b, which);
            // The block signal produced by the reset sub-circuit replaces the
            // raw block input inside the full module.
            let block = add_reset_logic(&mut b, reset_in, 5);
            let io = ModuleInputs { block, ..io };
            let grow = add_grow_logic(&mut b, &io);
            let req = add_pair_request_logic(&mut b, &io);
            let grant = add_pair_grant_logic(&mut b, &io);
            let (pair, reset_req) = add_pair_logic(&mut b, &io);
            for (d, net) in grow.into_iter().enumerate() {
                b.output(format!("grow_out_{}", DIRECTIONS[d]), net);
            }
            for (d, net) in req.into_iter().enumerate() {
                b.output(format!("pair_req_out_{}", DIRECTIONS[d]), net);
            }
            for (d, net) in grant.into_iter().enumerate() {
                b.output(format!("pair_grant_out_{}", DIRECTIONS[d]), net);
            }
            for (d, net) in pair.into_iter().enumerate() {
                b.output(format!("pair_out_{}", DIRECTIONS[d]), net);
            }
            b.output("reset_request", reset_req);
            // The error output: this module is part of a correction chain
            // when any pair pulse reaches it.
            let any_pair = b.or_tree(&io.pair_in);
            b.output("error_output", any_pair);
        }
    }
    b.build()
        .expect("module sub-circuits are structurally valid by construction")
}

/// Synthesized characterisation of the decoder module and its sub-circuits.
#[derive(Debug, Clone)]
pub struct DecoderModuleHardware {
    library: CellLibrary,
    reports: Vec<(ModuleSubcircuit, SynthesisReport)>,
}

impl DecoderModuleHardware {
    /// Synthesizes every sub-circuit against the ERSFQ library of Table II.
    #[must_use]
    pub fn ersfq() -> Self {
        Self::with_library(CellLibrary::ersfq())
    }

    /// Synthesizes every sub-circuit against a custom library.
    #[must_use]
    pub fn with_library(library: CellLibrary) -> Self {
        let reports = ModuleSubcircuit::ALL
            .iter()
            .map(|&which| (which, synthesize(&build_subcircuit(which), &library)))
            .collect();
        DecoderModuleHardware { library, reports }
    }

    /// The cell library used for synthesis.
    #[must_use]
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The synthesis report of one sub-circuit.
    ///
    /// # Panics
    ///
    /// Never panics: every sub-circuit is synthesized at construction.
    #[must_use]
    pub fn report(&self, which: ModuleSubcircuit) -> &SynthesisReport {
        &self
            .reports
            .iter()
            .find(|(w, _)| *w == which)
            .expect("all sub-circuits are synthesized at construction")
            .1
    }

    /// All reports in Table III order.
    #[must_use]
    pub fn reports(&self) -> &[(ModuleSubcircuit, SynthesisReport)] {
        &self.reports
    }

    /// The characterisation of the complete module.
    #[must_use]
    pub fn module(&self) -> CircuitCharacterization {
        CircuitCharacterization::from(self.report(ModuleSubcircuit::FullModule))
    }

    /// The mesh clock period in picoseconds: the latency of the full module,
    /// since every mesh cycle is one traversal of the module pipeline.
    #[must_use]
    pub fn cycle_time_ps(&self) -> f64 {
        self.report(ModuleSubcircuit::FullModule).latency_ps
    }

    /// Area/power report for the mesh protecting one distance-`d` patch.
    #[must_use]
    pub fn mesh_for_distance(&self, distance: usize) -> MeshReport {
        MeshReport::for_code_distance(self.module(), distance)
    }

    /// The largest square mesh that fits a refrigerator budget.
    #[must_use]
    pub fn max_mesh_side(&self, budget: &RefrigeratorBudget) -> usize {
        max_mesh_side(self.module(), budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_sfq::cell::CellType;
    use nisqplus_sfq::sim::NetlistSimulator;
    use nisqplus_sfq::synth::path_balance;
    use std::collections::HashMap;

    #[test]
    fn every_subcircuit_synthesizes_and_is_balanced() {
        let hw = DecoderModuleHardware::ersfq();
        for (which, report) in hw.reports() {
            assert!(report.logical_depth >= 1, "{which} has zero depth");
            assert!(report.area_um2 > 0.0);
            assert!(report.power_uw > 0.0);
            assert!(report.jj_count > 0);
            let balanced = path_balance(&build_subcircuit(*which));
            assert!(balanced.is_path_balanced(), "{which} is not path balanced");
        }
    }

    #[test]
    fn full_module_is_the_largest_block() {
        let hw = DecoderModuleHardware::ersfq();
        let full = hw.report(ModuleSubcircuit::FullModule);
        for (which, report) in hw.reports() {
            if *which != ModuleSubcircuit::FullModule {
                assert!(
                    full.area_um2 >= report.area_um2,
                    "{which} is larger than the full module"
                );
            }
        }
        // Same order of magnitude as the paper's 1.28 mm^2 / 13.08 uW module.
        assert!(
            full.area_um2 > 1e5 && full.area_um2 < 3e6,
            "area {}",
            full.area_um2
        );
        assert!(
            full.power_uw > 1.0 && full.power_uw < 40.0,
            "power {}",
            full.power_uw
        );
    }

    #[test]
    fn cycle_time_is_on_the_order_of_table_three() {
        let hw = DecoderModuleHardware::ersfq();
        let cycle = hw.cycle_time_ps();
        // Paper: 162.72 ps for a depth-6 module; our synthesized module lands
        // in the same range.
        assert!((60.0..=260.0).contains(&cycle), "cycle time {cycle} ps");
        assert!(hw.report(ModuleSubcircuit::FullModule).logical_depth >= 4);
    }

    #[test]
    fn reset_subcircuit_uses_five_dffs() {
        let netlist = build_subcircuit(ModuleSubcircuit::Reset);
        assert_eq!(netlist.count_cells(CellType::DroDff), 5);
        // Block must go high when the reset pulse arrives and stay high while
        // the pulse drains through the DFF chain.  The chain is deliberately
        // *unbalanced* (each tap adds one more cycle of delay), so this test
        // simulates the raw netlist rather than the path-balanced one.
        let mut sim = NetlistSimulator::new(&netlist);
        let pulse: HashMap<&str, bool> = [("reset_global", true)].into();
        let quiet: HashMap<&str, bool> = [("reset_global", false)].into();
        let depth = netlist.logical_depth();
        // Feed a single reset pulse, then watch the block output stay asserted
        // for several cycles as the pulse works through the buffer chain.
        let mut high_cycles = 0;
        sim.run(&pulse, 1);
        for _ in 0..depth + 6 {
            let out = sim.step(&quiet);
            if out["block"] {
                high_cycles += 1;
            }
        }
        assert!(
            high_cycles >= 3,
            "block was high for only {high_cycles} cycles"
        );
    }

    #[test]
    fn grow_subcircuit_logic_is_correct() {
        let netlist = build_subcircuit(ModuleSubcircuit::Grow);
        let balanced = path_balance(&netlist);
        let mut sim = NetlistSimulator::new(&balanced);
        let depth = balanced.logical_depth();
        // A hot module with no incoming pulses emits grow in all directions.
        let inputs: HashMap<&str, bool> = [
            ("hot_syndrome", true),
            ("block", false),
            ("grow_in_up", false),
            ("grow_in_down", false),
            ("grow_in_left", false),
            ("grow_in_right", false),
        ]
        .into();
        let out = sim.run(&inputs, depth);
        for dir in DIRECTIONS {
            assert!(
                out[&format!("grow_out_{dir}")],
                "hot module must grow {dir}"
            );
        }
        // A blocked module emits nothing even when hot.
        sim.reset();
        let blocked: HashMap<&str, bool> = [
            ("hot_syndrome", true),
            ("block", true),
            ("grow_in_up", false),
            ("grow_in_down", false),
            ("grow_in_left", false),
            ("grow_in_right", false),
        ]
        .into();
        let out = sim.run(&blocked, depth);
        for dir in DIRECTIONS {
            assert!(
                !out[&format!("grow_out_{dir}")],
                "blocked module must not grow {dir}"
            );
        }
        // A passing pulse continues straight: in from the left, out to the right.
        sim.reset();
        let passing: HashMap<&str, bool> = [
            ("hot_syndrome", false),
            ("block", false),
            ("grow_in_up", false),
            ("grow_in_down", false),
            ("grow_in_left", true),
            ("grow_in_right", false),
        ]
        .into();
        let out = sim.run(&passing, depth);
        assert!(out["grow_out_right"]);
        assert!(!out["grow_out_left"]);
        assert!(!out["grow_out_up"]);
    }

    #[test]
    fn pair_grant_grants_exactly_one_direction() {
        let netlist = build_subcircuit(ModuleSubcircuit::PairGrant);
        let balanced = path_balance(&netlist);
        let mut sim = NetlistSimulator::new(&balanced);
        let depth = balanced.logical_depth();
        // Requests arrive from up and left at a hot module simultaneously.
        let inputs: HashMap<&str, bool> = [
            ("hot_syndrome", true),
            ("block", false),
            ("pair_req_in_up", true),
            ("pair_req_in_down", false),
            ("pair_req_in_left", true),
            ("pair_req_in_right", false),
            ("pair_grant_in_up", false),
            ("pair_grant_in_down", false),
            ("pair_grant_in_left", false),
            ("pair_grant_in_right", false),
        ]
        .into();
        let out = sim.run(&inputs, depth);
        let grants: usize = DIRECTIONS
            .iter()
            .filter(|dir| out[&format!("pair_grant_out_{dir}")])
            .count();
        assert_eq!(
            grants, 1,
            "a hot module must grant exactly one request: {out:?}"
        );
        assert!(
            out["pair_grant_out_up"],
            "the priority encoder grants the first direction"
        );
    }

    #[test]
    fn mesh_reports_scale_with_distance() {
        let hw = DecoderModuleHardware::ersfq();
        let d3 = hw.mesh_for_distance(3);
        let d9 = hw.mesh_for_distance(9);
        assert_eq!(d3.modules, 25);
        assert_eq!(d9.modules, 289);
        assert!(d9.area_mm2 > d3.area_mm2);
        assert!(d9.power_mw > d3.power_mw);
        assert!(d9.fits(&RefrigeratorBudget::typical()));
        let side = hw.max_mesh_side(&RefrigeratorBudget::typical());
        assert!(
            side >= 50,
            "a 1 W budget should host a mesh of at least 50x50, got {side}"
        );
    }
}
