//! The greedy mesh decoding algorithm at the signal-timing level.
//!
//! Section V-C of the paper describes the decoder's behaviour as an
//! algorithm: repeatedly find the pair of hot-syndrome modules whose grow
//! waves meet first, report the chain of modules connecting them, reset their
//! hot-syndrome inputs and start over, until no hot syndrome remains.
//!
//! [`MeshEngine`](crate::mesh::MeshEngine) simulates the individual SFQ
//! pulses; this module implements the same algorithm one level up, computing
//! for every candidate pairing the number of mesh cycles the grow /
//! pair-request / pair-grant / pair exchange takes and executing the pairings
//! in completion-time order.  The two levels agree on which pairings happen
//! and on how many cycles they cost (see the cross-validation tests), but the
//! timing model runs orders of magnitude faster, so it is what the
//! Monte-Carlo accuracy studies use.
//!
//! The incremental design flaws that the paper's ablation (Figure 10, top
//! row) attributes to the missing mechanisms are modelled explicitly:
//!
//! * without **reset**, the grow waves of already-paired modules keep
//!   propagating, so live defects can erroneously pair with them ("ghosts");
//! * without **boundary** modules, defects can only pair with other defects,
//!   so lone defects are never cleared;
//! * without the **equidistant handshake**, a defect pairs simultaneously
//!   with *every* partner at the minimal distance instead of exactly one.

use crate::config::MeshConfig;
use crate::mesh::MeshDecodeResult;
use nisqplus_qec::lattice::{Lattice, Sector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a single pairing's latency is modelled, in mesh clock cycles.
///
/// Grow pulses advance one module per cycle; the request, grant and pair
/// pulses of the handshake each retrace the longest leg of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalTiming {
    /// Cycle at which the pairing is first detected (grow waves meet).
    pub detection: usize,
    /// Cycle at which the pairing completes (both hot syndromes cleared).
    pub completion: usize,
}

/// Computes the signal timing of a defect-defect pairing from the mesh-grid
/// offsets between the two ancilla modules.
#[must_use]
pub fn pair_timing(config: &MeshConfig, delta_row: usize, delta_col: usize) -> SignalTiming {
    let (detection, longest_leg) = if delta_row == 0 || delta_col == 0 {
        // Head-on collision along a row or column: the waves meet in the
        // middle of the separation.
        let distance = delta_row + delta_col;
        (distance.div_ceil(2), distance.div_ceil(2))
    } else {
        // The effective corner module sees one wave after `delta_col` cycles
        // and the other after `delta_row` cycles.
        (delta_row.max(delta_col), delta_row.max(delta_col))
    };
    let completion = if config.equidistant_handshake {
        // Request, grant and pair each retrace the longest leg.
        detection + 3 * longest_leg
    } else {
        // The intermediate module emits pair pulses immediately.
        detection + longest_leg
    };
    SignalTiming {
        detection,
        completion,
    }
}

/// Computes the signal timing of a defect-boundary pairing from the mesh-grid
/// distance between the ancilla module and the boundary module.
#[must_use]
pub fn boundary_timing(config: &MeshConfig, distance: usize) -> SignalTiming {
    let completion = if config.equidistant_handshake {
        distance + 3 * distance
    } else {
        distance + distance
    };
    SignalTiming {
        detection: distance,
        completion,
    }
}

/// One pairing chosen by the algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeshPairing {
    /// Two live defects paired with each other (ancilla indices).
    Defects(usize, usize),
    /// A defect paired with the lattice boundary.
    ToBoundary(usize),
    /// A live defect paired with the lingering grow wave of an
    /// already-cleared defect (only possible without the reset mechanism).
    ToGhost {
        /// The live defect that was cleared by the spurious pairing.
        live: usize,
        /// The already-cleared defect whose wave caused it.
        ghost: usize,
    },
}

/// The greedy signal-timing decoder.
#[derive(Debug, Clone)]
pub struct GreedyMeshAlgorithm {
    config: MeshConfig,
}

impl GreedyMeshAlgorithm {
    /// Creates the algorithm for a mesh configuration.
    #[must_use]
    pub fn new(config: MeshConfig) -> Self {
        GreedyMeshAlgorithm { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Decodes the given defects, returning the chain, cycle count and the
    /// list of pairings in the order they completed.
    #[must_use]
    pub fn decode_defects_with_pairings(
        &self,
        lattice: &Lattice,
        sector: Sector,
        defects: &[usize],
    ) -> (MeshDecodeResult, Vec<MeshPairing>) {
        let cfg = &self.config;
        for &a in defects {
            assert_eq!(
                lattice.ancilla_sector(a),
                sector,
                "defect {a} does not belong to the {sector} sector"
            );
        }
        let mut live: BTreeSet<usize> = defects.iter().copied().collect();
        let mut ghosts: BTreeSet<usize> = BTreeSet::new();
        let mut chain: BTreeSet<usize> = BTreeSet::new();
        let mut pairings = Vec::new();
        let mut cycles = 0usize;
        let initial = live.len();
        let max_cycles = cfg.max_cycles(lattice.size() + 2);

        let mesh_delta = |a: usize, b: usize| {
            let ca = lattice.ancilla_coord(a);
            let cb = lattice.ancilla_coord(b);
            (ca.row.abs_diff(cb.row), ca.col.abs_diff(cb.col))
        };
        // Distance (in mesh cells) from an ancilla module to the nearest
        // boundary module of its sector: one cell beyond the last data qubit.
        let boundary_mesh_distance = |a: usize| 2 * lattice.boundary_distance(a);

        while !live.is_empty() && cycles < max_cycles {
            // --- Find the earliest-completing candidate pairings ----------
            let live_vec: Vec<usize> = live.iter().copied().collect();
            let mut best_time = usize::MAX;
            // (completion, pairing) candidates at the minimal completion time.
            let mut candidates: Vec<(usize, MeshPairing)> = Vec::new();
            let consider = |time: usize,
                            pairing: MeshPairing,
                            best: &mut usize,
                            cands: &mut Vec<(usize, MeshPairing)>| {
                if time < *best {
                    *best = time;
                    cands.clear();
                }
                if time == *best {
                    cands.push((time, pairing));
                }
            };

            for (i, &a) in live_vec.iter().enumerate() {
                for &b in &live_vec[i + 1..] {
                    let (dr, dc) = mesh_delta(a, b);
                    let t = pair_timing(cfg, dr, dc).completion;
                    consider(
                        t,
                        MeshPairing::Defects(a, b),
                        &mut best_time,
                        &mut candidates,
                    );
                }
                if cfg.boundary {
                    let t = boundary_timing(cfg, boundary_mesh_distance(a)).completion;
                    consider(
                        t,
                        MeshPairing::ToBoundary(a),
                        &mut best_time,
                        &mut candidates,
                    );
                }
                if !cfg.reset {
                    for &g in &ghosts {
                        let (dr, dc) = mesh_delta(a, g);
                        let t = pair_timing(cfg, dr, dc).completion;
                        consider(
                            t,
                            MeshPairing::ToGhost { live: a, ghost: g },
                            &mut best_time,
                            &mut candidates,
                        );
                    }
                }
            }

            if candidates.is_empty() {
                // No way to pair the remaining defects (e.g. a lone defect
                // with no boundary modules): the decode stalls until the cap.
                cycles = max_cycles;
                break;
            }

            // --- Select which of the tied candidates actually complete ----
            let mut cleared_this_round: BTreeSet<usize> = BTreeSet::new();
            let mut selected: Vec<MeshPairing> = Vec::new();
            for (_, pairing) in candidates {
                let endpoints: Vec<usize> = match &pairing {
                    MeshPairing::Defects(a, b) => vec![*a, *b],
                    MeshPairing::ToBoundary(a) => vec![*a],
                    MeshPairing::ToGhost { live, .. } => vec![*live],
                };
                let conflict = endpoints.iter().any(|e| cleared_this_round.contains(e));
                if conflict && cfg.equidistant_handshake {
                    // The request/grant handshake lets each hot module commit
                    // to exactly one pairing; later ties are dropped.
                    continue;
                }
                // Without the handshake, equidistant ties all fire (the flaw
                // Figure 8(c) illustrates); with it, disjoint simultaneous
                // pairings still complete concurrently.
                for e in &endpoints {
                    cleared_this_round.insert(*e);
                }
                selected.push(pairing);
            }

            // --- Apply the selected pairings -------------------------------
            for pairing in &selected {
                let path = match pairing {
                    MeshPairing::Defects(a, b) => lattice.correction_path(*a, *b),
                    MeshPairing::ToBoundary(a) => lattice.boundary_path(*a),
                    MeshPairing::ToGhost { live, ghost } => lattice.correction_path(*live, *ghost),
                };
                for q in path {
                    // Chains overlap-toggle rather than accumulate: two chains
                    // crossing the same data qubit cancel, exactly like two
                    // pair pulses flipping the same error output.
                    if !chain.insert(q) {
                        chain.remove(&q);
                    }
                }
            }
            for &e in &cleared_this_round {
                live.remove(&e);
                ghosts.insert(e);
            }
            pairings.extend(selected);

            cycles += best_time;
            if cfg.reset && !live.is_empty() {
                cycles += usize::from(cfg.module_depth);
            }
            if cycles >= max_cycles {
                cycles = max_cycles;
                break;
            }
        }

        let completed = live.is_empty();
        let result = MeshDecodeResult {
            chain_data_qubits: chain.into_iter().collect(),
            cycles,
            cleared_defects: initial - live.len(),
            completed,
        };
        (result, pairings)
    }

    /// Decodes the given defects, returning only the decode result.
    #[must_use]
    pub fn decode_defects(
        &self,
        lattice: &Lattice,
        sector: Sector,
        defects: &[usize],
    ) -> MeshDecodeResult {
        self.decode_defects_with_pairings(lattice, sector, defects)
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DecoderVariant;
    use nisqplus_qec::lattice::Coord;
    use nisqplus_qec::pauli::{Pauli, PauliString};

    fn final_algorithm() -> GreedyMeshAlgorithm {
        GreedyMeshAlgorithm::new(DecoderVariant::Final.config())
    }

    fn ancilla_at(lattice: &Lattice, row: usize, col: usize) -> usize {
        lattice.cell(Coord::new(row, col)).index
    }

    #[test]
    fn timing_model_basics() {
        let cfg = DecoderVariant::Final.config();
        // Adjacent pair (two mesh cells apart, head-on).
        let t = pair_timing(&cfg, 2, 0);
        assert_eq!(t.detection, 1);
        assert_eq!(t.completion, 4);
        // Diagonal pair.
        let t = pair_timing(&cfg, 2, 4);
        assert_eq!(t.detection, 4);
        assert_eq!(t.completion, 16);
        // Boundary pairing at mesh distance 2.
        let t = boundary_timing(&cfg, 2);
        assert_eq!(t.completion, 8);
        // Without the handshake everything is cheaper.
        let cfg = DecoderVariant::WithResetAndBoundary.config();
        assert!(pair_timing(&cfg, 2, 4).completion < 16);
    }

    #[test]
    fn empty_defects_decode_instantly() {
        let lat = Lattice::new(5).unwrap();
        let result = final_algorithm().decode_defects(&lat, Sector::X, &[]);
        assert!(result.completed);
        assert_eq!(result.cycles, 0);
    }

    #[test]
    fn pair_and_boundary_chains_clear_the_syndrome() {
        let lat = Lattice::new(7).unwrap();
        let defects = vec![
            ancilla_at(&lat, 5, 4),
            ancilla_at(&lat, 7, 6),
            ancilla_at(&lat, 1, 12),
        ];
        let (result, pairings) =
            final_algorithm().decode_defects_with_pairings(&lat, Sector::X, &defects);
        assert!(result.completed);
        assert_eq!(result.cleared_defects, 3);
        assert_eq!(pairings.len(), 2);
        let correction =
            PauliString::from_sparse(lat.num_data(), &result.chain_data_qubits, Pauli::Z);
        let syndrome = lat.syndrome_of(&correction);
        let mut cleared = lat.defects(&syndrome, Sector::X);
        cleared.sort_unstable();
        let mut expected = defects.clone();
        expected.sort_unstable();
        assert_eq!(cleared, expected);
    }

    #[test]
    fn lone_defect_without_boundary_never_completes() {
        let lat = Lattice::new(5).unwrap();
        let algorithm = GreedyMeshAlgorithm::new(DecoderVariant::WithReset.config());
        let result = algorithm.decode_defects(&lat, Sector::X, &[ancilla_at(&lat, 1, 4)]);
        assert!(!result.completed);
        assert_eq!(result.cleared_defects, 0);
        assert_eq!(result.cycles, algorithm.config().max_cycles(lat.size() + 2));
    }

    #[test]
    fn equidistant_flaw_pairs_with_both_without_handshake() {
        // Three colinear defects: the middle one is equidistant from both ends.
        let lat = Lattice::new(9).unwrap();
        let left = ancilla_at(&lat, 7, 2);
        let middle = ancilla_at(&lat, 7, 6);
        let right = ancilla_at(&lat, 7, 10);
        let no_handshake = GreedyMeshAlgorithm::new(DecoderVariant::WithResetAndBoundary.config());
        let (_, pairings) =
            no_handshake.decode_defects_with_pairings(&lat, Sector::X, &[left, middle, right]);
        // Both (left, middle) and (middle, right) complete simultaneously.
        let defect_pairs = pairings
            .iter()
            .filter(|p| matches!(p, MeshPairing::Defects(_, _)))
            .count();
        assert_eq!(defect_pairs, 2, "pairings: {pairings:?}");

        // The full design breaks the tie and pairs the middle with only one end.
        let (_, pairings) =
            final_algorithm().decode_defects_with_pairings(&lat, Sector::X, &[left, middle, right]);
        let middle_pairs = pairings
            .iter()
            .filter(|p| match p {
                MeshPairing::Defects(a, b) => *a == middle || *b == middle,
                MeshPairing::ToBoundary(a) => *a == middle,
                MeshPairing::ToGhost { live, .. } => *live == middle,
            })
            .count();
        assert_eq!(middle_pairs, 1, "pairings: {pairings:?}");
    }

    #[test]
    fn ghost_pairing_occurs_only_without_reset() {
        // Two nearby defects pair first; a third defect closer to one of the
        // ghosts than to the boundary then mis-pairs when reset is disabled.
        let lat = Lattice::new(9).unwrap();
        let a = ancilla_at(&lat, 7, 6);
        let b = ancilla_at(&lat, 7, 8);
        let c = ancilla_at(&lat, 7, 12);
        let baseline = GreedyMeshAlgorithm::new(DecoderVariant::Baseline.config());
        let (_, pairings) = baseline.decode_defects_with_pairings(&lat, Sector::X, &[a, b, c]);
        assert!(
            pairings
                .iter()
                .any(|p| matches!(p, MeshPairing::ToGhost { .. })),
            "expected a ghost pairing, got {pairings:?}"
        );
        let with_reset = GreedyMeshAlgorithm::new(DecoderVariant::WithReset.config());
        let (_, pairings) = with_reset.decode_defects_with_pairings(&lat, Sector::X, &[a, b, c]);
        assert!(
            !pairings
                .iter()
                .any(|p| matches!(p, MeshPairing::ToGhost { .. })),
            "reset must prevent ghost pairings, got {pairings:?}"
        );
    }

    #[test]
    fn cycles_grow_with_separation() {
        let lat = Lattice::new(9).unwrap();
        let algorithm = final_algorithm();
        let near = algorithm.decode_defects(
            &lat,
            Sector::X,
            &[ancilla_at(&lat, 7, 6), ancilla_at(&lat, 9, 6)],
        );
        let far = algorithm.decode_defects(
            &lat,
            Sector::X,
            &[ancilla_at(&lat, 7, 6), ancilla_at(&lat, 7, 12)],
        );
        assert!(far.cycles > near.cycles);
    }

    #[test]
    fn overlapping_chains_cancel() {
        // Two defects whose boundary paths share no qubits plus a defect pair
        // whose path overlaps nothing: the chain is simply their union; but if
        // two pairings ever produce the same qubit twice it must cancel.  The
        // invariant checked here is that the correction always reproduces the
        // defect syndrome exactly for the final design.
        let lat = Lattice::new(9).unwrap();
        let defects: Vec<usize> = vec![
            ancilla_at(&lat, 1, 2),
            ancilla_at(&lat, 3, 2),
            ancilla_at(&lat, 1, 6),
            ancilla_at(&lat, 15, 10),
        ];
        let result = final_algorithm().decode_defects(&lat, Sector::X, &defects);
        assert!(result.completed);
        let correction =
            PauliString::from_sparse(lat.num_data(), &result.chain_data_qubits, Pauli::Z);
        let syndrome = lat.syndrome_of(&correction);
        let mut cleared = lat.defects(&syndrome, Sector::X);
        cleared.sort_unstable();
        let mut expected = defects;
        expected.sort_unstable();
        assert_eq!(cleared, expected);
    }
}
