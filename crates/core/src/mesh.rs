//! Cycle-accurate simulation of the SFQ decoder mesh.
//!
//! The mesh contains one module per physical qubit, connected to its four
//! neighbours, plus (in the full design) boundary modules surrounding the two
//! lattice edges relevant to the sector being decoded.  All behaviour is
//! local and synchronous: on every clock cycle each module looks at the
//! pulses that arrived from its neighbours during the previous cycle and
//! emits new pulses, exactly as the clocked SFQ gates of Section VI do.
//!
//! The engine simulates the four signal families of the module
//! micro-architecture (Figure 9) — *grow*, *pair request*, *pair grant* and
//! *pair* — plus the global reset wire, and records which modules became part
//! of a correction chain.

use crate::config::MeshConfig;
use nisqplus_qec::lattice::{Coord, Lattice, QubitKind, Sector};
use serde::{Deserialize, Serialize};

/// The four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up = 0,
    Down = 1,
    Left = 2,
    Right = 3,
}

impl Dir {
    const ALL: [Dir; 4] = [Dir::Up, Dir::Down, Dir::Left, Dir::Right];

    fn opposite(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
            Dir::Left => Dir::Right,
            Dir::Right => Dir::Left,
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }

    fn offset(self) -> (isize, isize) {
        match self {
            Dir::Up => (-1, 0),
            Dir::Down => (1, 0),
            Dir::Left => (0, -1),
            Dir::Right => (0, 1),
        }
    }
}

fn dirs_in(mask: u8) -> impl Iterator<Item = Dir> {
    Dir::ALL.into_iter().filter(move |d| mask & d.bit() != 0)
}

/// The hardwired "effective intermediate" rule (Section V-C): when grow
/// pulses from two hot modules meet, exactly one of the two candidate corner
/// modules must act, otherwise the two hot modules would handshake with
/// different corners and the pairing would fall apart.  A module is effective
/// when its incoming grow pulses include the *left* direction, or when they
/// form a head-on vertical collision.
fn is_effective_intermediate(grow_mask: u8) -> bool {
    if grow_mask.count_ones() < 2 {
        return false;
    }
    let has = |d: Dir| grow_mask & d.bit() != 0;
    has(Dir::Left) || (has(Dir::Up) && has(Dir::Down))
}

/// What occupies a mesh position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModuleKind {
    /// A module sitting on a physical qubit (data or ancilla).
    Interior,
    /// A boundary module: never grows, but can terminate chains.
    Boundary,
    /// No module: signals sent here are lost.
    Void,
}

/// One set of per-module incoming-pulse masks (bit = direction of arrival).
#[derive(Debug, Clone, Default)]
struct SignalFrame {
    grow: Vec<u8>,
    request: Vec<u8>,
    grant: Vec<u8>,
    pair: Vec<u8>,
}

impl SignalFrame {
    fn new(len: usize) -> Self {
        SignalFrame {
            grow: vec![0; len],
            request: vec![0; len],
            grant: vec![0; len],
            pair: vec![0; len],
        }
    }

    fn clear(&mut self) {
        self.grow.fill(0);
        self.request.fill(0);
        self.grant.fill(0);
        self.pair.fill(0);
    }
}

/// The outcome of decoding one sector's defects on the mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshDecodeResult {
    /// Data qubits flagged by the error-output of their module (the chain).
    pub chain_data_qubits: Vec<usize>,
    /// Number of mesh clock cycles the decode took.
    pub cycles: usize,
    /// Number of hot syndromes that were successfully paired off.
    pub cleared_defects: usize,
    /// `true` if every hot syndrome was cleared before the cycle cap.
    pub completed: bool,
}

/// The cycle-accurate mesh decoding engine.
///
/// The engine is stateless between decodes; construct it once per
/// configuration and reuse it.
#[derive(Debug, Clone)]
pub struct MeshEngine {
    config: MeshConfig,
}

impl MeshEngine {
    /// Creates an engine with the given mesh configuration.
    #[must_use]
    pub fn new(config: MeshConfig) -> Self {
        MeshEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Decodes a set of hot syndromes (given as ancilla indices of `sector`)
    /// on the mesh built for `lattice`.
    ///
    /// # Panics
    ///
    /// Panics if a defect index is not an ancilla of the requested sector.
    #[must_use]
    pub fn decode_defects(
        &self,
        lattice: &Lattice,
        sector: Sector,
        defects: &[usize],
    ) -> MeshDecodeResult {
        let size = lattice.size();
        let n = size + 2; // one-cell halo for boundary modules
        let num_modules = n * n;
        let idx = |row: usize, col: usize| row * n + col;

        // --- Build the module map --------------------------------------
        let mut kind = vec![ModuleKind::Void; num_modules];
        for r in 0..size {
            for c in 0..size {
                kind[idx(r + 1, c + 1)] = ModuleKind::Interior;
            }
        }
        if self.config.boundary {
            match sector {
                Sector::X => {
                    // Chains terminate on the top and bottom edges.
                    for c in 1..=size {
                        kind[idx(0, c)] = ModuleKind::Boundary;
                        kind[idx(n - 1, c)] = ModuleKind::Boundary;
                    }
                }
                Sector::Z => {
                    for r in 1..=size {
                        kind[idx(r, 0)] = ModuleKind::Boundary;
                        kind[idx(r, n - 1)] = ModuleKind::Boundary;
                    }
                }
            }
        }

        // --- Initial hot syndromes --------------------------------------
        let mut hot = vec![false; num_modules];
        for &a in defects {
            assert_eq!(
                lattice.ancilla_sector(a),
                sector,
                "defect {a} does not belong to the {sector} sector"
            );
            let coord = lattice.ancilla_coord(a);
            hot[idx(coord.row + 1, coord.col + 1)] = true;
        }
        let initial_defects = defects.len();
        if initial_defects == 0 {
            return MeshDecodeResult {
                chain_data_qubits: Vec::new(),
                cycles: 0,
                cleared_defects: 0,
                completed: true,
            };
        }

        // --- Per-module state -------------------------------------------
        let mut reset_counter = vec![0u8; num_modules];
        let mut in_chain = vec![false; num_modules];
        // The direction a hot module has already granted; the grant latch is
        // part of the same storage loop that holds the hot-syndrome input, so
        // later requests from other directions cannot steal the pairing.
        let mut granted_dir: Vec<Option<Dir>> = vec![None; num_modules];
        let mut current = SignalFrame::new(num_modules);
        let mut next = SignalFrame::new(num_modules);

        let max_cycles = self.config.max_cycles(n);
        let mut cycles = 0usize;
        let mut remaining = initial_defects;

        // Delivers a pulse leaving module (row, col) in direction `dir`.
        let deliver = |frame: &mut Vec<u8>, row: usize, col: usize, dir: Dir| {
            let (dr, dc) = dir.offset();
            let nr = row as isize + dr;
            let nc = col as isize + dc;
            if nr >= 0 && nr < n as isize && nc >= 0 && nc < n as isize {
                frame[idx(nr as usize, nc as usize)] |= dir.opposite().bit();
            }
        };

        while remaining > 0 && cycles < max_cycles {
            next.clear();
            let mut trigger_reset = false;

            for row in 0..n {
                for col in 0..n {
                    let m = idx(row, col);
                    match kind[m] {
                        ModuleKind::Void => continue,
                        ModuleKind::Boundary => {
                            let blocked = reset_counter[m] > 0;
                            let grow_in = if blocked { 0 } else { current.grow[m] };
                            let grant_in = if blocked { 0 } else { current.grant[m] };
                            // Boundary modules behave like permanently hot
                            // modules that never grow: they answer grow with a
                            // pair request (or directly with a pair when the
                            // handshake is disabled) and answer grants with
                            // pair signals.
                            for d in dirs_in(grow_in) {
                                if self.config.equidistant_handshake {
                                    deliver(&mut next.request, row, col, d);
                                } else {
                                    deliver(&mut next.pair, row, col, d);
                                }
                            }
                            for d in dirs_in(grant_in) {
                                deliver(&mut next.pair, row, col, d);
                            }
                            // Pair pulses reaching the boundary are absorbed.
                        }
                        ModuleKind::Interior => {
                            let blocked = reset_counter[m] > 0;
                            let grow_in = if blocked { 0 } else { current.grow[m] };
                            let request_in = if blocked { 0 } else { current.request[m] };
                            let grant_in = if blocked { 0 } else { current.grant[m] };
                            let pair_in = current.pair[m];

                            // Grow subcircuit: hot modules emit in all four
                            // directions; passing pulses continue straight.
                            if hot[m] && !blocked {
                                for d in Dir::ALL {
                                    deliver(&mut next.grow, row, col, d);
                                }
                            }
                            for d in dirs_in(grow_in) {
                                deliver(&mut next.grow, row, col, d.opposite());
                            }

                            // Intermediate-module detection: grow pulses from
                            // two different directions meet here, and the
                            // hardwired effectiveness rule picks one corner.
                            if is_effective_intermediate(grow_in) {
                                for d in dirs_in(grow_in) {
                                    if self.config.equidistant_handshake {
                                        deliver(&mut next.request, row, col, d);
                                    } else {
                                        deliver(&mut next.pair, row, col, d);
                                        in_chain[m] = true;
                                    }
                                }
                            }

                            // Pair-request subcircuit.
                            if request_in != 0 {
                                if hot[m] && !blocked {
                                    // Grant exactly one request; the latched
                                    // grant direction keeps later requests
                                    // from other directions from stealing it.
                                    let granted = match granted_dir[m] {
                                        Some(d) if request_in & d.bit() != 0 => Some(d),
                                        Some(_) => None,
                                        None => dirs_in(request_in).next(),
                                    };
                                    if let Some(d) = granted {
                                        granted_dir[m] = Some(d);
                                        deliver(&mut next.grant, row, col, d);
                                    }
                                } else {
                                    for d in dirs_in(request_in) {
                                        deliver(&mut next.request, row, col, d.opposite());
                                    }
                                }
                            }

                            // Pair-grant subcircuit.
                            if grant_in.count_ones() >= 2 {
                                // Two grants meet: this module becomes the
                                // pairing point and emits pair pulses back
                                // toward both hot modules.
                                in_chain[m] = true;
                                for d in dirs_in(grant_in) {
                                    deliver(&mut next.pair, row, col, d);
                                }
                            } else if !hot[m] {
                                for d in dirs_in(grant_in) {
                                    deliver(&mut next.grant, row, col, d.opposite());
                                }
                            }

                            // Pair subcircuit (never blocked by reset).
                            if pair_in != 0 {
                                in_chain[m] = true;
                                if hot[m] {
                                    // Pairing complete at this defect.
                                    hot[m] = false;
                                    remaining -= 1;
                                    if self.config.reset {
                                        trigger_reset = true;
                                    }
                                } else {
                                    for d in dirs_in(pair_in) {
                                        deliver(&mut next.pair, row, col, d.opposite());
                                    }
                                }
                            }
                        }
                    }
                }
            }

            if trigger_reset {
                reset_counter.fill(self.config.module_depth);
            } else {
                for counter in &mut reset_counter {
                    *counter = counter.saturating_sub(1);
                }
            }

            std::mem::swap(&mut current, &mut next);
            cycles += 1;
        }

        // --- Extract the correction chain --------------------------------
        let mut chain_data_qubits = Vec::new();
        for r in 0..size {
            for c in 0..size {
                let m = idx(r + 1, c + 1);
                if in_chain[m] {
                    let cell = lattice.cell(Coord::new(r, c));
                    if cell.kind == QubitKind::Data {
                        chain_data_qubits.push(cell.index);
                    }
                }
            }
        }

        MeshDecodeResult {
            chain_data_qubits,
            cycles,
            cleared_defects: initial_defects - remaining,
            completed: remaining == 0,
        }
    }
}

impl Default for MeshEngine {
    fn default() -> Self {
        MeshEngine::new(MeshConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DecoderVariant;
    use nisqplus_qec::lattice::Coord;

    fn engine() -> MeshEngine {
        MeshEngine::new(DecoderVariant::Final.config())
    }

    fn ancilla_at(lattice: &Lattice, row: usize, col: usize) -> usize {
        let cell = lattice.cell(Coord::new(row, col));
        assert!(cell.kind.is_ancilla(), "({row},{col}) is not an ancilla");
        cell.index
    }

    fn data_at(lattice: &Lattice, row: usize, col: usize) -> usize {
        let cell = lattice.cell(Coord::new(row, col));
        assert_eq!(cell.kind, QubitKind::Data);
        cell.index
    }

    #[test]
    fn empty_defect_list_is_a_no_op() {
        let lat = Lattice::new(5).unwrap();
        let result = engine().decode_defects(&lat, Sector::X, &[]);
        assert!(result.completed);
        assert_eq!(result.cycles, 0);
        assert!(result.chain_data_qubits.is_empty());
    }

    #[test]
    fn adjacent_defect_pair_is_connected_by_one_data_qubit() {
        let lat = Lattice::new(5).unwrap();
        // Two X ancillas in the same column, two rows apart, share one data qubit.
        let a = ancilla_at(&lat, 3, 4);
        let b = ancilla_at(&lat, 5, 4);
        let between = data_at(&lat, 4, 4);
        let result = engine().decode_defects(&lat, Sector::X, &[a, b]);
        assert!(result.completed, "decode did not finish: {result:?}");
        assert_eq!(result.cleared_defects, 2);
        assert!(
            result.chain_data_qubits.contains(&between),
            "chain {:?} misses the connecting data qubit {between}",
            result.chain_data_qubits
        );
    }

    #[test]
    fn single_defect_near_boundary_matches_to_boundary() {
        let lat = Lattice::new(5).unwrap();
        // X ancilla in the top row of ancillas: one data qubit away from the boundary.
        let a = ancilla_at(&lat, 1, 4);
        let above = data_at(&lat, 0, 4);
        let result = engine().decode_defects(&lat, Sector::X, &[a]);
        assert!(result.completed);
        assert!(
            result.chain_data_qubits.contains(&above),
            "chain {:?}",
            result.chain_data_qubits
        );
    }

    #[test]
    fn single_defect_without_boundary_support_times_out() {
        let lat = Lattice::new(5).unwrap();
        let a = ancilla_at(&lat, 1, 4);
        let engine = MeshEngine::new(DecoderVariant::WithReset.config());
        let result = engine.decode_defects(&lat, Sector::X, &[a]);
        assert!(
            !result.completed,
            "a lone defect cannot pair without boundary modules"
        );
        assert_eq!(result.cleared_defects, 0);
    }

    #[test]
    fn diagonal_pair_produces_a_connecting_chain() {
        let lat = Lattice::new(7).unwrap();
        let a = ancilla_at(&lat, 5, 4);
        let b = ancilla_at(&lat, 7, 6);
        let result = engine().decode_defects(&lat, Sector::X, &[a, b]);
        assert!(result.completed);
        assert_eq!(result.cleared_defects, 2);
        // The chain must contain a data qubit adjacent to each defect: the
        // pulse-level engine may additionally mark stray modules (an artifact
        // of grants overshooting the corner), but the connection itself must
        // be there.
        let touches = |ancilla: usize| {
            lat.stabilizer_support(ancilla)
                .iter()
                .any(|q| result.chain_data_qubits.contains(q))
        };
        assert!(
            touches(a),
            "chain {:?} does not touch defect {a}",
            result.chain_data_qubits
        );
        assert!(
            touches(b),
            "chain {:?} does not touch defect {b}",
            result.chain_data_qubits
        );
    }

    #[test]
    fn z_sector_uses_left_right_boundaries() {
        let lat = Lattice::new(5).unwrap();
        // Z ancilla adjacent to the left boundary.
        let a = ancilla_at(&lat, 4, 1);
        let left = data_at(&lat, 4, 0);
        let result = engine().decode_defects(&lat, Sector::Z, &[a]);
        assert!(result.completed);
        assert!(result.chain_data_qubits.contains(&left));
    }

    #[test]
    fn far_pair_takes_more_cycles_than_near_pair() {
        let lat = Lattice::new(9).unwrap();
        let near = engine().decode_defects(
            &lat,
            Sector::X,
            &[ancilla_at(&lat, 7, 8), ancilla_at(&lat, 9, 8)],
        );
        let far = engine().decode_defects(
            &lat,
            Sector::X,
            &[ancilla_at(&lat, 7, 2), ancilla_at(&lat, 7, 14)],
        );
        assert!(near.completed && far.completed);
        assert!(
            far.cycles > near.cycles,
            "far pair ({}) should take longer than near pair ({})",
            far.cycles,
            near.cycles
        );
    }

    #[test]
    fn four_defects_all_cleared() {
        let lat = Lattice::new(9).unwrap();
        let defects = vec![
            ancilla_at(&lat, 1, 2),
            ancilla_at(&lat, 3, 2),
            ancilla_at(&lat, 11, 10),
            ancilla_at(&lat, 13, 10),
        ];
        let result = engine().decode_defects(&lat, Sector::X, &defects);
        assert!(result.completed, "{result:?}");
        assert_eq!(result.cleared_defects, 4);
        // Each pair shares exactly one data qubit; both must be in the chain.
        let between_first = data_at(&lat, 2, 2);
        let between_second = data_at(&lat, 12, 10);
        assert!(result.chain_data_qubits.contains(&between_first));
        assert!(result.chain_data_qubits.contains(&between_second));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn wrong_sector_defect_panics() {
        let lat = Lattice::new(5).unwrap();
        let z_ancilla = ancilla_at(&lat, 0, 1);
        let _ = engine().decode_defects(&lat, Sector::X, &[z_ancilla]);
    }

    #[test]
    fn engine_default_uses_final_config() {
        let engine = MeshEngine::default();
        assert!(engine.config().reset);
        assert!(engine.config().boundary);
        assert!(engine.config().equidistant_handshake);
    }
}
