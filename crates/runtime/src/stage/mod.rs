//! Composable pipeline stages with credit-based flow control.
//!
//! The paper's argument is a *pipeline* argument: syndromes must flow
//! through extraction, transport, and decode without the backlog ever
//! growing.  This module rebuilds the streaming engine's hand-wired loop as
//! latency-insensitive stages in the style of hardware combinator
//! libraries — every seam between two stages is a valid/ready handshake
//! backed by a credit loop, so backpressure is a first-class, *measurable*
//! signal instead of an accident of buffer sizes:
//!
//! * [`credit`] — [`CreditCounter`], the flow-control token; exhaustion is
//!   a counted stall, never a lost record,
//! * [`channel`] — [`CreditChannel`], a credit-carrying channel over the
//!   lock-free [`SpmcRing`](crate::queue::SpmcRing),
//! * [`skid`] — [`SkidBuffer`], the one-or-two-entry buffer that decouples
//!   a producer's valid from a consumer's ready across a stalled seam,
//! * [`mux`] — [`RoundRobinMux`], [`StealMux`] and [`PriorityMux`]: the
//!   arbiters that decide which input feeds a worker next,
//! * [`gate`] — [`QosGate`], per-lattice admission control (push policy +
//!   outstanding-round budget as a pipeline-spanning credit loop),
//! * [`decode`] — [`DecodeStage`], the prepared-decoder hot path that turns
//!   a wire record into a composed correction,
//! * [`sink`] — [`FrameSink`] (frame commit + latency telemetry) and
//!   [`DepthSink`] (down-sampled backlog timelines, aggregate and per
//!   lattice),
//! * [`graph`] — [`PipelineGraph`], the builder that wires stages into a
//!   running pipeline: one paced source thread, N decode workers, and
//!   backpressure at every seam.
//!
//! Every stage answers for itself through a uniform [`StageReport`]
//! (credits issued/consumed, occupancy, stall cycles), and the engine folds
//! all of them into
//! [`RuntimeReport::stages`](crate::telemetry::RuntimeReport::stages) — the
//! flow-control behaviour the paper assumes of hardware, measured per seam
//! in software.  `docs/ARCHITECTURE.md` draws the graph and explains how to
//! write a new stage.

pub mod channel;
pub mod credit;
pub mod decode;
pub mod gate;
pub mod graph;
pub mod mux;
pub mod sink;
pub mod skid;

pub use channel::CreditChannel;
pub use credit::CreditCounter;
pub use decode::{DecodeStage, DecodedRound};
pub use gate::{Admission, QosGate};
pub use graph::{
    ClassRouter, ConsumePolicy, LatticeGenStats, PipelineGraph, PipelineOptions, PipelineRun,
    RouteStage, SpreadRouter, WorkerSeat,
};
pub use mux::{BatchMux, FillResult, PriorityMux, RoundRobinMux, StealMux};
pub use sink::{DepthSink, FrameSink, WorkerLatticeOutput, WorkerOutput};
pub use skid::SkidBuffer;

use serde::{Deserialize, Serialize};

/// One stage's uniform self-report, folded into
/// [`RuntimeReport::stages`](crate::telemetry::RuntimeReport::stages).
///
/// The fields are deliberately generic so every stage — source, gate,
/// channel, mux, decode, sink — answers the same questions: how much flowed
/// through, how often it stalled, and what its credit loop did.  A stage
/// leaves fields it has no notion of at zero.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage's name, unique within one run's report (worker- or
    /// channel-indexed stages are suffixed, e.g. `"channel.2"`,
    /// `"decode.0"`).
    pub stage: String,
    /// Items the stage accepted from upstream.
    pub accepted: u64,
    /// Items the stage handed downstream.
    pub emitted: u64,
    /// Items the stage refused (a full channel's rejected send, a gate's
    /// shed round).  Refusals under a blocking policy are retried and show
    /// up as [`StageReport::stall_cycles`] instead.
    pub rejected: u64,
    /// Credits the stage's loop returned to senders (replenishments).
    pub credits_issued: u64,
    /// Credits the stage's loop consumed (successful acquisitions).
    pub credits_consumed: u64,
    /// The most items ever resident in the stage at once.
    pub occupancy_peak: u64,
    /// Spin/poll iterations spent blocked on a not-ready neighbour: a
    /// source pacing to its cadence, a gate waiting for budget, a sender
    /// waiting for a slot, a worker polling empty channels.
    pub stall_cycles: u64,
}

impl StageReport {
    /// A report with the given name and every counter at zero.
    #[must_use]
    pub fn named(stage: impl Into<String>) -> Self {
        StageReport {
            stage: stage.into(),
            ..StageReport::default()
        }
    }
}
