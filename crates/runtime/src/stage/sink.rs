//! Sinks: where the pipeline's results and telemetry come to rest.
//!
//! Two sinks close the stage graph:
//!
//! * [`FrameSink`] — one per worker thread.  Every [`DecodedRound`] is
//!   committed into the worker's *private* per-lattice [`PauliFrame`] shard
//!   (no cross-worker synchronization on the hot path; the engine merges
//!   shards after the run), optionally kept as a
//!   [`RoundCorrection`], and annotated with per-round latency samples
//!   recorded into bounded-memory [`LogHistogram`]s — the sink allocates
//!   nothing per round, no matter how long the stream runs.
//! * [`DepthSink`] — one on the source thread.  Down-samples the run into
//!   at most `max_depth_samples` [`DepthSample`]s, each carrying the
//!   aggregate queue depth and backlog *and* the per-lattice backlog
//!   breakdown, so a single timeline shows which lattice was falling
//!   behind when.  When the stream outruns its sampling stride (endless
//!   sources, wrong round estimates) the timeline compacts in place —
//!   halving resolution while always retaining the peak-backlog sample and
//!   the newest sample — so memory stays bounded by the cap.

use crate::engine::RoundCorrection;
use crate::lattice_set::LatticeSet;
use crate::obs::{HistogramSnapshot, LocalHistogram, LogHistogram, StageMetrics};
use crate::stage::decode::DecodedRound;
use crate::stage::StageReport;
use crate::telemetry::{DepthSample, RuntimeCounters};
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::logical::ResidualTally;
use std::sync::Arc;

/// One lattice's slice of a worker's output.
#[derive(Debug)]
pub struct WorkerLatticeOutput {
    /// The worker's private correction-frame shard for this lattice.
    pub frame: PauliFrame,
    /// Decode service-time distribution, nanoseconds (chained timestamps).
    pub decode_hist: HistogramSnapshot,
    /// Emit-to-commit latency distribution, nanoseconds.
    pub total_hist: HistogramSnapshot,
    /// The worker's in-stream residual tally for this lattice (empty unless
    /// the run classifies residuals in stream).  Tallies are plain integer
    /// sums, so the engine's cross-worker merge is order-independent —
    /// byte-identical to the end-of-run replay oracle.
    pub residuals: ResidualTally,
}

/// What one worker thread hands back when the stream ends.
#[derive(Debug)]
pub struct WorkerOutput {
    /// The name of the decoder serving each lattice, in lattice-id order
    /// (per-lattice overrides may differ from the machine-wide factory).
    pub lattice_decoders: Vec<String>,
    /// Per-lattice frame shards and latency histograms, in lattice-id order.
    pub per_lattice: Vec<WorkerLatticeOutput>,
    /// The per-round corrections this worker committed (empty unless
    /// recording was requested).
    pub corrections: Vec<RoundCorrection>,
}

#[derive(Debug)]
struct LatticeSlot {
    frame: PauliFrame,
    decode: LocalHistogram,
    total: LocalHistogram,
    residuals: ResidualTally,
}

/// One worker's commit stage: private frame shards, optional correction
/// recording, per-round latency accounting into fixed-size histograms.
#[derive(Debug)]
pub struct FrameSink {
    slots: Vec<LatticeSlot>,
    corrections: Vec<RoundCorrection>,
    record_corrections: bool,
    /// When set, `corrections` is a ring of at most this many entries
    /// holding the most recent rounds; `None` keeps the full history.
    correction_cap: Option<usize>,
    /// Next ring slot to overwrite once the cap is reached.
    correction_head: usize,
    committed: u64,
    metrics: StageMetrics,
    /// The machine-wide live decode histogram (shared with the
    /// observability plane's snapshot sampler), fed with one bucket-only
    /// atomic add per round in addition to the exact private books.
    live_decode: Option<Arc<LogHistogram>>,
}

impl FrameSink {
    /// A sink with one empty frame shard per lattice of `set`.
    #[must_use]
    pub fn new(set: &LatticeSet, record_corrections: bool) -> Self {
        FrameSink {
            slots: set
                .iter()
                .map(|(_, _, lattice)| LatticeSlot {
                    frame: PauliFrame::new(lattice.num_data()),
                    decode: LocalHistogram::new(),
                    total: LocalHistogram::new(),
                    residuals: ResidualTally::new(),
                })
                .collect(),
            corrections: Vec::new(),
            record_corrections,
            correction_cap: None,
            correction_head: 0,
            committed: 0,
            metrics: StageMetrics::detached(),
            live_decode: None,
        }
    }

    /// Bounds the recorded-correction history to a ring of the `cap` most
    /// recent rounds (`None` — the default — keeps every correction).  A cap
    /// of `0` records nothing while leaving recording formally on.
    #[must_use]
    pub fn with_correction_cap(mut self, cap: Option<usize>) -> Self {
        self.correction_cap = cap;
        self
    }

    /// Attaches registry-backed stage metrics and the run-wide live decode
    /// histogram sampled by the observability plane.
    #[must_use]
    pub fn with_obs(mut self, metrics: StageMetrics, live_decode: Arc<LogHistogram>) -> Self {
        self.metrics = metrics;
        self.live_decode = Some(live_decode);
        self
    }

    /// Commits one decoded round into its lattice's frame shard (and the
    /// correction log, when recording).  Rounds classified in stream
    /// ([`DecodedRound::residual`]) fold into the lattice's
    /// [`ResidualTally`] as they land — no per-round state survives beyond
    /// four integer counters.
    pub fn commit(&mut self, round: &DecodedRound<'_>) {
        let slot = &mut self.slots[round.lattice_id as usize];
        slot.frame.record(round.correction);
        if let Some((x, z)) = round.residual {
            slot.residuals.record_states(x, z);
        }
        if self.record_corrections {
            match self.correction_cap {
                Some(cap) if self.corrections.len() >= cap => {
                    // Ring mode: overwrite the oldest entry in place, reusing
                    // its correction buffer (no per-round allocation once the
                    // ring is full).
                    if cap > 0 {
                        let entry = &mut self.corrections[self.correction_head];
                        entry.lattice_id = round.lattice_id;
                        entry.round = round.round;
                        entry.correction.copy_from(round.correction);
                        self.correction_head = (self.correction_head + 1) % cap;
                    }
                }
                _ => self.corrections.push(RoundCorrection {
                    lattice_id: round.lattice_id,
                    round: round.round,
                    correction: round.correction.clone(),
                }),
            }
        }
        self.committed += 1;
    }

    /// Records one round's latency samples for `lattice_id`, in integer
    /// nanoseconds.  Kept separate from [`FrameSink::commit`] so the
    /// caller's timestamp spans the full unpack-to-commit window of the
    /// round.  Allocation-free, and cheap by construction: two plain
    /// integer histogram updates plus a single relaxed atomic add into the
    /// shared live histogram.
    pub fn record_latency(&mut self, lattice_id: usize, decode_ns: u64, total_ns: u64) {
        let slot = &mut self.slots[lattice_id];
        slot.decode.record(decode_ns);
        slot.total.record(total_ns);
        if let Some(live) = &self.live_decode {
            live.record_bucket(decode_ns);
        }
    }

    /// Rounds committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Consumes the sink into the worker's output, attaching the decode
    /// stage's per-lattice decoder names.
    #[must_use]
    pub fn finish(self, lattice_decoders: Vec<String>) -> WorkerOutput {
        WorkerOutput {
            lattice_decoders,
            per_lattice: self
                .slots
                .into_iter()
                .map(|slot| WorkerLatticeOutput {
                    frame: slot.frame,
                    decode_hist: slot.decode.snapshot(),
                    total_hist: slot.total.snapshot(),
                    residuals: slot.residuals,
                })
                .collect(),
            corrections: self.corrections,
        }
    }

    /// This sink's [`StageReport`]: accepted == emitted == committed rounds.
    /// The sink's own commit count is authoritative (the commit path is
    /// single-owner, so it keeps plain books); reporting refreshes the
    /// registry's mirror of it.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        self.metrics.accepted.store(self.committed);
        self.metrics.emitted.store(self.committed);
        self.metrics.report(stage)
    }
}

/// The source-side telemetry sink: a down-sampled backlog timeline with
/// per-lattice breakdown, hard-capped at `max_depth_samples` entries.
#[derive(Debug)]
pub struct DepthSink {
    total_rounds: u64,
    sample_every: u64,
    max_samples: usize,
    offered: u64,
    timeline: Vec<DepthSample>,
    metrics: StageMetrics,
}

impl DepthSink {
    /// A sink sampling roughly every `total_rounds / max_depth_samples`
    /// rounds (always at least the last round).  The cap is hard: if the
    /// stream outruns the stride, the timeline compacts in place instead of
    /// growing (see [`DepthSink::observe`]).
    #[must_use]
    pub fn new(total_rounds: u64, max_depth_samples: usize) -> Self {
        let max_samples = max_depth_samples.max(1);
        DepthSink {
            total_rounds,
            sample_every: (total_rounds / max_samples as u64).max(1),
            max_samples,
            offered: 0,
            timeline: Vec::new(),
            metrics: StageMetrics::detached(),
        }
    }

    /// Attaches registry-backed stage metrics.
    #[must_use]
    pub fn with_metrics(mut self, metrics: StageMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Offers round `emitted_total` for sampling; on the sampling cadence
    /// (and on the very last round) a [`DepthSample`] is recorded with the
    /// aggregate and per-lattice backlog read from `counters`.
    ///
    /// When the timeline would exceed its cap (plus one slot of slack for
    /// the always-sampled final round), it is compacted: every other sample
    /// is dropped — except the global peak-backlog sample and the newest
    /// sample, which are always retained so the compacted timeline still
    /// brackets the true peak — and the stride doubles.
    pub fn observe(
        &mut self,
        emitted_total: u64,
        elapsed_ns: u64,
        queue_depth: u64,
        counters: &RuntimeCounters,
    ) {
        self.offered += 1;
        if emitted_total % self.sample_every == 0 || emitted_total + 1 == self.total_rounds {
            self.timeline.push(DepthSample {
                round: emitted_total,
                elapsed_ns,
                queue_depth,
                backlog: counters.backlog(),
                per_lattice_backlog: counters
                    .per_lattice
                    .iter()
                    .map(|lattice| lattice.backlog())
                    .collect(),
            });
            self.metrics.occupancy_peak.set_max(queue_depth);
            if self.timeline.len() > self.max_samples + 1 {
                self.compact();
            }
            self.metrics.emitted.store(self.timeline.len() as u64);
        }
    }

    /// Halves the timeline's resolution in place: keeps every other sample
    /// plus the peak-backlog sample and the newest one, then doubles the
    /// stride (multiples of the doubled stride are a subset of the old
    /// stride's, so the phase stays aligned).
    fn compact(&mut self) {
        let last = self.timeline.len() - 1;
        let peak = self
            .timeline
            .iter()
            .enumerate()
            .max_by_key(|(_, sample)| sample.backlog)
            .map_or(0, |(index, _)| index);
        let mut index = 0;
        self.timeline.retain(|_| {
            let keep = index % 2 == 0 || index == peak || index == last;
            index += 1;
            keep
        });
        self.sample_every = self.sample_every.saturating_mul(2);
    }

    /// The timeline recorded so far.
    #[must_use]
    pub fn timeline(&self) -> &[DepthSample] {
        &self.timeline
    }

    /// Consumes the sink into its timeline.
    #[must_use]
    pub fn finish(self) -> Vec<DepthSample> {
        self.timeline
    }

    /// This sink's [`StageReport`]: accepted = rounds offered, emitted =
    /// samples kept (the rest were down-sampled away, not lost — they are
    /// still in the counters).  The offered count is kept in plain books
    /// (the observe path is single-owner); reporting refreshes the
    /// registry's mirror of it.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        self.metrics.accepted.store(self.offered);
        self.metrics.report(stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;
    use crate::packet::{PacketCodec, SyndromePacket};
    use crate::source::{NoiseSpec, SyndromeSource};
    use crate::stage::DecodeStage;
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
    use std::sync::atomic::Ordering;

    fn set_of(distances: &[usize]) -> LatticeSet {
        let specs: Vec<LatticeSpec> = distances
            .iter()
            .map(|&d| {
                let mut spec = LatticeSpec::new(d);
                spec.noise = NoiseSpec::PureDephasing { p: 0.05 };
                spec.rounds = 8;
                spec
            })
            .collect();
        LatticeSet::new(specs).unwrap()
    }

    #[test]
    fn commit_records_frames_corrections_and_latency() {
        let set = set_of(&[3, 3]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
        let mut stage = DecodeStage::new(&set, &codec, &factory);
        let mut sink = FrameSink::new(&set, true);
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, round) in [(0u32, 0u64), (1, 0), (0, 1)] {
            let spec = set.spec(lattice_id as usize);
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                spec.noise,
                spec.seed + round,
            )
            .unwrap();
            let syndrome = source.next_syndrome();
            codec.encode(
                &SyndromePacket::new(lattice_id, round, 0, &syndrome),
                &mut record,
            );
            let decoded = stage.decode(&record).expect("clean record decodes");
            sink.commit(&decoded);
            let id = decoded.lattice_id as usize;
            sink.record_latency(id, 10, 20);
        }
        assert_eq!(sink.committed(), 3);
        assert_eq!(sink.report("sink.0").accepted, 3);
        let output = sink.finish(stage.lattice_decoders().to_vec());
        assert_eq!(output.per_lattice[0].decode_hist.count, 2);
        assert_eq!(output.per_lattice[0].decode_hist.min_ns, 10);
        assert_eq!(output.per_lattice[0].total_hist.max_ns, 20);
        assert_eq!(output.per_lattice[1].decode_hist.count, 1);
        assert_eq!(output.corrections.len(), 3);
        assert_eq!(output.corrections[1].lattice_id, 1);
        assert_eq!(output.lattice_decoders.len(), 2);
    }

    #[test]
    fn correction_cap_turns_the_history_into_a_most_recent_ring() {
        let set = set_of(&[3]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
        let mut stage = DecodeStage::new(&set, &codec, &factory);
        let mut sink = FrameSink::new(&set, true).with_correction_cap(Some(2));
        let spec = set.spec(0);
        let mut source =
            SyndromeSource::new(set.lattice(0).clone(), spec.noise, spec.seed).unwrap();
        let mut record = vec![0u64; codec.words_per_packet()];
        for round in 0..5u64 {
            let syndrome = source.next_syndrome();
            codec.encode(&SyndromePacket::new(0, round, 0, &syndrome), &mut record);
            let decoded = stage.decode(&record).unwrap();
            sink.commit(&decoded);
        }
        assert_eq!(sink.committed(), 5);
        let output = sink.finish(stage.lattice_decoders().to_vec());
        let mut kept: Vec<u64> = output.corrections.iter().map(|c| c.round).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![3, 4], "the ring keeps the newest rounds only");
    }

    #[test]
    fn committed_rounds_fold_into_the_lattice_residual_tally() {
        let set = set_of(&[3, 5]);
        let codec = PacketCodec::with_error_payload(&set.ancilla_bits(), &set.data_bits());
        let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
        let mut stage = DecodeStage::new(&set, &codec, &factory);
        let mut sink = FrameSink::new(&set, false);
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, rounds) in [(0u32, 3u64), (1, 2)] {
            let spec = set.spec(lattice_id as usize);
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                spec.noise,
                spec.seed,
            )
            .unwrap();
            for round in 0..rounds {
                let (error, syndrome) = source.next_error_and_syndrome();
                let packet = SyndromePacket::new(lattice_id, round, 0, &syndrome);
                codec.encode_with_error(&packet, &error, &mut record);
                sink.commit(&stage.decode(&record).unwrap());
            }
        }
        let output = sink.finish(stage.lattice_decoders().to_vec());
        assert_eq!(output.per_lattice[0].residuals.rounds, 3);
        assert_eq!(output.per_lattice[1].residuals.rounds, 2);
        assert_eq!(
            output.per_lattice[0].residuals.successes + output.per_lattice[0].residuals.failures(),
            3
        );
    }

    #[test]
    fn frame_sink_feeds_the_live_aggregate_histogram() {
        let set = set_of(&[3]);
        let live_decode = Arc::new(LogHistogram::new());
        let mut sink = FrameSink::new(&set, false)
            .with_obs(StageMetrics::detached(), Arc::clone(&live_decode));
        sink.record_latency(0, 100, 250);
        sink.record_latency(0, 300, 450);
        let output = sink.finish(vec!["greedy".to_string()]);
        assert_eq!(output.per_lattice[0].decode_hist.count, 2);
        // The live feed is bucket-only (one atomic add per round): the
        // bucket populations agree with the exact private books, so the
        // sampler's quantiles match to within one bucket.
        let live = live_decode.snapshot();
        assert_eq!(live.count, 2);
        assert_eq!(live.counts, output.per_lattice[0].decode_hist.counts);
    }

    #[test]
    fn depth_sink_downsamples_and_breaks_backlog_down_per_lattice() {
        let counters = RuntimeCounters::with_lattices(2);
        counters.generated.store(7, Ordering::Relaxed);
        counters.per_lattice[0]
            .generated
            .store(4, Ordering::Relaxed);
        counters.per_lattice[1]
            .generated
            .store(3, Ordering::Relaxed);
        counters.per_lattice[1].decoded.store(2, Ordering::Relaxed);
        counters.decoded.store(2, Ordering::Relaxed);
        // 100 rounds, at most 10 samples → every 10th round plus the last.
        let mut sink = DepthSink::new(100, 10);
        for round in 0..100 {
            sink.observe(round, round * 5, 1, &counters);
        }
        let timeline = sink.finish();
        assert_eq!(timeline.len(), 11);
        assert_eq!(timeline[0].round, 0);
        assert_eq!(timeline[10].round, 99);
        let sample = &timeline[3];
        assert_eq!(sample.backlog, 5);
        assert_eq!(sample.per_lattice_backlog, vec![4, 1]);
    }

    #[test]
    fn depth_sink_always_keeps_the_final_round() {
        let counters = RuntimeCounters::with_lattices(1);
        let mut sink = DepthSink::new(7, 3);
        for round in 0..7 {
            sink.observe(round, 0, 0, &counters);
        }
        // sample_every = 2: rounds 0, 2, 4, 6 — and 6 is also the final
        // round, recorded exactly once.
        let rounds: Vec<u64> = sink.timeline().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![0, 2, 4, 6]);
        assert_eq!(sink.report("depth").emitted, 4);
        assert_eq!(sink.report("depth").accepted, 7);
    }

    #[test]
    fn depth_sink_caps_the_timeline_and_retains_the_peak() {
        let counters = RuntimeCounters::with_lattices(1);
        // An endless stream (total_rounds unknown → 0) with a small cap:
        // the sink must never exceed cap + 1 samples, yet still bracket the
        // backlog peak.
        let cap = 16;
        let mut sink = DepthSink::new(0, cap);
        // A power of two, so the spike lands on the sampling stride no
        // matter how many times it has doubled.
        let peak_round = 4_096u64;
        for round in 0..10_000u64 {
            // Backlog ramps to a spike at `peak_round`, then drains.
            let backlog = if round == peak_round {
                5_000
            } else {
                round % 7
            };
            counters.generated.store(backlog, Ordering::Relaxed);
            sink.observe(round, round, 0, &counters);
            assert!(
                sink.timeline().len() <= cap + 1,
                "timeline exceeded its cap at round {round}"
            );
        }
        let timeline = sink.finish();
        assert!(timeline.len() <= cap + 1);
        let max_kept = timeline.iter().map(|s| s.backlog).max().unwrap();
        assert_eq!(max_kept, 5_000, "compaction must retain the peak sample");
        // The newest kept sample trails the stream's end by at most one
        // (doubled) stride — here the stride cannot have doubled past 2048
        // (10_000 rounds / 17 slots rounded up to a power of two).
        assert!(
            timeline.last().unwrap().round >= 9_999 - 2_048,
            "newest kept sample fell too far behind: round {}",
            timeline.last().unwrap().round
        );
    }

    #[test]
    fn depth_sink_preserves_the_first_sample_and_monotone_round_order() {
        let counters = RuntimeCounters::with_lattices(1);
        // Small cap over a long stream: the timeline compacts repeatedly,
        // yet round 0 (index 0 is always even) and strict round ordering
        // must survive every compaction.
        let mut sink = DepthSink::new(0, 8);
        for round in 0..5_000u64 {
            counters.generated.store(round % 13, Ordering::Relaxed);
            sink.observe(round, round * 3, 0, &counters);
            let rounds: Vec<u64> = sink.timeline().iter().map(|s| s.round).collect();
            assert_eq!(rounds.first(), Some(&0), "first sample dropped");
            assert!(
                rounds.windows(2).all(|w| w[0] < w[1]),
                "round order broke at observe({round}): {rounds:?}"
            );
        }
        let timeline = sink.finish();
        assert_eq!(timeline[0].round, 0);
        assert!(timeline
            .windows(2)
            .all(|w| w[0].elapsed_ns < w[1].elapsed_ns));
    }

    #[test]
    fn depth_sink_timeline_is_deterministic_for_a_fixed_seed() {
        // Two sinks fed the same seeded synthetic backlog trace must keep
        // byte-identical timelines — down-sampling is stride arithmetic,
        // never randomized.
        let run = |seed: u64| {
            let counters = RuntimeCounters::with_lattices(2);
            let mut sink = DepthSink::new(0, 12);
            let mut state = seed;
            for round in 0..3_000u64 {
                // xorshift64: a cheap deterministic pseudo-random backlog.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                counters.generated.store(state % 97, Ordering::Relaxed);
                counters.per_lattice[0]
                    .generated
                    .store(state % 31, Ordering::Relaxed);
                sink.observe(round, round * 11, state % 5, &counters);
            }
            sink.finish()
        };
        assert_eq!(run(0xDEC0DE), run(0xDEC0DE));
        assert_ne!(
            run(0xDEC0DE),
            run(0xFACADE),
            "different traces must differ (the equality above is not vacuous)"
        );
    }
}
