//! Sinks: where the pipeline's results and telemetry come to rest.
//!
//! Two sinks close the stage graph:
//!
//! * [`FrameSink`] — one per worker thread.  Every [`DecodedRound`] is
//!   committed into the worker's *private* per-lattice [`PauliFrame`] shard
//!   (no cross-worker synchronization on the hot path; the engine merges
//!   shards after the run), optionally kept as a
//!   [`RoundCorrection`], and annotated with per-round latency samples.
//!   [`FrameSink::finish`] hands everything back as a [`WorkerOutput`].
//! * [`DepthSink`] — one on the source thread.  Down-samples the run into
//!   at most `max_depth_samples` [`DepthSample`]s, each carrying the
//!   aggregate queue depth and backlog *and* the per-lattice backlog
//!   breakdown, so a single timeline shows which lattice was falling
//!   behind when.

use crate::engine::RoundCorrection;
use crate::lattice_set::LatticeSet;
use crate::stage::decode::DecodedRound;
use crate::stage::StageReport;
use crate::telemetry::{DepthSample, RuntimeCounters};
use nisqplus_qec::frame::PauliFrame;

/// One lattice's slice of a worker's output.
#[derive(Debug)]
pub struct WorkerLatticeOutput {
    /// The worker's private correction-frame shard for this lattice.
    pub frame: PauliFrame,
    /// Per-round decode service time, nanoseconds (chained timestamps).
    pub decode_ns: Vec<f64>,
    /// Per-round emit-to-commit latency, nanoseconds.
    pub total_ns: Vec<f64>,
}

/// What one worker thread hands back when the stream ends.
#[derive(Debug)]
pub struct WorkerOutput {
    /// The name of the decoder serving each lattice, in lattice-id order
    /// (per-lattice overrides may differ from the machine-wide factory).
    pub lattice_decoders: Vec<String>,
    /// Per-lattice frame shards and latency samples, in lattice-id order.
    pub per_lattice: Vec<WorkerLatticeOutput>,
    /// The per-round corrections this worker committed (empty unless
    /// recording was requested).
    pub corrections: Vec<RoundCorrection>,
}

/// One worker's commit stage: private frame shards, optional correction
/// recording, per-round latency accounting.
#[derive(Debug)]
pub struct FrameSink {
    per_lattice: Vec<WorkerLatticeOutput>,
    corrections: Vec<RoundCorrection>,
    record_corrections: bool,
    committed: u64,
}

impl FrameSink {
    /// A sink with one empty frame shard per lattice of `set`.
    #[must_use]
    pub fn new(set: &LatticeSet, record_corrections: bool) -> Self {
        FrameSink {
            per_lattice: set
                .iter()
                .map(|(_, _, lattice)| WorkerLatticeOutput {
                    frame: PauliFrame::new(lattice.num_data()),
                    decode_ns: Vec::new(),
                    total_ns: Vec::new(),
                })
                .collect(),
            corrections: Vec::new(),
            record_corrections,
            committed: 0,
        }
    }

    /// Commits one decoded round into its lattice's frame shard (and the
    /// correction log, when recording).
    pub fn commit(&mut self, round: &DecodedRound<'_>) {
        let output = &mut self.per_lattice[round.lattice_id as usize];
        output.frame.record(round.correction);
        if self.record_corrections {
            self.corrections.push(RoundCorrection {
                lattice_id: round.lattice_id,
                round: round.round,
                correction: round.correction.clone(),
            });
        }
        self.committed += 1;
    }

    /// Appends one round's latency samples for `lattice_id`.  Kept separate
    /// from [`FrameSink::commit`] so the caller's timestamp spans the full
    /// unpack-to-commit window of the round.
    pub fn record_latency(&mut self, lattice_id: usize, decode_ns: f64, total_ns: f64) {
        let output = &mut self.per_lattice[lattice_id];
        output.decode_ns.push(decode_ns);
        output.total_ns.push(total_ns);
    }

    /// Rounds committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Consumes the sink into the worker's output, attaching the decode
    /// stage's per-lattice decoder names.
    #[must_use]
    pub fn finish(self, lattice_decoders: Vec<String>) -> WorkerOutput {
        WorkerOutput {
            lattice_decoders,
            per_lattice: self.per_lattice,
            corrections: self.corrections,
        }
    }

    /// This sink's [`StageReport`]: accepted == emitted == committed rounds.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        StageReport {
            stage: stage.into(),
            accepted: self.committed,
            emitted: self.committed,
            ..StageReport::default()
        }
    }
}

/// The source-side telemetry sink: a down-sampled backlog timeline with
/// per-lattice breakdown.
#[derive(Debug)]
pub struct DepthSink {
    total_rounds: u64,
    sample_every: u64,
    offered: u64,
    timeline: Vec<DepthSample>,
}

impl DepthSink {
    /// A sink sampling roughly every `total_rounds / max_depth_samples`
    /// rounds (always at least the last round).
    #[must_use]
    pub fn new(total_rounds: u64, max_depth_samples: usize) -> Self {
        DepthSink {
            total_rounds,
            sample_every: (total_rounds / max_depth_samples.max(1) as u64).max(1),
            offered: 0,
            timeline: Vec::new(),
        }
    }

    /// Offers round `emitted_total` for sampling; on the sampling cadence
    /// (and on the very last round) a [`DepthSample`] is recorded with the
    /// aggregate and per-lattice backlog read from `counters`.
    pub fn observe(
        &mut self,
        emitted_total: u64,
        elapsed_ns: u64,
        queue_depth: u64,
        counters: &RuntimeCounters,
    ) {
        self.offered += 1;
        if emitted_total % self.sample_every == 0 || emitted_total + 1 == self.total_rounds {
            self.timeline.push(DepthSample {
                round: emitted_total,
                elapsed_ns,
                queue_depth,
                backlog: counters.backlog(),
                per_lattice_backlog: counters
                    .per_lattice
                    .iter()
                    .map(|lattice| lattice.backlog())
                    .collect(),
            });
        }
    }

    /// The timeline recorded so far.
    #[must_use]
    pub fn timeline(&self) -> &[DepthSample] {
        &self.timeline
    }

    /// Consumes the sink into its timeline.
    #[must_use]
    pub fn finish(self) -> Vec<DepthSample> {
        self.timeline
    }

    /// This sink's [`StageReport`]: accepted = rounds offered, emitted =
    /// samples kept (the rest were down-sampled away, not lost — they are
    /// still in the counters).
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        StageReport {
            stage: stage.into(),
            accepted: self.offered,
            emitted: self.timeline.len() as u64,
            occupancy_peak: self
                .timeline
                .iter()
                .map(|sample| sample.queue_depth)
                .max()
                .unwrap_or(0),
            ..StageReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;
    use crate::packet::{PacketCodec, SyndromePacket};
    use crate::source::{NoiseSpec, SyndromeSource};
    use crate::stage::DecodeStage;
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
    use std::sync::atomic::Ordering;

    fn set_of(distances: &[usize]) -> LatticeSet {
        let specs: Vec<LatticeSpec> = distances
            .iter()
            .map(|&d| {
                let mut spec = LatticeSpec::new(d);
                spec.noise = NoiseSpec::PureDephasing { p: 0.05 };
                spec.rounds = 8;
                spec
            })
            .collect();
        LatticeSet::new(specs).unwrap()
    }

    #[test]
    fn commit_records_frames_corrections_and_latency() {
        let set = set_of(&[3, 3]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let factory = || Box::new(GreedyMatchingDecoder::new()) as DynDecoder;
        let mut stage = DecodeStage::new(&set, &codec, &factory);
        let mut sink = FrameSink::new(&set, true);
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, round) in [(0u32, 0u64), (1, 0), (0, 1)] {
            let spec = set.spec(lattice_id as usize);
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                spec.noise,
                spec.seed + round,
            )
            .unwrap();
            let syndrome = source.next_syndrome();
            codec.encode(
                &SyndromePacket::new(lattice_id, round, 0, &syndrome),
                &mut record,
            );
            let decoded = stage.decode(&record);
            sink.commit(&decoded);
            let id = decoded.lattice_id as usize;
            sink.record_latency(id, 10.0, 20.0);
        }
        assert_eq!(sink.committed(), 3);
        assert_eq!(sink.report("sink.0").accepted, 3);
        let output = sink.finish(stage.lattice_decoders().to_vec());
        assert_eq!(output.per_lattice[0].decode_ns.len(), 2);
        assert_eq!(output.per_lattice[1].decode_ns.len(), 1);
        assert_eq!(output.corrections.len(), 3);
        assert_eq!(output.corrections[1].lattice_id, 1);
        assert_eq!(output.lattice_decoders.len(), 2);
    }

    #[test]
    fn depth_sink_downsamples_and_breaks_backlog_down_per_lattice() {
        let counters = RuntimeCounters::with_lattices(2);
        counters.generated.store(7, Ordering::Relaxed);
        counters.per_lattice[0]
            .generated
            .store(4, Ordering::Relaxed);
        counters.per_lattice[1]
            .generated
            .store(3, Ordering::Relaxed);
        counters.per_lattice[1].decoded.store(2, Ordering::Relaxed);
        counters.decoded.store(2, Ordering::Relaxed);
        // 100 rounds, at most 10 samples → every 10th round plus the last.
        let mut sink = DepthSink::new(100, 10);
        for round in 0..100 {
            sink.observe(round, round * 5, 1, &counters);
        }
        let timeline = sink.finish();
        assert_eq!(timeline.len(), 11);
        assert_eq!(timeline[0].round, 0);
        assert_eq!(timeline[10].round, 99);
        let sample = &timeline[3];
        assert_eq!(sample.backlog, 5);
        assert_eq!(sample.per_lattice_backlog, vec![4, 1]);
    }

    #[test]
    fn depth_sink_always_keeps_the_final_round() {
        let counters = RuntimeCounters::with_lattices(1);
        let mut sink = DepthSink::new(7, 3);
        for round in 0..7 {
            sink.observe(round, 0, 0, &counters);
        }
        // sample_every = 2: rounds 0, 2, 4, 6 — and 6 is also the final
        // round, recorded exactly once.
        let rounds: Vec<u64> = sink.timeline().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![0, 2, 4, 6]);
        assert_eq!(sink.report("depth").emitted, 4);
        assert_eq!(sink.report("depth").accepted, 7);
    }
}
