//! The QoS admission gate: per-lattice push policy and outstanding budget.
//!
//! The gate is the pipeline's first seam.  Every generated round is offered
//! to its lattice's *lane*; the lane answers with an [`Admission`]:
//!
//! * [`Admission::Granted`] — the round may proceed to its channel (and, if
//!   the lane has a budget, one budget credit is now held on its behalf);
//! * [`Admission::Blocked`] — a [`PushPolicy::Block`] lane is out of budget
//!   credits; the caller stalls and re-offers (each refusal is one counted
//!   backpressure spin);
//! * [`Admission::Shed`] — a [`PushPolicy::Drop`] lane is out of budget
//!   credits; the round is dropped at the door, before it costs a channel
//!   slot.
//!
//! A lane's budget is a pipeline-spanning credit loop (see
//! [`CreditCounter`]): the credit acquired at admission is returned by the
//! decode worker only when the round's correction is committed
//! ([`QosGate::credit_decode`]), so the budget bounds the lattice's
//! *outstanding* rounds across every stage between gate and sink, exactly
//! like [`LatticeSpec::queue_budget`](crate::lattice_set::LatticeSpec::queue_budget)
//! promises.  A `Drop`-lane round that is granted but then refused by a full
//! channel returns its credit through [`QosGate::refund`].

use crate::config::{MachineConfig, PushPolicy};
use crate::lattice_set::LatticeSet;
use crate::obs::StageMetrics;
use crate::stage::credit::CreditCounter;
use crate::stage::StageReport;
use std::sync::atomic::{AtomicU64, Ordering};

/// The gate's answer to one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed to the channel; a budget credit (if any) is held.
    Granted,
    /// Out of budget under [`PushPolicy::Block`]: stall and re-offer.
    Blocked,
    /// Out of budget under [`PushPolicy::Drop`]: drop the round now.
    Shed,
}

/// One lattice's admission lane.
#[derive(Debug)]
struct GateLane {
    policy: PushPolicy,
    /// The outstanding-rounds budget; `None` admits unconditionally.
    budget: Option<CreditCounter>,
    granted: AtomicU64,
    blocked: AtomicU64,
    shed: AtomicU64,
}

/// Per-lattice admission control, shared by reference between the source
/// (admission) and the decode workers (credit return).
#[derive(Debug)]
pub struct QosGate {
    lanes: Vec<GateLane>,
    /// Registry mirror of the gate-wide flow totals (the per-lane atomics
    /// above stay authoritative); live for grants/sheds/blocks, refreshed
    /// from the lane sums at report time.
    metrics: StageMetrics,
}

impl QosGate {
    /// The gate for `config`'s machine: lane `i` gets lattice `i`'s
    /// effective push policy and queue budget.
    #[must_use]
    pub fn for_machine(config: &MachineConfig, set: &LatticeSet) -> Self {
        QosGate {
            lanes: set
                .iter()
                .map(|(_, spec, _)| GateLane {
                    policy: config.policy_for(spec),
                    budget: spec
                        .queue_budget
                        .map(|budget| CreditCounter::new(budget as u64)),
                    granted: AtomicU64::new(0),
                    blocked: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                })
                .collect(),
            metrics: StageMetrics::detached(),
        }
    }

    /// A gate of `lanes` budget-less [`PushPolicy::Block`] lanes: every
    /// admission is granted.  Useful for driving a worker directly in tests.
    #[must_use]
    pub fn unbounded(lanes: usize) -> Self {
        QosGate {
            lanes: (0..lanes)
                .map(|_| GateLane {
                    policy: PushPolicy::Block,
                    budget: None,
                    granted: AtomicU64::new(0),
                    blocked: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                })
                .collect(),
            metrics: StageMetrics::detached(),
        }
    }

    /// Attaches registry-backed stage metrics: the per-lane counters are
    /// authoritative and are mirrored into the registry by name whenever a
    /// report is taken.
    #[must_use]
    pub fn with_metrics(mut self, metrics: StageMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Offers one round of `lattice_id` for admission.
    pub fn admit(&self, lattice_id: usize) -> Admission {
        let lane = &self.lanes[lattice_id];
        match &lane.budget {
            Some(budget) if !budget.try_acquire() => match lane.policy {
                PushPolicy::Block => {
                    lane.blocked.fetch_add(1, Ordering::Relaxed);
                    Admission::Blocked
                }
                PushPolicy::Drop => {
                    lane.shed.fetch_add(1, Ordering::Relaxed);
                    Admission::Shed
                }
            },
            _ => {
                lane.granted.fetch_add(1, Ordering::Relaxed);
                Admission::Granted
            }
        }
    }

    /// Returns a granted round's budget credit *without* it having been
    /// decoded — the path for a `Drop`-lane round that was admitted but
    /// then refused by its full channel and shed.
    pub fn refund(&self, lattice_id: usize) {
        if let Some(budget) = &self.lanes[lattice_id].budget {
            budget.release();
        }
    }

    /// Returns the budget credit of a committed round.  Decode workers call
    /// this once per decoded round, closing the gate-to-sink credit loop.
    pub fn credit_decode(&self, lattice_id: usize) {
        if let Some(budget) = &self.lanes[lattice_id].budget {
            budget.release();
        }
    }

    /// The push policy lane `lattice_id` admits under.
    #[must_use]
    pub fn policy(&self, lattice_id: usize) -> PushPolicy {
        self.lanes[lattice_id].policy
    }

    /// Lane `lattice_id`'s rounds currently between admission and commit
    /// (zero for budget-less lanes, which do not track flight).
    #[must_use]
    pub fn outstanding(&self, lattice_id: usize) -> u64 {
        self.lanes[lattice_id]
            .budget
            .as_ref()
            .map_or(0, CreditCounter::in_flight)
    }

    /// Number of lanes (== lattices).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// This gate's [`StageReport`]: accepted = granted admissions, rejected
    /// = shed rounds, stall cycles = blocked (retried) admissions, credit
    /// totals summed over every lane's budget loop.  The lane counters are
    /// authoritative; reporting refreshes the registry's mirror of them.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        let mut report = StageReport::named(stage);
        for lane in &self.lanes {
            report.accepted += lane.granted.load(Ordering::Relaxed);
            report.emitted += lane.granted.load(Ordering::Relaxed);
            report.rejected += lane.shed.load(Ordering::Relaxed);
            report.stall_cycles += lane.blocked.load(Ordering::Relaxed);
            if let Some(budget) = &lane.budget {
                report.credits_consumed += budget.consumed();
                report.credits_issued += budget.issued();
                report.occupancy_peak = report.occupancy_peak.max(budget.in_flight());
            }
        }
        self.metrics.sync_from(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;

    fn gate_with(policy: PushPolicy, budget: Option<usize>) -> QosGate {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 10;
        spec.push_policy = Some(policy);
        spec.queue_budget = budget;
        let config = MachineConfig {
            lattices: vec![spec],
            ..MachineConfig::new(&[3], 0)
        };
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        QosGate::for_machine(&config, &set)
    }

    #[test]
    fn block_lane_blocks_at_budget_and_resumes_after_commit() {
        let gate = gate_with(PushPolicy::Block, Some(2));
        assert_eq!(gate.admit(0), Admission::Granted);
        assert_eq!(gate.admit(0), Admission::Granted);
        assert_eq!(gate.admit(0), Admission::Blocked);
        assert_eq!(gate.outstanding(0), 2);
        // A committed decode returns the credit; the retry now succeeds.
        gate.credit_decode(0);
        assert_eq!(gate.admit(0), Admission::Granted);
        assert_eq!(gate.admit(0), Admission::Blocked);
        let report = gate.report("gate");
        assert_eq!(report.accepted, 3);
        assert_eq!(report.stall_cycles, 2);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn drop_lane_sheds_at_budget_and_refund_reopens_it() {
        let gate = gate_with(PushPolicy::Drop, Some(1));
        assert_eq!(gate.admit(0), Admission::Granted);
        assert_eq!(gate.admit(0), Admission::Shed);
        // The granted round's channel send failed: its credit comes home and
        // the next round is admitted again.
        gate.refund(0);
        assert_eq!(gate.admit(0), Admission::Granted);
        let report = gate.report("gate");
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.stall_cycles, 0);
    }

    #[test]
    fn budget_less_lane_admits_unconditionally() {
        let gate = gate_with(PushPolicy::Block, None);
        for _ in 0..100 {
            assert_eq!(gate.admit(0), Admission::Granted);
        }
        assert_eq!(gate.outstanding(0), 0);
        assert_eq!(gate.report("gate").credits_consumed, 0);
    }

    #[test]
    fn unbounded_gate_serves_every_lane() {
        let gate = QosGate::unbounded(3);
        assert_eq!(gate.lanes(), 3);
        for lane in 0..3 {
            assert_eq!(gate.admit(lane), Admission::Granted);
            assert_eq!(gate.policy(lane), PushPolicy::Block);
        }
    }
}
