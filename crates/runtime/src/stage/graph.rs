//! The pipeline graph: wiring stages into a running, backpressured whole.
//!
//! A [`PipelineGraph`] assembles the streaming pipeline from the stage
//! building blocks and runs it to completion:
//!
//! ```text
//! source ──► gate ──► route ──► channel[0..C] ──► mux ──► decode ──► sink
//!  (paced)  (QoS)   (placement)  (credit loops)  (per worker, N threads)
//! ```
//!
//! One paced source runs on the calling thread; `workers` decode threads
//! each drive a mux → decode → sink chain.  Every seam is credit-backed:
//! the channels carry capacity credits, the gate carries per-lattice budget
//! credits that only come home when the decode commits.  The graph's shape
//! is configurable through [`PipelineOptions`] — where rounds are placed
//! ([`RouteStage`]) and how workers consume ([`ConsumePolicy`]) — with
//! defaults that reproduce the engine's spread-and-steal behaviour
//! byte-for-byte.  [`PipelineGraph::run`] returns a [`PipelineRun`]: the
//! raw worker outputs, timelines, per-lattice producer statistics, and one
//! [`StageReport`] per stage.

use crate::config::{MachineConfig, PushPolicy};
use crate::fault::{FaultInjections, FaultInjector, CRASH_PANIC_MARKER};
use crate::lattice_set::LatticeSet;
use crate::obs::{
    EventKind, EventSeverity, JournalSnapshot, MetricSample, MetricsSnapshot, ObsPlane,
    RuntimeObserver, StageMetrics,
};
use crate::packet::{PacketCodec, SyndromePacket};
use crate::scenario::{SyndromeTrace, TraceRecorder, TraceSource};
use crate::source::{ElasticEvent, ElasticEventKind, InterleavedSource, NoiseEpoch, SourcedRound};
use crate::stage::channel::CreditChannel;
use crate::stage::decode::DecodeStage;
use crate::stage::gate::{Admission, QosGate};
use crate::stage::mux::{BatchMux, PriorityMux, RoundRobinMux, StealMux};
use crate::stage::sink::{DepthSink, FrameSink, WorkerOutput};
use crate::stage::skid::SkidBuffer;
use crate::stage::StageReport;
use crate::telemetry::{DepthSample, LatticeCounters, RuntimeCounters};
use nisqplus_decoders::traits::DecoderFactory;
use nisqplus_qec::logical::{classify_shed_round, LogicalState, ResidualTally};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The placement stage: which channel a round is sent to.
pub trait RouteStage: fmt::Debug + Send + Sync {
    /// The channel index for round `round` of lattice `lattice_id`, given
    /// `channels` channels.  Must return a value `< channels`.
    fn route(&self, lattice_id: u32, round: u64, channels: usize) -> usize;
}

/// The default placement: spread rounds over the pool, offset by lattice
/// id so co-cadenced lattices don't all land on the same channel; stealing
/// rebalances whatever placement gets wrong.  For a single lattice this is
/// plain round-robin.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadRouter;

impl RouteStage for SpreadRouter {
    fn route(&self, lattice_id: u32, round: u64, channels: usize) -> usize {
        ((u64::from(lattice_id) + round) % channels as u64) as usize
    }
}

/// Class-based placement: lattice `i` always lands on channel
/// `class_of[i] % channels`.  Combined with [`ConsumePolicy::Priority`]
/// this builds a strict-priority pipeline — traffic classes get their own
/// channel and workers drain lower-numbered classes first (see
/// `examples/stage_pipeline.rs`).
#[derive(Debug, Clone)]
pub struct ClassRouter {
    /// The traffic class of each lattice, indexed by lattice id.
    pub class_of: Vec<usize>,
}

impl RouteStage for ClassRouter {
    fn route(&self, lattice_id: u32, _round: u64, channels: usize) -> usize {
        self.class_of[lattice_id as usize] % channels
    }
}

/// How each worker's mux consumes the channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumePolicy {
    /// Drain the worker's home channel, stealing a whole batch from the
    /// first busy neighbour when home runs dry (the engine default; see
    /// [`StealMux`]).
    #[default]
    OwnThenSteal,
    /// Always drain the lowest-indexed busy channel ([`PriorityMux`]).
    Priority,
    /// Rotate grants across channels ([`RoundRobinMux`]).
    RoundRobin,
}

/// The configurable shape of a [`PipelineGraph`].
///
/// The default options reproduce the classic engine wiring exactly: one
/// channel per worker, spread placement, own-then-steal consumption, a
/// watchdog far beyond any healthy stall.
#[derive(Debug)]
pub struct PipelineOptions {
    /// The placement stage; `None` uses [`SpreadRouter`].
    pub router: Option<Box<dyn RouteStage>>,
    /// How workers consume the channels.
    pub consume: ConsumePolicy,
    /// Number of channels; `None` uses one per worker.
    pub channels: Option<usize>,
    /// An external tap on the run's events and snapshots; `None` keeps the
    /// journal and snapshot log as the only consumers.
    pub observer: Option<Box<dyn RuntimeObserver>>,
    /// The Block-lane backpressure watchdog: the longest the producer spins
    /// on one round (per refused lane) before force-shedding it with a
    /// [`EventKind::WatchdogTrip`] so a dead consumer degrades the run into
    /// a diagnostic report instead of hanging it forever.  The default is
    /// generous — orders of magnitude beyond any healthy stall — so
    /// existing runs and benches never meet it.
    pub watchdog: Duration,
    /// Re-serve this recorded trace instead of sampling the seeded sources.
    /// The trace's rounds flow through the same gate/route/decode pipeline
    /// verbatim; the machine's scenario script and noise specs are ignored
    /// (the trace already embodies their effects).
    pub replay: Option<SyndromeTrace>,
    /// Tap every emitted round into a [`TraceRecorder`]; the finished
    /// [`SyndromeTrace`] is returned in [`PipelineRun::trace`].
    pub record_trace: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            router: None,
            consume: ConsumePolicy::default(),
            channels: None,
            observer: None,
            watchdog: Duration::from_secs(5),
            replay: None,
            record_trace: false,
        }
    }
}

/// Per-lattice generation statistics tracked by the source stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatticeGenStats {
    /// Elapsed nanoseconds at this lattice's last emission.
    pub gen_elapsed_ns: f64,
    /// This lattice's backlog at the instant its generation stopped.
    pub final_backlog: u64,
}

/// Everything a finished pipeline hands back to the engine.
#[derive(Debug)]
pub struct PipelineRun {
    /// One output per decode worker.
    pub worker_outputs: Vec<WorkerOutput>,
    /// The down-sampled aggregate + per-lattice backlog timeline.
    pub depth_timeline: Vec<DepthSample>,
    /// Elapsed nanoseconds when the source finished generating.
    pub generation_elapsed_ns: f64,
    /// Aggregate backlog at the instant generation stopped.
    pub final_backlog: u64,
    /// Per-lattice source statistics, in lattice-id order.
    pub lattice_stats: Vec<LatticeGenStats>,
    /// Rounds shed per lattice, in emission order.  Empty per-lattice lists
    /// when [`MachineConfig::track_shed_rounds`] is off — the counters still
    /// carry the shed totals, only the O(rounds) round lists are elided.
    pub lattice_shed: Vec<Vec<u64>>,
    /// Per-lattice residual tallies of the *shed* rounds, classified live by
    /// the producer under the streaming residual path
    /// ([`MachineConfig::streams_residuals`]); all-zero otherwise.
    pub shed_tallies: Vec<ResidualTally>,
    /// One report per stage, in graph order: source, skid, gate,
    /// channels, per-worker decode and sink stages, depth sink.
    pub stage_reports: Vec<StageReport>,
    /// Wall-clock seconds from epoch to the last worker's exit.
    pub elapsed_s: f64,
    /// Mid-run metrics samples taken by the snapshot thread (empty when the
    /// sampler is disabled via `snapshot_cadence_us: 0`).
    pub snapshots: Vec<MetricsSnapshot>,
    /// The event journal's end-of-run snapshot: totals per severity/kind
    /// plus the configured tail of recent events.
    pub journal: JournalSnapshot,
    /// Every registered metric by name, read at end of run.
    pub metrics: Vec<MetricSample>,
    /// The fault injector's own books: how many scheduled faults fired
    /// (all-zero for a plan-free run).
    pub fault: FaultInjections,
    /// The recorded trace, when [`PipelineOptions::record_trace`] was set.
    pub trace: Option<SyndromeTrace>,
    /// Each lattice's noise timeline over the rounds it actually emitted
    /// (empty per-lattice lists on replay runs — the trace is the record).
    pub noise_epochs: Vec<Vec<NoiseEpoch>>,
}

/// Everything one decode worker needs, bundled to keep spawn sites tidy
/// (and to let tests drive a worker directly against hand-filled channels).
pub struct WorkerSeat<'a> {
    /// This worker's index; its home channel is `worker_id % channels`.
    pub worker_id: usize,
    /// The lattices being served.
    pub set: &'a LatticeSet,
    /// The shared wire codec.
    pub codec: &'a PacketCodec,
    /// The channels the worker consumes from.
    pub channels: &'a [CreditChannel],
    /// The admission gate whose budget credits the worker returns.
    pub gate: &'a QosGate,
    /// The shared run counters.
    pub counters: &'a RuntimeCounters,
    /// Set once the source has finished generating.
    pub done: &'a AtomicBool,
    /// The run's epoch, for latency timestamps.
    pub epoch: Instant,
    /// The machine-wide decoder factory.
    pub factory: &'a dyn DecoderFactory,
    /// Whether committed corrections are kept per round.
    pub record_corrections: bool,
    /// When recording corrections, keep only the most recent this many per
    /// worker (`None` = unbounded; see [`MachineConfig::correction_cap`]).
    pub correction_cap: Option<usize>,
    /// Maximum rounds decoded as one batch.
    pub batch_size: usize,
    /// The worker's consumption discipline.
    pub consume: ConsumePolicy,
    /// The run's observability plane (latency histograms, event journal,
    /// stage metrics registry).
    pub obs: &'a ObsPlane,
    /// The run's armed fault schedule (crash hooks; a plan-free injector
    /// costs one branch per batch).
    pub injector: &'a FaultInjector,
}

impl fmt::Debug for WorkerSeat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerSeat")
            .field("worker_id", &self.worker_id)
            .field("channels", &self.channels.len())
            .field("batch_size", &self.batch_size)
            .field("consume", &self.consume)
            .finish_non_exhaustive()
    }
}

/// One decode worker under supervision: the frame sink — the worker's
/// durable state — lives out here, outside the unwind boundary, while the
/// decode attempt loop runs inside [`catch_unwind`].  A panic in the decode
/// path (injected or real) is caught, journaled as a
/// [`EventKind::WorkerCrash`], and answered by a same-thread restart
/// ([`EventKind::WorkerRestart`]) that rebuilds the decode stage — freshly
/// `prepare`d decoders — over the *same* sink, so the replacement adopts
/// the dead worker's frame shard and every round it had already committed.
/// Returns the worker's output plus its decode and sink [`StageReport`]s.
///
/// [`catch_unwind`]: std::panic::catch_unwind
pub fn run_worker(seat: WorkerSeat<'_>) -> (WorkerOutput, Vec<StageReport>) {
    let worker_id = seat.worker_id;
    // Metrics are registered once per worker *name*, not per attempt: a
    // restart must not grow the registry.
    let decode_metrics =
        StageMetrics::register(seat.obs.registry(), &format!("decode.{worker_id}"));
    let mut sink = FrameSink::new(seat.set, seat.record_corrections)
        .with_correction_cap(seat.correction_cap)
        .with_obs(
            StageMetrics::register(seat.obs.registry(), &format!("sink.{worker_id}")),
            Arc::clone(seat.obs.decode_hist()),
        );
    let mut stall_polls = 0u64;
    let mut restarts = 0u64;
    loop {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(&seat, &mut sink)
        }));
        match attempt {
            Ok((lattice_decoders, polls)) => {
                stall_polls += polls;
                let committed = sink.committed();
                let decode_report = StageReport {
                    stage: format!("decode.{worker_id}"),
                    accepted: committed,
                    emitted: committed,
                    stall_cycles: stall_polls,
                    ..StageReport::default()
                };
                decode_metrics.sync_from(&decode_report);
                let sink_report = sink.report(format!("sink.{worker_id}"));
                let output = sink.finish(lattice_decoders);
                return (output, vec![decode_report, sink_report]);
            }
            Err(_) => {
                // The worker died mid-run.  Its sink — and every round it
                // committed — survives out here; journal the crash (value =
                // rounds the dead worker had committed), then go around the
                // loop: the next attempt re-prepares the decoders and
                // adopts the shard.
                seat.obs.publish(
                    EventKind::WorkerCrash,
                    EventSeverity::Critical,
                    None,
                    Some(worker_id as u32),
                    seat.epoch.elapsed().as_nanos() as u64,
                    sink.committed(),
                );
                restarts += 1;
                seat.obs.publish(
                    EventKind::WorkerRestart,
                    EventSeverity::Warning,
                    None,
                    Some(worker_id as u32),
                    seat.epoch.elapsed().as_nanos() as u64,
                    restarts,
                );
            }
        }
    }
}

/// One supervised decode attempt: fill batches through the mux, decode
/// every record through the lattice's prepared hot path, commit to the
/// shared frame sink, return each round's budget credit to the gate.
/// Returns `(lattice decoder names, stall polls)` when the stream drains;
/// unwinds into the supervisor if the decode path panics.
fn worker_loop(seat: &WorkerSeat<'_>, sink: &mut FrameSink) -> (Vec<String>, u64) {
    let worker_id = seat.worker_id;
    let (channels, gate, counters, obs) = (seat.channels, seat.gate, seat.counters, seat.obs);
    let epoch = seat.epoch;
    let mut decode = DecodeStage::new(seat.set, seat.codec, seat.factory);
    let mut mux: Box<dyn BatchMux> = match seat.consume {
        ConsumePolicy::OwnThenSteal => Box::new(StealMux::new(worker_id % channels.len())),
        ConsumePolicy::Priority => Box::new(PriorityMux::new()),
        ConsumePolicy::RoundRobin => Box::new(RoundRobinMux::new()),
    };
    // Reusable batch records, shared across lattices (records are sized for
    // the largest lattice of the set).
    let mut batch: Vec<Vec<u64>> = (0..seat.batch_size)
        .map(|_| vec![0u64; seat.codec.words_per_packet()])
        .collect();
    let worker_counters = counters.per_worker.get(worker_id);
    let mut stall_polls = 0u64;
    loop {
        // The crash hook sits at the batch boundary: no record is in flight
        // inside the worker when an injected panic fires, so nothing a
        // restart can't recover is ever lost.
        if seat.injector.should_crash(worker_id, sink.committed()) {
            panic!("{CRASH_PANIC_MARKER}: worker {worker_id}");
        }
        // ---- Fill a batch through the mux ------------------------------
        let fill = mux.fill(channels, &mut batch);
        if fill.stolen > 0 {
            counters.stolen.fetch_add(fill.stolen, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.stolen.fetch_add(fill.stolen, Ordering::Relaxed);
            }
            obs.publish(
                EventKind::Steal,
                EventSeverity::Info,
                None,
                Some(worker_id as u32),
                epoch.elapsed().as_nanos() as u64,
                fill.stolen,
            );
        }
        if fill.filled == 0 {
            if seat.done.load(Ordering::Acquire) && channels.iter().all(CreditChannel::is_empty) {
                return (decode.lattice_decoders().to_vec(), stall_polls);
            }
            counters.stall_polls.fetch_add(1, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.stall_polls.fetch_add(1, Ordering::Relaxed);
            }
            stall_polls += 1;
            std::hint::spin_loop();
            thread::yield_now();
            continue;
        }

        // ---- Decode the batch ------------------------------------------
        // Per-packet service time keeps its meaning (the full
        // unpack-to-commit span of that round — what the backlog model's `f`
        // ratio is about): timestamps are chained, one clock read per
        // packet, so batching amortizes the mux scans and counter updates
        // without flattening latency spikes into a batch mean.
        let mut prev = Instant::now();
        let mut committed_in_batch = 0u64;
        for record in &batch[..fill.filled] {
            let decoded = match decode.decode(record) {
                Ok(decoded) => decoded,
                Err(_) => {
                    // A record that fails validation is quarantined, never
                    // decoded: count it, journal it (value = the running
                    // quarantine total; no lattice attribution — the header
                    // that names the lattice is exactly what can't be
                    // trusted), and move on.  The producer already
                    // shed-accounted the round, so the backlog and frame
                    // books stay exact.
                    let total = counters.quarantined.fetch_add(1, Ordering::Relaxed) + 1;
                    obs.publish(
                        EventKind::Quarantine,
                        EventSeverity::Critical,
                        None,
                        Some(worker_id as u32),
                        epoch.elapsed().as_nanos() as u64,
                        total,
                    );
                    prev = Instant::now();
                    continue;
                }
            };
            let lattice_id = decoded.lattice_id as usize;
            let emitted_ns = decoded.emitted_ns;
            // The streaming residual path classified this round during the
            // decode; a failure is surfaced live, not at end of run.
            if let Some((x, z)) = decoded.residual {
                if x != LogicalState::Success || z != LogicalState::Success {
                    counters.per_lattice[lattice_id]
                        .decode_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            sink.commit(&decoded);
            let now = Instant::now();
            sink.record_latency(
                lattice_id,
                now.duration_since(prev).as_nanos() as u64,
                (now.duration_since(epoch).as_nanos() as u64).saturating_sub(emitted_ns),
            );
            counters.per_lattice[lattice_id]
                .decoded
                .fetch_add(1, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.decoded.fetch_add(1, Ordering::Relaxed);
            }
            // The round is committed: its budget credit goes home, closing
            // the gate-to-sink credit loop.
            gate.credit_decode(lattice_id);
            committed_in_batch += 1;
            prev = now;
        }
        counters
            .decoded
            .fetch_add(committed_in_batch, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = worker_counters {
            w.batches.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What the source stage hands back when generation ends.
struct SourceRun {
    depth_timeline: Vec<DepthSample>,
    generation_elapsed_ns: f64,
    final_backlog: u64,
    lattice_stats: Vec<LatticeGenStats>,
    lattice_shed: Vec<Vec<u64>>,
    shed_tallies: Vec<ResidualTally>,
    reports: Vec<StageReport>,
    trace: Option<SyndromeTrace>,
    noise_epochs: Vec<Vec<NoiseEpoch>>,
}

/// Where the source stage's rounds come from: the live seeded sources (with
/// scripted elasticity and fault-plan bursts applied) or a recorded trace
/// re-served verbatim.  Everything downstream of the feed — pacing, QoS
/// admission, routing, decode — is byte-identical between the two, which is
/// what makes replay a regression oracle.
enum RoundFeed {
    Live(Box<InterleavedSource>),
    Replay(TraceSource),
}

impl RoundFeed {
    fn next_round(&mut self) -> Option<SourcedRound> {
        match self {
            RoundFeed::Live(source) => source.next_round(),
            RoundFeed::Replay(source) => source.next_round(),
        }
    }

    /// Scripted actions fired since the last drain.  A replay feed never
    /// fires any: the recorded stream already reflects them.
    fn take_elastic_events(&mut self) -> Vec<ElasticEvent> {
        match self {
            RoundFeed::Live(source) => source.take_elastic_events(),
            RoundFeed::Replay(_) => Vec::new(),
        }
    }

    fn burst_overlay(&self, lattice_id: usize) -> Option<crate::source::BurstOverlay> {
        match self {
            RoundFeed::Live(source) => source.burst_overlay(lattice_id),
            RoundFeed::Replay(_) => None,
        }
    }

    fn noise_epochs(&self, set: &LatticeSet) -> Vec<Vec<NoiseEpoch>> {
        match self {
            RoundFeed::Live(source) => source.noise_epochs(),
            RoundFeed::Replay(_) => vec![Vec::new(); set.len()],
        }
    }
}

/// Applies the elastic events the feed fired during the last emission:
/// journals them, arms the codec's retirement watermark (so stragglers for
/// a retired lattice quarantine instead of decoding), and captures the
/// retiring lattice's backlog at the instant its generation stopped.
fn apply_elastic_events(
    feed: &mut RoundFeed,
    codec: &PacketCodec,
    counters: &RuntimeCounters,
    lattice_stats: &mut [LatticeGenStats],
    obs: &ObsPlane,
    epoch: Instant,
) {
    for event in feed.take_elastic_events() {
        let now_ns = epoch.elapsed().as_nanos() as u64;
        match event.kind {
            ElasticEventKind::Added => {
                obs.publish(
                    EventKind::LatticeAdded,
                    EventSeverity::Info,
                    Some(event.lattice_id),
                    None,
                    now_ns,
                    event.at_round,
                );
            }
            ElasticEventKind::Retired { final_round } => {
                codec.retire_lattice(event.lattice_id, final_round);
                let lattice = event.lattice_id as usize;
                lattice_stats[lattice].final_backlog = counters.per_lattice[lattice].backlog();
                obs.publish(
                    EventKind::LatticeRetired,
                    EventSeverity::Warning,
                    Some(event.lattice_id),
                    None,
                    now_ns,
                    final_round,
                );
            }
            // Re-tunes are physics, not topology: they surface as noise
            // epochs in the report, not as journal events.
            ElasticEventKind::Retuned => {}
        }
    }
}

/// Classifies one shed round under the streaming residual path.  A shed
/// round gets the identity correction, so its residual *is* its seeded
/// error: the classification folds into the lattice's shed tally, and a
/// failure bumps the live `shed_failures` counter.  Allocation-free
/// ([`classify_shed_round`] reads the error in place).
fn tally_shed_round(
    lattice: &nisqplus_qec::lattice::Lattice,
    error: &nisqplus_qec::pauli::PauliString,
    tally: &mut ResidualTally,
    lattice_counters: &LatticeCounters,
) {
    let (x, z) = classify_shed_round(lattice, error);
    tally.record_states(x, z);
    if x != LogicalState::Success || z != LogicalState::Success {
        lattice_counters
            .shed_failures
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The source stage: paced interleaved generation, bit-packing into a skid
/// buffer, gate admission under each lattice's QoS lane, routed placement
/// into the credit channels, depth sampling — plus the run's hostile-stream
/// hooks: scheduled burst overlays, on-the-wire corruption, channel-stall
/// emulation and the backpressure watchdog.
#[allow(clippy::too_many_arguments)]
fn run_source(
    config: &MachineConfig,
    set: &LatticeSet,
    codec: &PacketCodec,
    channels: &[CreditChannel],
    gate: &QosGate,
    router: &dyn RouteStage,
    counters: &RuntimeCounters,
    epoch: Instant,
    obs: &ObsPlane,
    injector: &FaultInjector,
    watchdog: Duration,
    replay: Option<SyndromeTrace>,
    record_trace: bool,
) -> SourceRun {
    // How many rounds each lattice will emit: the trace's own tallies on
    // replay (a retired lattice's recorded stream is already truncated), the
    // configured per-lattice rounds live (retirement is handled by its
    // elastic event as it fires).
    let mut expected_rounds: Vec<u64> = set.iter().map(|(_, spec, _)| spec.rounds).collect();
    let feed_total: u64;
    let mut feed = match replay {
        Some(trace) => {
            expected_rounds = vec![0; set.len()];
            for round in &trace.rounds {
                expected_rounds[round.lattice_id as usize] += 1;
            }
            feed_total = trace.len() as u64;
            RoundFeed::Replay(
                TraceSource::new(trace, set).expect("trace validated against the machine"),
            )
        }
        None => {
            let mut source = InterleavedSource::new(set, &config.cycle_time)
                .expect("config validated in StreamingEngine::with_machine");
            for burst in &injector.plan().bursts {
                let lattice_id = burst.lattice_id as usize;
                source
                    .set_burst(lattice_id, set.spec(lattice_id).noise, burst.overlay)
                    .expect("burst overlay validated in StreamingEngine::with_machine");
            }
            source
                .apply_script(&config.scenario)
                .expect("scenario script validated in StreamingEngine::with_machine");
            feed_total = set.total_rounds();
            RoundFeed::Live(Box::new(source))
        }
    };
    let mut recorder = if record_trace {
        Some(TraceRecorder::new(set))
    } else {
        None
    };
    let total_rounds = feed_total;
    let mut depth = DepthSink::new(total_rounds, config.max_depth_samples)
        .with_metrics(StageMetrics::register(obs.registry(), "depth"));
    // The send seam's skid: an encoded record rests here while its channel
    // refuses credits, so a Block-lane round exists in exactly one place at
    // every instant of a stall and a Drop-lane round is shed by an explicit
    // counted discard.
    let mut skid: SkidBuffer<Vec<u64>> =
        SkidBuffer::new(1).with_metrics(StageMetrics::register(obs.registry(), "skid"));
    let source_metrics = StageMetrics::register(obs.registry(), "source");
    let words = codec.words_per_packet();
    let mut lattice_stats = vec![LatticeGenStats::default(); set.len()];
    let mut lattice_shed: Vec<Vec<u64>> = vec![Vec::new(); set.len()];
    // Under the streaming residual path shed rounds are classified here,
    // the moment they are shed — the replay path defers both to end of run.
    let streaming = config.streams_residuals();
    let mut shed_tallies = vec![ResidualTally::default(); set.len()];
    let mut emitted_total = 0u64;

    while let Some(sourced) = feed.next_round() {
        // The tap sees every emitted round — including ones the gate will
        // shed — so a replay of the trace regenerates the *offered* load,
        // not just the admitted slice.
        if let Some(recorder) = recorder.as_mut() {
            recorder.record(&sourced);
        }
        // Actions fired during this emission logically precede the round:
        // arm retirement watermarks before the round is routed.
        apply_elastic_events(&mut feed, codec, counters, &mut lattice_stats, obs, epoch);
        if sourced.due_ns > 0.0 {
            // Pace generation to the lattice's hardware cadence.
            // `yield_now` keeps the spin cooperative on machines with
            // fewer cores than threads; the *measured* inter-arrival time
            // (not the nominal cadence) is what feeds the model
            // comparison, so imprecise pacing degrades the experiment's
            // rate, never its honesty.
            let target_ns = sourced.due_ns as u128;
            while epoch.elapsed().as_nanos() < target_ns {
                std::hint::spin_loop();
                thread::yield_now();
            }
        }
        let lattice_id = sourced.lattice_id;
        let emitted_ns = epoch.elapsed().as_nanos() as u64;
        // Burst boundaries are journaled as the stream crosses them — the
        // window itself is applied inside the source, keyed by round index
        // only, so the episode replays exactly.
        if let Some(overlay) = feed.burst_overlay(lattice_id as usize) {
            if sourced.round == overlay.start_round {
                obs.publish(
                    EventKind::BurstStart,
                    EventSeverity::Warning,
                    Some(lattice_id),
                    None,
                    emitted_ns,
                    overlay.start_round,
                );
            } else if sourced.round == overlay.end_round() {
                obs.publish(
                    EventKind::BurstEnd,
                    EventSeverity::Info,
                    Some(lattice_id),
                    None,
                    emitted_ns,
                    overlay.end_round(),
                );
            }
        }
        let packet = SyndromePacket::new(lattice_id, sourced.round, emitted_ns, &sourced.syndrome);
        // A scheduled corruption poisons the encoded record *after* the
        // checksum is written — a bit flipped on the wire, not at the
        // source — so the worker's codec must catch it.
        let poison = injector.corrupt(lattice_id, sourced.round);
        let loaded = skid.accept_with(|slot| {
            slot.resize(words, 0);
            if codec.carries_errors() {
                // The streaming residual path rides the wire: the round's
                // seeded error travels with its syndrome so the decoding
                // worker can classify the residual the moment it commits.
                codec.encode_with_error(&packet, &sourced.error, slot);
            } else {
                codec.encode(&packet, slot);
            }
            if let Some((word, bit)) = poison {
                slot[word % words] ^= 1u64 << (bit & 63);
            }
        });
        debug_assert!(loaded, "the source skid is emptied every round");
        let lattice_counters = &counters.per_lattice[lattice_id as usize];
        counters.generated.fetch_add(1, Ordering::Relaxed);
        lattice_counters.generated.fetch_add(1, Ordering::Relaxed);
        let channel_index = router.route(lattice_id, sourced.round, channels.len());
        let channel = &channels[channel_index];
        let stalls_scheduled = injector.has_stalls();
        // `delivered`: the record reached a channel.  A delivered *poisoned*
        // record is shed-accounted below (the worker will quarantine it, so
        // its budget credit is refunded here and it never counts as
        // enqueued) — the backlog, frame and residual books stay exact.
        let delivered = match gate.policy(lattice_id as usize) {
            PushPolicy::Block => {
                // Two credit loops, both lossless: the lattice's own budget
                // lane first, then a channel credit; every refused retry is
                // one counted backpressure spin.  Stall *events* are
                // published once per contended round (value = spins), not
                // per spin — the journal records episodes, the counters
                // record magnitude.  Each lane spins at most `watchdog`
                // long; past that the round is force-shed with a
                // WatchdogTrip so a dead consumer cannot hang the run.
                let mut tripped = false;
                let mut budget_spins = 0u64;
                let mut deadline: Option<Instant> = None;
                while gate.admit(lattice_id as usize) == Admission::Blocked {
                    counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                    lattice_counters
                        .backpressure_spins
                        .fetch_add(1, Ordering::Relaxed);
                    budget_spins += 1;
                    let limit = *deadline.get_or_insert_with(|| Instant::now() + watchdog);
                    if budget_spins & 0xFF == 0 && Instant::now() >= limit {
                        tripped = true;
                        break;
                    }
                    std::hint::spin_loop();
                    thread::yield_now();
                }
                if budget_spins > 0 {
                    obs.publish(
                        EventKind::BudgetExhausted,
                        EventSeverity::Warning,
                        Some(lattice_id),
                        None,
                        emitted_ns,
                        budget_spins,
                    );
                }
                let mut send_spins = 0u64;
                if !tripped {
                    let mut deadline: Option<Instant> = None;
                    loop {
                        let refused = stalls_scheduled
                            && injector.stall_active(
                                channel_index,
                                emitted_total,
                                epoch.elapsed().as_nanos() as u64,
                            );
                        if !refused && skid.drain_with(|record| channel.try_send(record)) > 0 {
                            break;
                        }
                        counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                        lattice_counters
                            .backpressure_spins
                            .fetch_add(1, Ordering::Relaxed);
                        send_spins += 1;
                        let limit = *deadline.get_or_insert_with(|| Instant::now() + watchdog);
                        if send_spins & 0xFF == 0 && Instant::now() >= limit {
                            tripped = true;
                            // The budget credit acquired above is held for a
                            // round that will never be decoded: it goes home.
                            gate.refund(lattice_id as usize);
                            break;
                        }
                        std::hint::spin_loop();
                        thread::yield_now();
                    }
                    if send_spins > 0 {
                        obs.publish(
                            EventKind::BackpressureStall,
                            EventSeverity::Info,
                            Some(lattice_id),
                            None,
                            emitted_ns,
                            send_spins,
                        );
                    }
                }
                if tripped {
                    skid.discard_front();
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                    lattice_counters.dropped.fetch_add(1, Ordering::Relaxed);
                    if streaming {
                        tally_shed_round(
                            set.lattice(lattice_id as usize),
                            &sourced.error,
                            &mut shed_tallies[lattice_id as usize],
                            lattice_counters,
                        );
                    }
                    if config.track_shed_rounds {
                        lattice_shed[lattice_id as usize].push(sourced.round);
                    }
                    obs.publish(
                        EventKind::WatchdogTrip,
                        EventSeverity::Critical,
                        Some(lattice_id),
                        None,
                        epoch.elapsed().as_nanos() as u64,
                        sourced.round,
                    );
                }
                !tripped
            }
            PushPolicy::Drop => {
                // Shed when the lattice's budget lane refuses *or* the
                // channel has no credit (or is stalled); a shed round is
                // recorded so the frame path and the residual analysis can
                // feed it an identity correction later.
                let admission = gate.admit(lattice_id as usize);
                let stalled = stalls_scheduled
                    && injector.stall_active(
                        channel_index,
                        emitted_total,
                        epoch.elapsed().as_nanos() as u64,
                    );
                let delivered = match admission {
                    Admission::Granted => {
                        if !stalled && skid.drain_with(|record| channel.try_send(record)) > 0 {
                            true
                        } else {
                            // The granted budget credit goes home unused.
                            gate.refund(lattice_id as usize);
                            false
                        }
                    }
                    _ => false,
                };
                if !delivered {
                    skid.discard_front();
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                    lattice_counters.dropped.fetch_add(1, Ordering::Relaxed);
                    if streaming {
                        tally_shed_round(
                            set.lattice(lattice_id as usize),
                            &sourced.error,
                            &mut shed_tallies[lattice_id as usize],
                            lattice_counters,
                        );
                    }
                    if config.track_shed_rounds {
                        lattice_shed[lattice_id as usize].push(sourced.round);
                    }
                    if admission != Admission::Granted {
                        // Shed at the budget lane, not at a full channel.
                        obs.publish(
                            EventKind::BudgetExhausted,
                            EventSeverity::Warning,
                            Some(lattice_id),
                            None,
                            emitted_ns,
                            sourced.round,
                        );
                    }
                    obs.publish(
                        EventKind::Shed,
                        EventSeverity::Warning,
                        Some(lattice_id),
                        None,
                        emitted_ns,
                        sourced.round,
                    );
                }
                delivered
            }
        };
        if delivered && poison.is_some() {
            // The poisoned record is on the wire; the worker will reject
            // it, so the round is shed-accounted *now* and its budget
            // credit (which `credit_decode` would have returned) refunded.
            gate.refund(lattice_id as usize);
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            lattice_counters.dropped.fetch_add(1, Ordering::Relaxed);
            if streaming {
                tally_shed_round(
                    set.lattice(lattice_id as usize),
                    &sourced.error,
                    &mut shed_tallies[lattice_id as usize],
                    lattice_counters,
                );
            }
            if config.track_shed_rounds {
                lattice_shed[lattice_id as usize].push(sourced.round);
            }
            injector.corruption_delivered();
        } else if delivered {
            counters.enqueued.fetch_add(1, Ordering::Relaxed);
            lattice_counters.enqueued.fetch_add(1, Ordering::Relaxed);
        }
        let stats = &mut lattice_stats[lattice_id as usize];
        // Reuse the emission timestamp: it is this round's generation
        // instant, and it spares a second clock read per round.
        stats.gen_elapsed_ns = emitted_ns as f64;
        if sourced.round + 1 == expected_rounds[lattice_id as usize] {
            // This lattice's generation just stopped: its backlog at this
            // instant is what its per-lattice model comparison predicts.
            stats.final_backlog = lattice_counters.backlog();
        }
        depth.observe(
            emitted_total,
            epoch.elapsed().as_nanos() as u64,
            channels.iter().map(|c| c.len() as u64).sum(),
            counters,
        );
        emitted_total += 1;
    }
    // The terminal `next_round` call still fires due actions (a retire
    // scheduled for the final round, an add that never came online): drain
    // them so their journal entries and watermarks land.
    apply_elastic_events(&mut feed, codec, counters, &mut lattice_stats, obs, epoch);
    let generation_elapsed_ns = epoch.elapsed().as_nanos() as f64;
    // The backlog at the instant generation stops is the quantity the
    // closed-form model predicts (rounds keep arriving only while the
    // machine runs); the workers drain the remainder afterwards.
    let final_backlog = counters.backlog();
    let source_report = StageReport {
        stage: "source".to_string(),
        accepted: counters.generated.load(Ordering::Relaxed),
        emitted: counters.enqueued.load(Ordering::Relaxed),
        rejected: counters.dropped.load(Ordering::Relaxed),
        stall_cycles: counters.backpressure_spins.load(Ordering::Relaxed),
        ..StageReport::default()
    };
    source_metrics.sync_from(&source_report);
    let depth_report = depth.report("depth");
    SourceRun {
        depth_timeline: depth.finish(),
        generation_elapsed_ns,
        final_backlog,
        lattice_stats,
        lattice_shed,
        shed_tallies,
        reports: vec![source_report, skid.report("skid"), depth_report],
        noise_epochs: feed.noise_epochs(set),
        trace: recorder.map(TraceRecorder::into_trace),
    }
}

/// The assembled pipeline: codec, channels, gate, router and consumption
/// discipline, ready to run a machine's streams through a worker pool.
#[derive(Debug)]
pub struct PipelineGraph<'a> {
    config: &'a MachineConfig,
    set: &'a LatticeSet,
    codec: PacketCodec,
    channels: Vec<CreditChannel>,
    gate: QosGate,
    router: Box<dyn RouteStage>,
    consume: ConsumePolicy,
    obs: ObsPlane,
    injector: FaultInjector,
    watchdog: Duration,
    replay: Option<SyndromeTrace>,
    record_trace: bool,
}

impl<'a> PipelineGraph<'a> {
    /// Wires the graph for `config`'s machine.  With default `options` the
    /// wiring reproduces the classic engine exactly: one channel per worker
    /// of `queue_capacity / workers` slots, spread placement,
    /// own-then-steal consumption.  The observability plane is built from
    /// `config.obs` and every stage's metrics are registered up front, so
    /// nothing allocates on the hot path afterwards.
    #[must_use]
    pub fn new(config: &'a MachineConfig, set: &'a LatticeSet, options: PipelineOptions) -> Self {
        let obs = ObsPlane::with_observer(config.obs.clone(), options.observer);
        // The streaming residual path widens the wire: each record carries
        // its round's seeded error after the syndrome, so workers classify
        // residuals as they commit.  Every other mode keeps the narrow v3
        // layout.
        let codec = if config.streams_residuals() {
            PacketCodec::with_error_payload(&set.ancilla_bits(), &set.data_bits())
        } else {
            PacketCodec::for_lattice_bits(&set.ancilla_bits())
        };
        let channel_count = options.channels.unwrap_or(config.workers).max(1);
        let per_channel_capacity = config.queue_capacity.div_ceil(channel_count);
        let channels = (0..channel_count)
            .map(|index| {
                CreditChannel::new(per_channel_capacity, codec.words_per_packet()).with_metrics(
                    StageMetrics::register(obs.registry(), &format!("channel.{index}")),
                )
            })
            .collect();
        let gate = QosGate::for_machine(config, set)
            .with_metrics(StageMetrics::register(obs.registry(), "gate"));
        PipelineGraph {
            config,
            set,
            codec,
            channels,
            gate,
            router: options.router.unwrap_or_else(|| Box::new(SpreadRouter)),
            consume: options.consume,
            obs,
            injector: FaultInjector::new(config.fault.clone()),
            watchdog: options.watchdog,
            replay: options.replay,
            record_trace: options.record_trace,
        }
    }

    /// The channel fan-out of this graph.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The graph's observability plane.
    #[must_use]
    pub fn obs(&self) -> &ObsPlane {
        &self.obs
    }

    /// Runs the pipeline to completion: the calling thread becomes the
    /// source, `config.workers` decode threads are spawned for the
    /// duration of the call.  Returns once every generated round has been
    /// decoded (or shed) and all workers have exited.
    #[must_use]
    pub fn run(self, factory: &dyn DecoderFactory, counters: &RuntimeCounters) -> PipelineRun {
        let PipelineGraph {
            config,
            set,
            codec,
            channels,
            gate,
            router,
            consume,
            obs,
            injector,
            watchdog,
            replay,
            record_trace,
        } = self;
        let done = AtomicBool::new(false);
        // The sampler outlives the source: it keeps sampling while workers
        // drain the channels, and stops only after they have joined.
        let sampler_done = AtomicBool::new(false);
        let epoch = Instant::now();

        let (worker_results, source_run) = thread::scope(|s| {
            let sampler = if obs.config().snapshot_cadence_us > 0 {
                let obs = &obs;
                let channels = &channels;
                let sampler_done = &sampler_done;
                Some(s.spawn(move || run_sampler(obs, counters, channels, sampler_done, epoch)))
            } else {
                None
            };
            let handles: Vec<_> = (0..config.workers)
                .map(|worker_id| {
                    let channels = &channels;
                    let codec = &codec;
                    let gate = &gate;
                    let done = &done;
                    let obs = &obs;
                    let injector = &injector;
                    s.spawn(move || {
                        run_worker(WorkerSeat {
                            worker_id,
                            set,
                            codec,
                            channels,
                            gate,
                            counters,
                            done,
                            epoch,
                            factory,
                            // Only the *replay* residual path needs every
                            // correction recorded — the streaming path
                            // classifies in the worker and keeps nothing.
                            record_corrections: config.record_corrections
                                || config.replays_residuals(),
                            correction_cap: config.correction_cap,
                            batch_size: config.batch_size,
                            consume,
                            obs,
                            injector,
                        })
                    })
                })
                .collect();

            let source_run = run_source(
                config,
                set,
                &codec,
                &channels,
                &gate,
                &*router,
                counters,
                epoch,
                &obs,
                &injector,
                watchdog,
                replay,
                record_trace,
            );
            done.store(true, Ordering::Release);

            let worker_results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            sampler_done.store(true, Ordering::Release);
            if let Some(handle) = sampler {
                handle.thread().unpark();
                handle.join().expect("sampler thread panicked");
            }
            (worker_results, source_run)
        });
        let elapsed_s = epoch.elapsed().as_secs_f64();

        let mut stage_reports = source_run.reports;
        stage_reports.insert(1, gate.report("gate"));
        for (index, channel) in channels.iter().enumerate() {
            stage_reports.push(channel.report(format!("channel.{index}")));
        }
        let mut worker_outputs = Vec::with_capacity(worker_results.len());
        for (output, reports) in worker_results {
            worker_outputs.push(output);
            stage_reports.extend(reports);
        }
        PipelineRun {
            worker_outputs,
            depth_timeline: source_run.depth_timeline,
            generation_elapsed_ns: source_run.generation_elapsed_ns,
            final_backlog: source_run.final_backlog,
            lattice_stats: source_run.lattice_stats,
            lattice_shed: source_run.lattice_shed,
            shed_tallies: source_run.shed_tallies,
            stage_reports,
            elapsed_s,
            snapshots: obs.take_snapshots(),
            journal: obs.journal_snapshot(),
            metrics: obs.registry().snapshot(),
            fault: injector.snapshot(),
            trace: source_run.trace,
            noise_epochs: source_run.noise_epochs,
        }
    }
}

/// The snapshot sampler: every `snapshot_cadence_us` it reads the live
/// counters, queue depths, latency quantiles and journal totals into one
/// [`MetricsSnapshot`], publishes a [`EventKind::VerdictFlip`] event when
/// the backlog trend changes direction (growing = the machine is falling
/// behind, [`EventSeverity::Critical`]; shrinking again = recovery,
/// [`EventSeverity::Info`]), and pushes the sample into the plane's bounded
/// log.  A final sample is always taken after the workers exit, so even a
/// run shorter than one cadence gets exactly one snapshot of its end state.
fn run_sampler(
    obs: &ObsPlane,
    counters: &RuntimeCounters,
    channels: &[CreditChannel],
    done: &AtomicBool,
    epoch: Instant,
) {
    let cadence = Duration::from_micros(obs.config().snapshot_cadence_us);
    let mut seq = 0u64;
    let mut last_backlog = 0u64;
    let mut falling_behind = false;
    loop {
        let finished = done.load(Ordering::Acquire);
        let elapsed_ns = epoch.elapsed().as_nanos() as u64;
        let backlog = counters.backlog();
        if !finished {
            let now_falling = backlog > last_backlog;
            if now_falling != falling_behind {
                let (severity, value) = if now_falling {
                    (EventSeverity::Critical, backlog)
                } else {
                    (EventSeverity::Info, backlog)
                };
                obs.publish(
                    EventKind::VerdictFlip,
                    severity,
                    None,
                    None,
                    elapsed_ns,
                    value,
                );
                falling_behind = now_falling;
            }
            last_backlog = backlog;
        }
        let decode = obs.decode_hist().snapshot();
        obs.push_snapshot(MetricsSnapshot {
            seq,
            elapsed_ns,
            counters: counters.snapshot(),
            queue_depth: channels.iter().map(|c| c.len() as u64).sum(),
            backlog,
            per_lattice_backlog: counters
                .per_lattice
                .iter()
                .map(|lattice| lattice.backlog())
                .collect(),
            decode_p50_ns: decode.quantile_ns(0.50),
            decode_p99_ns: decode.quantile_ns(0.99),
            decode_p999_ns: decode.quantile_ns(0.999),
            events_published: obs.journal().published(),
            events_overwritten: obs.journal().overwritten(),
        });
        seq += 1;
        if finished {
            return;
        }
        thread::park_timeout(cadence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObsConfig;
    use crate::lattice_set::LatticeSpec;
    use crate::source::{NoiseSpec, SyndromeSource};
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};

    fn greedy_factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    /// Deterministic work stealing: worker 0's home channel is empty, every
    /// packet sits in channel 1, and the source is already done.  Worker 0
    /// must steal and decode all of them, counting each theft.
    #[test]
    fn starved_worker_steals_from_a_foreign_channel() {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 20;
        let set = LatticeSet::new(vec![spec]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let channels = [
            CreditChannel::new(64, codec.words_per_packet()),
            CreditChannel::new(64, codec.words_per_packet()),
        ];
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut source = SyndromeSource::new(
            set.lattice(0).clone(),
            NoiseSpec::PureDephasing { p: 0.1 },
            3,
        )
        .unwrap();
        for round in 0..20u64 {
            let packet = SyndromePacket::new(0, round, 0, &source.next_syndrome());
            codec.encode(&packet, &mut record);
            assert!(channels[1].try_send(&record));
        }
        let counters = RuntimeCounters::with_topology(1, 2);
        let gate = QosGate::unbounded(1);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let obs = ObsPlane::new(ObsConfig::default());
        let injector = FaultInjector::disabled();
        let (output, reports) = run_worker(WorkerSeat {
            worker_id: 0,
            set: &set,
            codec: &codec,
            channels: &channels,
            gate: &gate,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            correction_cap: None,
            batch_size: 4,
            consume: ConsumePolicy::OwnThenSteal,
            obs: &obs,
            injector: &injector,
        });
        let snap = counters.snapshot();
        assert_eq!(snap.decoded, 20);
        assert_eq!(snap.stolen, 20, "every packet was a steal");
        assert_eq!(snap.batches, 5, "20 packets in windows of 4");
        // The per-worker slice seats the same counts on worker 0.
        let worker = counters.per_worker[0].snapshot();
        assert_eq!(worker.decoded, 20);
        assert_eq!(worker.stolen, 20);
        assert_eq!(worker.batches, 5);
        assert_eq!(counters.per_worker[1].snapshot().decoded, 0);
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 20);
        let rounds: Vec<u64> = output.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..20).collect::<Vec<u64>>());
        assert!(channels.iter().all(CreditChannel::is_empty));
        // Every channel credit is home again.
        assert_eq!(channels[1].credits().available(), 64);
        let decode_report = &reports[0];
        assert_eq!(decode_report.stage, "decode.0");
        assert_eq!(decode_report.accepted, 20);
    }

    /// A two-lattice worker routes each packet to its lattice's state: the
    /// d=3 and d=5 rounds land in separate frames with separate counters,
    /// even when interleaved in one channel.
    #[test]
    fn worker_routes_packets_by_lattice_id() {
        let mut spec3 = LatticeSpec::new(3);
        spec3.rounds = 6;
        spec3.seed = 1;
        let mut spec5 = LatticeSpec::new(5);
        spec5.rounds = 4;
        spec5.seed = 2;
        let set = LatticeSet::new(vec![spec3, spec5]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let channels = [CreditChannel::new(64, codec.words_per_packet())];
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, rounds, seed) in [(0u32, 6u64, 1u64), (1, 4, 2)] {
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                NoiseSpec::PureDephasing { p: 0.1 },
                seed,
            )
            .unwrap();
            for round in 0..rounds {
                let packet = SyndromePacket::new(lattice_id, round, 0, &source.next_syndrome());
                codec.encode(&packet, &mut record);
                assert!(channels[0].try_send(&record));
            }
        }
        let counters = RuntimeCounters::with_topology(2, 1);
        let gate = QosGate::unbounded(2);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let obs = ObsPlane::new(ObsConfig::default());
        let injector = FaultInjector::disabled();
        let (output, _) = run_worker(WorkerSeat {
            worker_id: 0,
            set: &set,
            codec: &codec,
            channels: &channels,
            gate: &gate,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            correction_cap: None,
            batch_size: 4,
            consume: ConsumePolicy::OwnThenSteal,
            obs: &obs,
            injector: &injector,
        });
        assert_eq!(counters.snapshot().decoded, 10);
        assert_eq!(counters.per_lattice[0].snapshot().decoded, 6);
        assert_eq!(counters.per_lattice[1].snapshot().decoded, 4);
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 6);
        assert_eq!(output.per_lattice[1].frame.recorded_cycles(), 4);
        assert_eq!(output.per_lattice[0].frame.len(), set.lattice(0).num_data());
        assert_eq!(output.per_lattice[1].frame.len(), set.lattice(1).num_data());
        assert_eq!(
            output
                .corrections
                .iter()
                .filter(|c| c.lattice_id == 1)
                .count(),
            4
        );
    }

    #[test]
    fn spread_router_matches_the_classic_placement() {
        let router = SpreadRouter;
        for lattice_id in 0..3u32 {
            for round in 0..8u64 {
                assert_eq!(
                    router.route(lattice_id, round, 3),
                    ((u64::from(lattice_id) + round) % 3) as usize
                );
            }
        }
    }

    #[test]
    fn class_router_pins_lattices_to_their_class_channel() {
        let router = ClassRouter {
            class_of: vec![0, 1, 1],
        };
        for round in 0..8u64 {
            assert_eq!(router.route(0, round, 2), 0);
            assert_eq!(router.route(1, round, 2), 1);
            assert_eq!(router.route(2, round, 2), 1);
        }
        // More classes than channels wrap around instead of panicking.
        assert_eq!(router.route(1, 0, 1), 0);
    }

    /// The full graph with default options reproduces the engine contract:
    /// every round decoded exactly once, all stage credit books balanced at
    /// quiescence.
    #[test]
    fn default_graph_decodes_every_round_and_balances_credits() {
        let mut config = MachineConfig::new(&[3, 3], 11);
        for spec in &mut config.lattices {
            spec.rounds = 100;
            spec.cadence_cycles = 0;
        }
        config.workers = 2;
        config.queue_capacity = 64;
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        let counters = RuntimeCounters::with_topology(set.len(), config.workers);
        let graph = PipelineGraph::new(&config, &set, PipelineOptions::default());
        assert_eq!(graph.channels(), 2);
        let factory = greedy_factory();
        let run = graph.run(&factory, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 200);
        assert_eq!(snap.decoded, 200);
        assert_eq!(snap.dropped, 0);
        assert_eq!(run.worker_outputs.len(), 2);
        assert!(!run.depth_timeline.is_empty());
        assert_eq!(run.lattice_shed, vec![Vec::<u64>::new(); 2]);
        // Stage reports: source, gate, skid, depth, 2 channels, 2 decode +
        // 2 sink stages.
        let names: Vec<&str> = run.stage_reports.iter().map(|r| r.stage.as_str()).collect();
        assert!(names.contains(&"source"));
        assert!(names.contains(&"gate"));
        assert!(names.contains(&"channel.1"));
        assert!(names.contains(&"decode.0"));
        assert!(names.contains(&"sink.1"));
        let channel_flow: u64 = run
            .stage_reports
            .iter()
            .filter(|r| r.stage.starts_with("channel."))
            .map(|r| r.emitted)
            .sum();
        assert_eq!(channel_flow, 200, "every round passed through a channel");
        for report in run
            .stage_reports
            .iter()
            .filter(|r| r.stage.starts_with("channel."))
        {
            assert_eq!(
                report.credits_consumed, report.credits_issued,
                "all channel credits are home at quiescence"
            );
        }
    }

    /// An injected worker crash is caught, journaled and answered by a
    /// restart that adopts the dead worker's frame shard: every generated
    /// round is still decoded exactly once.
    #[test]
    fn crashed_worker_is_restarted_and_no_round_is_lost() {
        crate::fault::silence_injected_crash_panics();
        let mut config = MachineConfig::new(&[3, 3], 11);
        for spec in &mut config.lattices {
            spec.rounds = 100;
            spec.cadence_cycles = 0;
        }
        config.workers = 2;
        config.queue_capacity = 64;
        config.fault = crate::fault::FaultPlan::default().crash_worker(0, 10);
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        let counters = RuntimeCounters::with_topology(set.len(), config.workers);
        let graph = PipelineGraph::new(&config, &set, PipelineOptions::default());
        let factory = greedy_factory();
        let run = graph.run(&factory, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 200);
        assert_eq!(snap.decoded, 200, "the restarted worker drains the rest");
        assert_eq!(snap.dropped, 0);
        assert_eq!(run.fault.crashes, 1);
        assert_eq!(run.journal.counts.worker_crash, 1);
        assert_eq!(run.journal.counts.worker_restart, 1);
        // The crashed worker's shard survived: the merged per-lattice frames
        // carry every round.
        let committed: u64 = run
            .worker_outputs
            .iter()
            .flat_map(|w| w.per_lattice.iter())
            .map(|l| l.frame.recorded_cycles())
            .sum();
        assert_eq!(committed, 200);
    }

    /// A poisoned record is quarantined by the worker and shed-accounted by
    /// the producer: books reconcile, nothing panics, nothing misdecodes.
    #[test]
    fn corrupted_record_is_quarantined_and_shed_accounted() {
        let mut config = MachineConfig::new(&[3], 7);
        config.lattices[0].rounds = 100;
        config.lattices[0].cadence_cycles = 0;
        config.workers = 1;
        config.queue_capacity = 256;
        config.fault = crate::fault::FaultPlan::default().corrupt_record(0, 5, 2, 13);
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        let counters = RuntimeCounters::with_topology(set.len(), config.workers);
        let graph = PipelineGraph::new(&config, &set, PipelineOptions::default());
        let factory = greedy_factory();
        let run = graph.run(&factory, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 100);
        assert_eq!(snap.decoded, 99, "the poisoned round is not decoded");
        assert_eq!(snap.dropped, 1, "…it is shed-accounted");
        assert_eq!(snap.quarantined, 1, "…and quarantined at the worker");
        assert_eq!(run.fault.corruptions, 1);
        assert_eq!(run.journal.counts.quarantine, 1);
        assert_eq!(run.lattice_shed[0], vec![5]);
    }

    /// A channel whose consumer never drains (an infinite injected stall on
    /// a Block lane) trips the watchdog: the run ends with force-shed
    /// rounds and WatchdogTrip events instead of hanging forever.
    #[test]
    fn dead_consumer_trips_the_watchdog_instead_of_hanging() {
        let mut config = MachineConfig::new(&[3], 3);
        config.lattices[0].rounds = 4;
        config.lattices[0].cadence_cycles = 0;
        config.workers = 1;
        config.queue_capacity = 16;
        config.fault = crate::fault::FaultPlan::default().stall_channel(0, 0, u64::MAX);
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        let counters = RuntimeCounters::with_topology(set.len(), config.workers);
        let options = PipelineOptions {
            watchdog: Duration::from_millis(20),
            ..PipelineOptions::default()
        };
        let graph = PipelineGraph::new(&config, &set, options);
        let factory = greedy_factory();
        let run = graph.run(&factory, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 4);
        assert_eq!(snap.decoded, 0, "the channel never delivered a round");
        assert_eq!(snap.dropped, 4, "every round was force-shed");
        assert_eq!(run.journal.counts.watchdog_trip, 4);
        assert_eq!(run.fault.stalls, 1);
        assert_eq!(run.lattice_shed[0], vec![0, 1, 2, 3]);
    }
}
