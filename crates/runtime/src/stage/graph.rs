//! The pipeline graph: wiring stages into a running, backpressured whole.
//!
//! A [`PipelineGraph`] assembles the streaming pipeline from the stage
//! building blocks and runs it to completion:
//!
//! ```text
//! source ──► gate ──► route ──► channel[0..C] ──► mux ──► decode ──► sink
//!  (paced)  (QoS)   (placement)  (credit loops)  (per worker, N threads)
//! ```
//!
//! One paced source runs on the calling thread; `workers` decode threads
//! each drive a mux → decode → sink chain.  Every seam is credit-backed:
//! the channels carry capacity credits, the gate carries per-lattice budget
//! credits that only come home when the decode commits.  The graph's shape
//! is configurable through [`PipelineOptions`] — where rounds are placed
//! ([`RouteStage`]) and how workers consume ([`ConsumePolicy`]) — with
//! defaults that reproduce the engine's spread-and-steal behaviour
//! byte-for-byte.  [`PipelineGraph::run`] returns a [`PipelineRun`]: the
//! raw worker outputs, timelines, per-lattice producer statistics, and one
//! [`StageReport`] per stage.

use crate::config::{MachineConfig, PushPolicy};
use crate::lattice_set::LatticeSet;
use crate::obs::{
    EventKind, EventSeverity, JournalSnapshot, MetricSample, MetricsSnapshot, ObsPlane,
    RuntimeObserver, StageMetrics,
};
use crate::packet::{PacketCodec, SyndromePacket};
use crate::source::InterleavedSource;
use crate::stage::channel::CreditChannel;
use crate::stage::decode::DecodeStage;
use crate::stage::gate::{Admission, QosGate};
use crate::stage::mux::{BatchMux, PriorityMux, RoundRobinMux, StealMux};
use crate::stage::sink::{DepthSink, FrameSink, WorkerOutput};
use crate::stage::skid::SkidBuffer;
use crate::stage::StageReport;
use crate::telemetry::{DepthSample, RuntimeCounters};
use nisqplus_decoders::traits::DecoderFactory;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The placement stage: which channel a round is sent to.
pub trait RouteStage: fmt::Debug + Send + Sync {
    /// The channel index for round `round` of lattice `lattice_id`, given
    /// `channels` channels.  Must return a value `< channels`.
    fn route(&self, lattice_id: u32, round: u64, channels: usize) -> usize;
}

/// The default placement: spread rounds over the pool, offset by lattice
/// id so co-cadenced lattices don't all land on the same channel; stealing
/// rebalances whatever placement gets wrong.  For a single lattice this is
/// plain round-robin.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadRouter;

impl RouteStage for SpreadRouter {
    fn route(&self, lattice_id: u32, round: u64, channels: usize) -> usize {
        ((u64::from(lattice_id) + round) % channels as u64) as usize
    }
}

/// Class-based placement: lattice `i` always lands on channel
/// `class_of[i] % channels`.  Combined with [`ConsumePolicy::Priority`]
/// this builds a strict-priority pipeline — traffic classes get their own
/// channel and workers drain lower-numbered classes first (see
/// `examples/stage_pipeline.rs`).
#[derive(Debug, Clone)]
pub struct ClassRouter {
    /// The traffic class of each lattice, indexed by lattice id.
    pub class_of: Vec<usize>,
}

impl RouteStage for ClassRouter {
    fn route(&self, lattice_id: u32, _round: u64, channels: usize) -> usize {
        self.class_of[lattice_id as usize] % channels
    }
}

/// How each worker's mux consumes the channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumePolicy {
    /// Drain the worker's home channel, stealing a whole batch from the
    /// first busy neighbour when home runs dry (the engine default; see
    /// [`StealMux`]).
    #[default]
    OwnThenSteal,
    /// Always drain the lowest-indexed busy channel ([`PriorityMux`]).
    Priority,
    /// Rotate grants across channels ([`RoundRobinMux`]).
    RoundRobin,
}

/// The configurable shape of a [`PipelineGraph`].
///
/// The default options reproduce the classic engine wiring exactly: one
/// channel per worker, spread placement, own-then-steal consumption.
#[derive(Debug, Default)]
pub struct PipelineOptions {
    /// The placement stage; `None` uses [`SpreadRouter`].
    pub router: Option<Box<dyn RouteStage>>,
    /// How workers consume the channels.
    pub consume: ConsumePolicy,
    /// Number of channels; `None` uses one per worker.
    pub channels: Option<usize>,
    /// An external tap on the run's events and snapshots; `None` keeps the
    /// journal and snapshot log as the only consumers.
    pub observer: Option<Box<dyn RuntimeObserver>>,
}

/// Per-lattice generation statistics tracked by the source stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatticeGenStats {
    /// Elapsed nanoseconds at this lattice's last emission.
    pub gen_elapsed_ns: f64,
    /// This lattice's backlog at the instant its generation stopped.
    pub final_backlog: u64,
}

/// Everything a finished pipeline hands back to the engine.
#[derive(Debug)]
pub struct PipelineRun {
    /// One output per decode worker.
    pub worker_outputs: Vec<WorkerOutput>,
    /// The down-sampled aggregate + per-lattice backlog timeline.
    pub depth_timeline: Vec<DepthSample>,
    /// Elapsed nanoseconds when the source finished generating.
    pub generation_elapsed_ns: f64,
    /// Aggregate backlog at the instant generation stopped.
    pub final_backlog: u64,
    /// Per-lattice source statistics, in lattice-id order.
    pub lattice_stats: Vec<LatticeGenStats>,
    /// Rounds shed per lattice, in emission order.
    pub lattice_shed: Vec<Vec<u64>>,
    /// One report per stage, in graph order: source, skid, gate,
    /// channels, per-worker decode and sink stages, depth sink.
    pub stage_reports: Vec<StageReport>,
    /// Wall-clock seconds from epoch to the last worker's exit.
    pub elapsed_s: f64,
    /// Mid-run metrics samples taken by the snapshot thread (empty when the
    /// sampler is disabled via `snapshot_cadence_us: 0`).
    pub snapshots: Vec<MetricsSnapshot>,
    /// The event journal's end-of-run snapshot: totals per severity/kind
    /// plus the configured tail of recent events.
    pub journal: JournalSnapshot,
    /// Every registered metric by name, read at end of run.
    pub metrics: Vec<MetricSample>,
}

/// Everything one decode worker needs, bundled to keep spawn sites tidy
/// (and to let tests drive a worker directly against hand-filled channels).
pub struct WorkerSeat<'a> {
    /// This worker's index; its home channel is `worker_id % channels`.
    pub worker_id: usize,
    /// The lattices being served.
    pub set: &'a LatticeSet,
    /// The shared wire codec.
    pub codec: &'a PacketCodec,
    /// The channels the worker consumes from.
    pub channels: &'a [CreditChannel],
    /// The admission gate whose budget credits the worker returns.
    pub gate: &'a QosGate,
    /// The shared run counters.
    pub counters: &'a RuntimeCounters,
    /// Set once the source has finished generating.
    pub done: &'a AtomicBool,
    /// The run's epoch, for latency timestamps.
    pub epoch: Instant,
    /// The machine-wide decoder factory.
    pub factory: &'a dyn DecoderFactory,
    /// Whether committed corrections are kept per round.
    pub record_corrections: bool,
    /// Maximum rounds decoded as one batch.
    pub batch_size: usize,
    /// The worker's consumption discipline.
    pub consume: ConsumePolicy,
    /// The run's observability plane (latency histograms, event journal,
    /// stage metrics registry).
    pub obs: &'a ObsPlane,
}

impl fmt::Debug for WorkerSeat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerSeat")
            .field("worker_id", &self.worker_id)
            .field("channels", &self.channels.len())
            .field("batch_size", &self.batch_size)
            .field("consume", &self.consume)
            .finish_non_exhaustive()
    }
}

/// One decode worker: fill a batch through the mux, decode every record
/// through the lattice's prepared hot path, commit to the private frame
/// sink, return each round's budget credit to the gate.  Returns the
/// worker's output plus its decode and sink [`StageReport`]s.
pub fn run_worker(seat: WorkerSeat<'_>) -> (WorkerOutput, Vec<StageReport>) {
    let WorkerSeat {
        worker_id,
        set,
        codec,
        channels,
        gate,
        counters,
        done,
        epoch,
        factory,
        record_corrections,
        batch_size,
        consume,
        obs,
    } = seat;
    let mut decode = DecodeStage::new(set, codec, factory);
    let decode_metrics = StageMetrics::register(obs.registry(), &format!("decode.{worker_id}"));
    let mut sink = FrameSink::new(set, record_corrections).with_obs(
        StageMetrics::register(obs.registry(), &format!("sink.{worker_id}")),
        Arc::clone(obs.decode_hist()),
    );
    let mut mux: Box<dyn BatchMux> = match consume {
        ConsumePolicy::OwnThenSteal => Box::new(StealMux::new(worker_id % channels.len())),
        ConsumePolicy::Priority => Box::new(PriorityMux::new()),
        ConsumePolicy::RoundRobin => Box::new(RoundRobinMux::new()),
    };
    // Reusable batch records, shared across lattices (records are sized for
    // the largest lattice of the set).
    let mut batch: Vec<Vec<u64>> = (0..batch_size)
        .map(|_| vec![0u64; codec.words_per_packet()])
        .collect();
    let worker_counters = counters.per_worker.get(worker_id);
    let mut stall_polls = 0u64;
    loop {
        // ---- Fill a batch through the mux ------------------------------
        let fill = mux.fill(channels, &mut batch);
        if fill.stolen > 0 {
            counters.stolen.fetch_add(fill.stolen, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.stolen.fetch_add(fill.stolen, Ordering::Relaxed);
            }
            obs.publish(
                EventKind::Steal,
                EventSeverity::Info,
                None,
                Some(worker_id as u32),
                epoch.elapsed().as_nanos() as u64,
                fill.stolen,
            );
        }
        if fill.filled == 0 {
            if done.load(Ordering::Acquire) && channels.iter().all(CreditChannel::is_empty) {
                let decode_report = StageReport {
                    stage: format!("decode.{worker_id}"),
                    accepted: decode.decoded(),
                    emitted: decode.decoded(),
                    stall_cycles: stall_polls,
                    ..StageReport::default()
                };
                decode_metrics.sync_from(&decode_report);
                let sink_report = sink.report(format!("sink.{worker_id}"));
                let output = sink.finish(decode.lattice_decoders().to_vec());
                return (output, vec![decode_report, sink_report]);
            }
            counters.stall_polls.fetch_add(1, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.stall_polls.fetch_add(1, Ordering::Relaxed);
            }
            stall_polls += 1;
            std::hint::spin_loop();
            thread::yield_now();
            continue;
        }

        // ---- Decode the batch ------------------------------------------
        // Per-packet service time keeps its meaning (the full
        // unpack-to-commit span of that round — what the backlog model's `f`
        // ratio is about): timestamps are chained, one clock read per
        // packet, so batching amortizes the mux scans and counter updates
        // without flattening latency spikes into a batch mean.
        let mut prev = Instant::now();
        for record in &batch[..fill.filled] {
            let decoded = decode.decode(record);
            let lattice_id = decoded.lattice_id as usize;
            let emitted_ns = decoded.emitted_ns;
            sink.commit(&decoded);
            let now = Instant::now();
            sink.record_latency(
                lattice_id,
                now.duration_since(prev).as_nanos() as u64,
                (now.duration_since(epoch).as_nanos() as u64).saturating_sub(emitted_ns),
            );
            counters.per_lattice[lattice_id]
                .decoded
                .fetch_add(1, Ordering::Relaxed);
            if let Some(w) = worker_counters {
                w.decoded.fetch_add(1, Ordering::Relaxed);
            }
            // The round is committed: its budget credit goes home, closing
            // the gate-to-sink credit loop.
            gate.credit_decode(lattice_id);
            prev = now;
        }
        counters
            .decoded
            .fetch_add(fill.filled as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = worker_counters {
            w.batches.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What the source stage hands back when generation ends.
struct SourceRun {
    depth_timeline: Vec<DepthSample>,
    generation_elapsed_ns: f64,
    final_backlog: u64,
    lattice_stats: Vec<LatticeGenStats>,
    lattice_shed: Vec<Vec<u64>>,
    reports: Vec<StageReport>,
}

/// The source stage: paced interleaved generation, bit-packing into a skid
/// buffer, gate admission under each lattice's QoS lane, routed placement
/// into the credit channels, depth sampling.
#[allow(clippy::too_many_arguments)]
fn run_source(
    config: &MachineConfig,
    set: &LatticeSet,
    codec: &PacketCodec,
    channels: &[CreditChannel],
    gate: &QosGate,
    router: &dyn RouteStage,
    counters: &RuntimeCounters,
    epoch: Instant,
    obs: &ObsPlane,
) -> SourceRun {
    let mut source = InterleavedSource::new(set, &config.cycle_time)
        .expect("config validated in StreamingEngine::with_machine");
    let total_rounds = set.total_rounds();
    let mut depth = DepthSink::new(total_rounds, config.max_depth_samples)
        .with_metrics(StageMetrics::register(obs.registry(), "depth"));
    // The send seam's skid: an encoded record rests here while its channel
    // refuses credits, so a Block-lane round exists in exactly one place at
    // every instant of a stall and a Drop-lane round is shed by an explicit
    // counted discard.
    let mut skid: SkidBuffer<Vec<u64>> =
        SkidBuffer::new(1).with_metrics(StageMetrics::register(obs.registry(), "skid"));
    let source_metrics = StageMetrics::register(obs.registry(), "source");
    let words = codec.words_per_packet();
    let mut lattice_stats = vec![LatticeGenStats::default(); set.len()];
    let mut lattice_shed: Vec<Vec<u64>> = vec![Vec::new(); set.len()];
    let mut emitted_total = 0u64;

    while let Some(sourced) = source.next_round() {
        if sourced.due_ns > 0.0 {
            // Pace generation to the lattice's hardware cadence.
            // `yield_now` keeps the spin cooperative on machines with
            // fewer cores than threads; the *measured* inter-arrival time
            // (not the nominal cadence) is what feeds the model
            // comparison, so imprecise pacing degrades the experiment's
            // rate, never its honesty.
            let target_ns = sourced.due_ns as u128;
            while epoch.elapsed().as_nanos() < target_ns {
                std::hint::spin_loop();
                thread::yield_now();
            }
        }
        let lattice_id = sourced.lattice_id;
        let emitted_ns = epoch.elapsed().as_nanos() as u64;
        let packet = SyndromePacket::new(lattice_id, sourced.round, emitted_ns, &sourced.syndrome);
        let loaded = skid.accept_with(|slot| {
            slot.resize(words, 0);
            codec.encode(&packet, slot);
        });
        debug_assert!(loaded, "the source skid is emptied every round");
        let lattice_counters = &counters.per_lattice[lattice_id as usize];
        counters.generated.fetch_add(1, Ordering::Relaxed);
        lattice_counters.generated.fetch_add(1, Ordering::Relaxed);
        let channel = &channels[router.route(lattice_id, sourced.round, channels.len())];
        match gate.policy(lattice_id as usize) {
            PushPolicy::Block => {
                // Two credit loops, both lossless: the lattice's own budget
                // lane first, then a channel credit; every refused retry is
                // one counted backpressure spin.  Stall *events* are
                // published once per contended round (value = spins), not
                // per spin — the journal records episodes, the counters
                // record magnitude.
                let mut budget_spins = 0u64;
                while gate.admit(lattice_id as usize) == Admission::Blocked {
                    counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                    lattice_counters
                        .backpressure_spins
                        .fetch_add(1, Ordering::Relaxed);
                    budget_spins += 1;
                    std::hint::spin_loop();
                    thread::yield_now();
                }
                if budget_spins > 0 {
                    obs.publish(
                        EventKind::BudgetExhausted,
                        EventSeverity::Warning,
                        Some(lattice_id),
                        None,
                        emitted_ns,
                        budget_spins,
                    );
                }
                let mut send_spins = 0u64;
                while skid.drain_with(|record| channel.try_send(record)) == 0 {
                    counters.backpressure_spins.fetch_add(1, Ordering::Relaxed);
                    lattice_counters
                        .backpressure_spins
                        .fetch_add(1, Ordering::Relaxed);
                    send_spins += 1;
                    std::hint::spin_loop();
                    thread::yield_now();
                }
                if send_spins > 0 {
                    obs.publish(
                        EventKind::BackpressureStall,
                        EventSeverity::Info,
                        Some(lattice_id),
                        None,
                        emitted_ns,
                        send_spins,
                    );
                }
                counters.enqueued.fetch_add(1, Ordering::Relaxed);
                lattice_counters.enqueued.fetch_add(1, Ordering::Relaxed);
            }
            PushPolicy::Drop => {
                // Shed when the lattice's budget lane refuses *or* the
                // channel has no credit; a shed round is recorded so the
                // frame path and the residual analysis can feed it an
                // identity correction later.
                let admission = gate.admit(lattice_id as usize);
                let delivered = match admission {
                    Admission::Granted => {
                        if skid.drain_with(|record| channel.try_send(record)) > 0 {
                            true
                        } else {
                            // The granted budget credit goes home unused.
                            gate.refund(lattice_id as usize);
                            false
                        }
                    }
                    _ => false,
                };
                if delivered {
                    counters.enqueued.fetch_add(1, Ordering::Relaxed);
                    lattice_counters.enqueued.fetch_add(1, Ordering::Relaxed);
                } else {
                    skid.discard_front();
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                    lattice_counters.dropped.fetch_add(1, Ordering::Relaxed);
                    lattice_shed[lattice_id as usize].push(sourced.round);
                    if admission != Admission::Granted {
                        // Shed at the budget lane, not at a full channel.
                        obs.publish(
                            EventKind::BudgetExhausted,
                            EventSeverity::Warning,
                            Some(lattice_id),
                            None,
                            emitted_ns,
                            sourced.round,
                        );
                    }
                    obs.publish(
                        EventKind::Shed,
                        EventSeverity::Warning,
                        Some(lattice_id),
                        None,
                        emitted_ns,
                        sourced.round,
                    );
                }
            }
        }
        let stats = &mut lattice_stats[lattice_id as usize];
        // Reuse the emission timestamp: it is this round's generation
        // instant, and it spares a second clock read per round.
        stats.gen_elapsed_ns = emitted_ns as f64;
        if sourced.round + 1 == set.spec(lattice_id as usize).rounds {
            // This lattice's generation just stopped: its backlog at this
            // instant is what its per-lattice model comparison predicts.
            stats.final_backlog = lattice_counters.backlog();
        }
        depth.observe(
            emitted_total,
            epoch.elapsed().as_nanos() as u64,
            channels.iter().map(|c| c.len() as u64).sum(),
            counters,
        );
        emitted_total += 1;
    }
    let generation_elapsed_ns = epoch.elapsed().as_nanos() as f64;
    // The backlog at the instant generation stops is the quantity the
    // closed-form model predicts (rounds keep arriving only while the
    // machine runs); the workers drain the remainder afterwards.
    let final_backlog = counters.backlog();
    let source_report = StageReport {
        stage: "source".to_string(),
        accepted: counters.generated.load(Ordering::Relaxed),
        emitted: counters.enqueued.load(Ordering::Relaxed),
        rejected: counters.dropped.load(Ordering::Relaxed),
        stall_cycles: counters.backpressure_spins.load(Ordering::Relaxed),
        ..StageReport::default()
    };
    source_metrics.sync_from(&source_report);
    let depth_report = depth.report("depth");
    SourceRun {
        depth_timeline: depth.finish(),
        generation_elapsed_ns,
        final_backlog,
        lattice_stats,
        lattice_shed,
        reports: vec![source_report, skid.report("skid"), depth_report],
    }
}

/// The assembled pipeline: codec, channels, gate, router and consumption
/// discipline, ready to run a machine's streams through a worker pool.
#[derive(Debug)]
pub struct PipelineGraph<'a> {
    config: &'a MachineConfig,
    set: &'a LatticeSet,
    codec: PacketCodec,
    channels: Vec<CreditChannel>,
    gate: QosGate,
    router: Box<dyn RouteStage>,
    consume: ConsumePolicy,
    obs: ObsPlane,
}

impl<'a> PipelineGraph<'a> {
    /// Wires the graph for `config`'s machine.  With default `options` the
    /// wiring reproduces the classic engine exactly: one channel per worker
    /// of `queue_capacity / workers` slots, spread placement,
    /// own-then-steal consumption.  The observability plane is built from
    /// `config.obs` and every stage's metrics are registered up front, so
    /// nothing allocates on the hot path afterwards.
    #[must_use]
    pub fn new(config: &'a MachineConfig, set: &'a LatticeSet, options: PipelineOptions) -> Self {
        let obs = ObsPlane::with_observer(config.obs.clone(), options.observer);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let channel_count = options.channels.unwrap_or(config.workers).max(1);
        let per_channel_capacity = config.queue_capacity.div_ceil(channel_count);
        let channels = (0..channel_count)
            .map(|index| {
                CreditChannel::new(per_channel_capacity, codec.words_per_packet()).with_metrics(
                    StageMetrics::register(obs.registry(), &format!("channel.{index}")),
                )
            })
            .collect();
        let gate = QosGate::for_machine(config, set)
            .with_metrics(StageMetrics::register(obs.registry(), "gate"));
        PipelineGraph {
            config,
            set,
            codec,
            channels,
            gate,
            router: options.router.unwrap_or_else(|| Box::new(SpreadRouter)),
            consume: options.consume,
            obs,
        }
    }

    /// The channel fan-out of this graph.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The graph's observability plane.
    #[must_use]
    pub fn obs(&self) -> &ObsPlane {
        &self.obs
    }

    /// Runs the pipeline to completion: the calling thread becomes the
    /// source, `config.workers` decode threads are spawned for the
    /// duration of the call.  Returns once every generated round has been
    /// decoded (or shed) and all workers have exited.
    #[must_use]
    pub fn run(self, factory: &dyn DecoderFactory, counters: &RuntimeCounters) -> PipelineRun {
        let PipelineGraph {
            config,
            set,
            codec,
            channels,
            gate,
            router,
            consume,
            obs,
        } = self;
        let done = AtomicBool::new(false);
        // The sampler outlives the source: it keeps sampling while workers
        // drain the channels, and stops only after they have joined.
        let sampler_done = AtomicBool::new(false);
        let epoch = Instant::now();

        let (worker_results, source_run) = thread::scope(|s| {
            let sampler = if obs.config().snapshot_cadence_us > 0 {
                let obs = &obs;
                let channels = &channels;
                let sampler_done = &sampler_done;
                Some(s.spawn(move || run_sampler(obs, counters, channels, sampler_done, epoch)))
            } else {
                None
            };
            let handles: Vec<_> = (0..config.workers)
                .map(|worker_id| {
                    let channels = &channels;
                    let codec = &codec;
                    let gate = &gate;
                    let done = &done;
                    let obs = &obs;
                    s.spawn(move || {
                        run_worker(WorkerSeat {
                            worker_id,
                            set,
                            codec,
                            channels,
                            gate,
                            counters,
                            done,
                            epoch,
                            factory,
                            // The residual analysis replays corrections per
                            // round, so it needs them recorded too.
                            record_corrections: config.record_corrections
                                || config.analyze_residuals,
                            batch_size: config.batch_size,
                            consume,
                            obs,
                        })
                    })
                })
                .collect();

            let source_run = run_source(
                config, set, &codec, &channels, &gate, &*router, counters, epoch, &obs,
            );
            done.store(true, Ordering::Release);

            let worker_results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            sampler_done.store(true, Ordering::Release);
            if let Some(handle) = sampler {
                handle.thread().unpark();
                handle.join().expect("sampler thread panicked");
            }
            (worker_results, source_run)
        });
        let elapsed_s = epoch.elapsed().as_secs_f64();

        let mut stage_reports = source_run.reports;
        stage_reports.insert(1, gate.report("gate"));
        for (index, channel) in channels.iter().enumerate() {
            stage_reports.push(channel.report(format!("channel.{index}")));
        }
        let mut worker_outputs = Vec::with_capacity(worker_results.len());
        for (output, reports) in worker_results {
            worker_outputs.push(output);
            stage_reports.extend(reports);
        }
        PipelineRun {
            worker_outputs,
            depth_timeline: source_run.depth_timeline,
            generation_elapsed_ns: source_run.generation_elapsed_ns,
            final_backlog: source_run.final_backlog,
            lattice_stats: source_run.lattice_stats,
            lattice_shed: source_run.lattice_shed,
            stage_reports,
            elapsed_s,
            snapshots: obs.take_snapshots(),
            journal: obs.journal_snapshot(),
            metrics: obs.registry().snapshot(),
        }
    }
}

/// The snapshot sampler: every `snapshot_cadence_us` it reads the live
/// counters, queue depths, latency quantiles and journal totals into one
/// [`MetricsSnapshot`], publishes a [`EventKind::VerdictFlip`] event when
/// the backlog trend changes direction (growing = the machine is falling
/// behind, [`EventSeverity::Critical`]; shrinking again = recovery,
/// [`EventSeverity::Info`]), and pushes the sample into the plane's bounded
/// log.  A final sample is always taken after the workers exit, so even a
/// run shorter than one cadence gets exactly one snapshot of its end state.
fn run_sampler(
    obs: &ObsPlane,
    counters: &RuntimeCounters,
    channels: &[CreditChannel],
    done: &AtomicBool,
    epoch: Instant,
) {
    let cadence = Duration::from_micros(obs.config().snapshot_cadence_us);
    let mut seq = 0u64;
    let mut last_backlog = 0u64;
    let mut falling_behind = false;
    loop {
        let finished = done.load(Ordering::Acquire);
        let elapsed_ns = epoch.elapsed().as_nanos() as u64;
        let backlog = counters.backlog();
        if !finished {
            let now_falling = backlog > last_backlog;
            if now_falling != falling_behind {
                let (severity, value) = if now_falling {
                    (EventSeverity::Critical, backlog)
                } else {
                    (EventSeverity::Info, backlog)
                };
                obs.publish(
                    EventKind::VerdictFlip,
                    severity,
                    None,
                    None,
                    elapsed_ns,
                    value,
                );
                falling_behind = now_falling;
            }
            last_backlog = backlog;
        }
        let decode = obs.decode_hist().snapshot();
        obs.push_snapshot(MetricsSnapshot {
            seq,
            elapsed_ns,
            counters: counters.snapshot(),
            queue_depth: channels.iter().map(|c| c.len() as u64).sum(),
            backlog,
            per_lattice_backlog: counters
                .per_lattice
                .iter()
                .map(|lattice| lattice.backlog())
                .collect(),
            decode_p50_ns: decode.quantile_ns(0.50),
            decode_p99_ns: decode.quantile_ns(0.99),
            decode_p999_ns: decode.quantile_ns(0.999),
            events_published: obs.journal().published(),
            events_overwritten: obs.journal().overwritten(),
        });
        seq += 1;
        if finished {
            return;
        }
        thread::park_timeout(cadence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObsConfig;
    use crate::lattice_set::LatticeSpec;
    use crate::source::{NoiseSpec, SyndromeSource};
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};

    fn greedy_factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    /// Deterministic work stealing: worker 0's home channel is empty, every
    /// packet sits in channel 1, and the source is already done.  Worker 0
    /// must steal and decode all of them, counting each theft.
    #[test]
    fn starved_worker_steals_from_a_foreign_channel() {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 20;
        let set = LatticeSet::new(vec![spec]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let channels = [
            CreditChannel::new(64, codec.words_per_packet()),
            CreditChannel::new(64, codec.words_per_packet()),
        ];
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut source = SyndromeSource::new(
            set.lattice(0).clone(),
            NoiseSpec::PureDephasing { p: 0.1 },
            3,
        )
        .unwrap();
        for round in 0..20u64 {
            let packet = SyndromePacket::new(0, round, 0, &source.next_syndrome());
            codec.encode(&packet, &mut record);
            assert!(channels[1].try_send(&record));
        }
        let counters = RuntimeCounters::with_topology(1, 2);
        let gate = QosGate::unbounded(1);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let obs = ObsPlane::new(ObsConfig::default());
        let (output, reports) = run_worker(WorkerSeat {
            worker_id: 0,
            set: &set,
            codec: &codec,
            channels: &channels,
            gate: &gate,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            batch_size: 4,
            consume: ConsumePolicy::OwnThenSteal,
            obs: &obs,
        });
        let snap = counters.snapshot();
        assert_eq!(snap.decoded, 20);
        assert_eq!(snap.stolen, 20, "every packet was a steal");
        assert_eq!(snap.batches, 5, "20 packets in windows of 4");
        // The per-worker slice seats the same counts on worker 0.
        let worker = counters.per_worker[0].snapshot();
        assert_eq!(worker.decoded, 20);
        assert_eq!(worker.stolen, 20);
        assert_eq!(worker.batches, 5);
        assert_eq!(counters.per_worker[1].snapshot().decoded, 0);
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 20);
        let rounds: Vec<u64> = output.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..20).collect::<Vec<u64>>());
        assert!(channels.iter().all(CreditChannel::is_empty));
        // Every channel credit is home again.
        assert_eq!(channels[1].credits().available(), 64);
        let decode_report = &reports[0];
        assert_eq!(decode_report.stage, "decode.0");
        assert_eq!(decode_report.accepted, 20);
    }

    /// A two-lattice worker routes each packet to its lattice's state: the
    /// d=3 and d=5 rounds land in separate frames with separate counters,
    /// even when interleaved in one channel.
    #[test]
    fn worker_routes_packets_by_lattice_id() {
        let mut spec3 = LatticeSpec::new(3);
        spec3.rounds = 6;
        spec3.seed = 1;
        let mut spec5 = LatticeSpec::new(5);
        spec5.rounds = 4;
        spec5.seed = 2;
        let set = LatticeSet::new(vec![spec3, spec5]).unwrap();
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let channels = [CreditChannel::new(64, codec.words_per_packet())];
        let mut record = vec![0u64; codec.words_per_packet()];
        for (lattice_id, rounds, seed) in [(0u32, 6u64, 1u64), (1, 4, 2)] {
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                NoiseSpec::PureDephasing { p: 0.1 },
                seed,
            )
            .unwrap();
            for round in 0..rounds {
                let packet = SyndromePacket::new(lattice_id, round, 0, &source.next_syndrome());
                codec.encode(&packet, &mut record);
                assert!(channels[0].try_send(&record));
            }
        }
        let counters = RuntimeCounters::with_topology(2, 1);
        let gate = QosGate::unbounded(2);
        let done = AtomicBool::new(true);
        let factory = greedy_factory();
        let obs = ObsPlane::new(ObsConfig::default());
        let (output, _) = run_worker(WorkerSeat {
            worker_id: 0,
            set: &set,
            codec: &codec,
            channels: &channels,
            gate: &gate,
            counters: &counters,
            done: &done,
            epoch: Instant::now(),
            factory: &factory,
            record_corrections: true,
            batch_size: 4,
            consume: ConsumePolicy::OwnThenSteal,
            obs: &obs,
        });
        assert_eq!(counters.snapshot().decoded, 10);
        assert_eq!(counters.per_lattice[0].snapshot().decoded, 6);
        assert_eq!(counters.per_lattice[1].snapshot().decoded, 4);
        assert_eq!(output.per_lattice[0].frame.recorded_cycles(), 6);
        assert_eq!(output.per_lattice[1].frame.recorded_cycles(), 4);
        assert_eq!(output.per_lattice[0].frame.len(), set.lattice(0).num_data());
        assert_eq!(output.per_lattice[1].frame.len(), set.lattice(1).num_data());
        assert_eq!(
            output
                .corrections
                .iter()
                .filter(|c| c.lattice_id == 1)
                .count(),
            4
        );
    }

    #[test]
    fn spread_router_matches_the_classic_placement() {
        let router = SpreadRouter;
        for lattice_id in 0..3u32 {
            for round in 0..8u64 {
                assert_eq!(
                    router.route(lattice_id, round, 3),
                    ((u64::from(lattice_id) + round) % 3) as usize
                );
            }
        }
    }

    #[test]
    fn class_router_pins_lattices_to_their_class_channel() {
        let router = ClassRouter {
            class_of: vec![0, 1, 1],
        };
        for round in 0..8u64 {
            assert_eq!(router.route(0, round, 2), 0);
            assert_eq!(router.route(1, round, 2), 1);
            assert_eq!(router.route(2, round, 2), 1);
        }
        // More classes than channels wrap around instead of panicking.
        assert_eq!(router.route(1, 0, 1), 0);
    }

    /// The full graph with default options reproduces the engine contract:
    /// every round decoded exactly once, all stage credit books balanced at
    /// quiescence.
    #[test]
    fn default_graph_decodes_every_round_and_balances_credits() {
        let mut config = MachineConfig::new(&[3, 3], 11);
        for spec in &mut config.lattices {
            spec.rounds = 100;
            spec.cadence_cycles = 0;
        }
        config.workers = 2;
        config.queue_capacity = 64;
        let set = LatticeSet::new(config.lattices.clone()).unwrap();
        let counters = RuntimeCounters::with_topology(set.len(), config.workers);
        let graph = PipelineGraph::new(&config, &set, PipelineOptions::default());
        assert_eq!(graph.channels(), 2);
        let factory = greedy_factory();
        let run = graph.run(&factory, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 200);
        assert_eq!(snap.decoded, 200);
        assert_eq!(snap.dropped, 0);
        assert_eq!(run.worker_outputs.len(), 2);
        assert!(!run.depth_timeline.is_empty());
        assert_eq!(run.lattice_shed, vec![Vec::<u64>::new(); 2]);
        // Stage reports: source, gate, skid, depth, 2 channels, 2 decode +
        // 2 sink stages.
        let names: Vec<&str> = run.stage_reports.iter().map(|r| r.stage.as_str()).collect();
        assert!(names.contains(&"source"));
        assert!(names.contains(&"gate"));
        assert!(names.contains(&"channel.1"));
        assert!(names.contains(&"decode.0"));
        assert!(names.contains(&"sink.1"));
        let channel_flow: u64 = run
            .stage_reports
            .iter()
            .filter(|r| r.stage.starts_with("channel."))
            .map(|r| r.emitted)
            .sum();
        assert_eq!(channel_flow, 200, "every round passed through a channel");
        for report in run
            .stage_reports
            .iter()
            .filter(|r| r.stage.starts_with("channel."))
        {
            assert_eq!(
                report.credits_consumed, report.credits_issued,
                "all channel credits are home at quiescence"
            );
        }
    }
}
