//! The decode stage: the prepared-decoder hot path of one worker.
//!
//! A [`DecodeStage`] owns everything a worker thread needs to turn a wire
//! record into a committed-ready correction without allocating in steady
//! state: one prepared decoder per distinct `(code distance, factory)` pair
//! (lattices of equal distance share layout — [`LatticeSet`] interns them —
//! so prepared sector graphs and scratch arenas are reused across lattices
//! served by the *same* factory), plus per-lattice reusable packet,
//! syndrome and Pauli buffers.  [`DecodeStage::decode`] routes a record to
//! its lattice's prepared state by the header's `lattice_id`, validates and
//! unpacks it, decodes both sectors through the allocation-free
//! [`Decoder::decode_into`] path, and composes the sector corrections into
//! one [`PauliString`] borrowed out as a [`DecodedRound`].
//!
//! The stage is purely computational — it owns no queue and no thread.  The
//! pipeline wiring (batch fill via a [`BatchMux`](crate::stage::BatchMux),
//! commit via a [`FrameSink`](crate::stage::FrameSink), budget-credit
//! return via [`QosGate::credit_decode`](crate::stage::QosGate::credit_decode))
//! lives in [`crate::stage::graph`].
//!
//! [`Decoder::decode_into`]: nisqplus_decoders::Decoder::decode_into

use crate::lattice_set::{LatticeDecoder, LatticeSet};
use crate::packet::{PacketCodec, PacketError, SyndromePacket};
use nisqplus_decoders::traits::{DecoderFactory, DynDecoder};
use nisqplus_qec::lattice::Sector;
use nisqplus_qec::logical::{classify_both_sectors_into, LogicalState};
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;

/// One decoded round, borrowed from the stage's reusable buffers: valid
/// until the next [`DecodeStage::decode`] call.
#[derive(Debug)]
pub struct DecodedRound<'a> {
    /// Id of the lattice the round belongs to.
    pub lattice_id: u32,
    /// The round index within that lattice's stream.
    pub round: u64,
    /// The producer's emission timestamp (nanoseconds since the run epoch).
    pub emitted_ns: u64,
    /// The composed X- and Z-sector correction for the round.
    pub correction: &'a PauliString,
    /// The per-sector residual states of the round, classified in stream
    /// against the error carried by the record — present exactly when the
    /// codec carries an error payload
    /// ([`PacketCodec::with_error_payload`]).
    pub residual: Option<(LogicalState, LogicalState)>,
}

/// One lattice's reusable decode state: the prepared-decoder slot plus the
/// buffers the hot loop writes into.
#[derive(Debug)]
struct LatticeDecodeState {
    /// Index into the stage's deduplicated decoder list.
    decoder_slot: usize,
    packet: SyndromePacket,
    syndrome: Syndrome,
    x_buf: PauliString,
    z_buf: PauliString,
    /// The record's carried error, unpacked here when the codec carries one.
    error_buf: PauliString,
    /// Scratch for the error∘correction composition during in-stream
    /// residual classification.
    residual_buf: PauliString,
}

/// The prepared-decoder decode stage of one worker thread.
pub struct DecodeStage<'a> {
    set: &'a LatticeSet,
    codec: &'a PacketCodec,
    decoders: Vec<DynDecoder>,
    /// Whether each decoder slot has been `prepare`d yet.  Preparation is
    /// lazy — it happens on the slot's first record — so a worker serving an
    /// elastic machine never pays for distances whose lattices stay dormant
    /// or whose records all land on other workers (hot-added lattices
    /// included).
    prepared: Vec<bool>,
    /// The name of the decoder serving each lattice, in lattice-id order.
    lattice_decoders: Vec<String>,
    states: Vec<LatticeDecodeState>,
    decoded: u64,
}

impl std::fmt::Debug for DecodeStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeStage")
            .field("lattice_decoders", &self.lattice_decoders)
            .field("decoded", &self.decoded)
            .finish_non_exhaustive()
    }
}

impl<'a> DecodeStage<'a> {
    /// Builds the stage for every lattice of `set`: one decoder per
    /// distinct `(code distance, factory)` pair — per-lattice
    /// [`LatticeSpec::decoder`](crate::lattice_set::LatticeSpec::decoder)
    /// overrides beside the machine-wide `factory`.  Decoders are built now
    /// but `prepare`d lazily, each on the first record that routes to its
    /// slot.
    #[must_use]
    pub fn new(set: &'a LatticeSet, codec: &'a PacketCodec, factory: &dyn DecoderFactory) -> Self {
        let mut decoders: Vec<DynDecoder> = Vec::new();
        let mut lattice_decoders: Vec<String> = Vec::with_capacity(set.len());
        // (distance, factory identity, slot); None = the machine-wide factory.
        let mut slot_of: Vec<(usize, Option<usize>, usize)> = Vec::new();
        let mut states: Vec<LatticeDecodeState> = Vec::with_capacity(set.len());
        for (_, spec, lattice) in set.iter() {
            let factory_key = spec.decoder.as_ref().map(LatticeDecoder::key);
            let decoder_slot = match slot_of
                .iter()
                .find(|(d, k, _)| *d == spec.distance && *k == factory_key)
            {
                Some(&(_, _, slot)) => slot,
                None => {
                    let decoder = match &spec.decoder {
                        Some(per_lattice) => per_lattice.build(),
                        None => factory.build(),
                    };
                    decoders.push(decoder);
                    slot_of.push((spec.distance, factory_key, decoders.len() - 1));
                    decoders.len() - 1
                }
            };
            lattice_decoders.push(decoders[decoder_slot].name().to_string());
            states.push(LatticeDecodeState {
                decoder_slot,
                packet: SyndromePacket::new(0, 0, 0, &Syndrome::new(lattice.num_ancillas())),
                syndrome: Syndrome::new(lattice.num_ancillas()),
                x_buf: PauliString::identity(lattice.num_data()),
                z_buf: PauliString::identity(lattice.num_data()),
                error_buf: PauliString::identity(lattice.num_data()),
                residual_buf: PauliString::identity(lattice.num_data()),
            });
        }
        DecodeStage {
            set,
            codec,
            prepared: vec![false; decoders.len()],
            decoders,
            lattice_decoders,
            states,
            decoded: 0,
        }
    }

    /// Decodes one wire record through the lattice's prepared hot path.
    /// The returned [`DecodedRound`] borrows the lattice's composed
    /// correction buffer.
    ///
    /// # Errors
    ///
    /// A record that fails validation — bad magic, wrong format version,
    /// out-of-range lattice id, mismatched length, or a checksum breach
    /// anywhere in the header or payload — returns the typed
    /// [`PacketError`] without touching any decoder state: the worker
    /// quarantines it instead of panicking the pool.
    pub fn decode(&mut self, record: &[u64]) -> Result<DecodedRound<'_>, PacketError> {
        // Full validation (header + checksum trailer) *before* indexing any
        // per-lattice state: a corrupted lattice-id field must not pick a
        // buffer, let alone panic on an out-of-range slot.
        let lattice_id = self.codec.verify(record)? as usize;
        let state = &mut self.states[lattice_id];
        let decoder = &mut self.decoders[state.decoder_slot];
        let lattice = self.set.lattice(lattice_id);
        if !self.prepared[state.decoder_slot] {
            // First record for this slot: prepare now.  Lattices of equal
            // distance are interned, so preparing against whichever lattice
            // arrives first covers every lattice the slot serves.
            decoder.prepare(lattice);
            self.prepared[state.decoder_slot] = true;
        }
        self.codec.try_decode_into(record, &mut state.packet)?;
        state.packet.syndrome.write_to_syndrome(&mut state.syndrome);
        decoder.decode_into(lattice, &state.syndrome, Sector::X, &mut state.x_buf);
        decoder.decode_into(lattice, &state.syndrome, Sector::Z, &mut state.z_buf);
        state.x_buf.compose_with(&state.z_buf);
        // In-stream residual classification: the record carries the seeded
        // error behind its syndrome, so the residual can be judged right
        // here, allocation-free, instead of by an end-of-run replay.
        let residual = if self.codec.carries_errors() {
            self.codec
                .decode_error_into(record, lattice_id as u32, &mut state.error_buf);
            Some(classify_both_sectors_into(
                lattice,
                &state.error_buf,
                &state.x_buf,
                &mut state.residual_buf,
            ))
        } else {
            None
        };
        self.decoded += 1;
        Ok(DecodedRound {
            lattice_id: state.packet.lattice_id,
            round: state.packet.round,
            emitted_ns: state.packet.emitted_ns,
            correction: &state.x_buf,
            residual,
        })
    }

    /// The name of the decoder serving each lattice, in lattice-id order.
    #[must_use]
    pub fn lattice_decoders(&self) -> &[String] {
        &self.lattice_decoders
    }

    /// Rounds decoded by this stage so far.
    #[must_use]
    pub fn decoded(&self) -> u64 {
        self.decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::LatticeSpec;
    use crate::source::{NoiseSpec, SyndromeSource};
    use nisqplus_decoders::GreedyMatchingDecoder;

    fn set_of(distances: &[usize]) -> LatticeSet {
        let specs: Vec<LatticeSpec> = distances
            .iter()
            .map(|&d| {
                let mut spec = LatticeSpec::new(d);
                spec.noise = NoiseSpec::PureDephasing { p: 0.05 };
                spec.rounds = 8;
                spec
            })
            .collect();
        LatticeSet::new(specs).unwrap()
    }

    fn factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    #[test]
    fn equal_distance_lattices_share_one_prepared_decoder() {
        let set = set_of(&[3, 5, 3]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let stage = DecodeStage::new(&set, &codec, &factory());
        // Two distinct distances → two prepared decoders for three lattices.
        assert_eq!(stage.decoders.len(), 2);
        assert_eq!(stage.states[0].decoder_slot, stage.states[2].decoder_slot);
        assert_ne!(stage.states[0].decoder_slot, stage.states[1].decoder_slot);
        assert_eq!(stage.lattice_decoders().len(), 3);
    }

    #[test]
    fn decoders_prepare_lazily_on_their_slots_first_record() {
        let set = set_of(&[3, 5]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let mut stage = DecodeStage::new(&set, &codec, &factory());
        assert!(
            stage.prepared.iter().all(|p| !p),
            "construction prepares nothing"
        );
        // Decode one record for lattice 1 only: its slot prepares, the
        // untouched d=3 slot stays cold — what makes hot-added distances
        // free for workers that never see their records.
        let spec = set.spec(1);
        let mut source =
            SyndromeSource::new(set.lattice(1).clone(), spec.noise, spec.seed).unwrap();
        let syndrome = source.next_syndrome();
        let packet = SyndromePacket::new(1, 0, 3, &syndrome);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        stage.decode(&record).expect("clean record decodes");
        assert!(stage.prepared[stage.states[1].decoder_slot]);
        assert!(!stage.prepared[stage.states[0].decoder_slot]);
    }

    #[test]
    fn decode_routes_by_header_and_matches_a_direct_decode() {
        let set = set_of(&[3, 5]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let mut stage = DecodeStage::new(&set, &codec, &factory());
        let mut record = vec![0u64; codec.words_per_packet()];
        for lattice_id in [1u32, 0, 1] {
            let spec = set.spec(lattice_id as usize);
            let mut source = SyndromeSource::new(
                set.lattice(lattice_id as usize).clone(),
                spec.noise,
                spec.seed,
            )
            .unwrap();
            let syndrome = source.next_syndrome();
            let packet = SyndromePacket::new(lattice_id, 0, 17, &syndrome);
            codec.encode(&packet, &mut record);
            let decoded = stage.decode(&record).expect("clean record decodes");
            assert_eq!(decoded.lattice_id, lattice_id);
            assert_eq!(decoded.round, 0);
            assert_eq!(decoded.emitted_ns, 17);
            // The borrowed correction is the composed X∘Z correction of a
            // freshly prepared decoder fed the same syndrome.
            let lattice = set.lattice(lattice_id as usize);
            let mut reference = factory().build();
            reference.prepare(lattice);
            let mut x = PauliString::identity(lattice.num_data());
            let mut z = PauliString::identity(lattice.num_data());
            reference.decode_into(lattice, &syndrome, Sector::X, &mut x);
            reference.decode_into(lattice, &syndrome, Sector::Z, &mut z);
            x.compose_with(&z);
            assert_eq!(*decoded.correction, x);
        }
        assert_eq!(stage.decoded(), 3);
    }

    #[test]
    fn error_carrying_records_are_classified_in_stream() {
        use nisqplus_qec::logical::classify_both_sectors;
        let set = set_of(&[3, 5]);
        let codec = PacketCodec::with_error_payload(&set.ancilla_bits(), &set.data_bits());
        let mut stage = DecodeStage::new(&set, &codec, &factory());
        let mut record = vec![0u64; codec.words_per_packet()];
        for lattice_id in [0u32, 1, 0, 1] {
            let spec = set.spec(lattice_id as usize);
            let lattice = set.lattice(lattice_id as usize);
            let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed).unwrap();
            let (error, syndrome) = source.next_error_and_syndrome();
            let packet = SyndromePacket::new(lattice_id, 0, 5, &syndrome);
            codec.encode_with_error(&packet, &error, &mut record);
            let decoded = stage.decode(&record).expect("clean record decodes");
            let expected = classify_both_sectors(lattice, &error, decoded.correction);
            assert_eq!(decoded.residual, Some(expected));
        }
        // An errorless codec leaves the classification off.
        let plain = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let mut plain_stage = DecodeStage::new(&set, &plain, &factory());
        let mut plain_record = vec![0u64; plain.words_per_packet()];
        let packet = SyndromePacket::new(0, 0, 5, &Syndrome::new(set.lattice(0).num_ancillas()));
        plain.encode(&packet, &mut plain_record);
        assert_eq!(plain_stage.decode(&plain_record).unwrap().residual, None);
    }

    #[test]
    fn corrupted_record_is_rejected_without_touching_state() {
        let set = set_of(&[3, 5]);
        let codec = PacketCodec::for_lattice_bits(&set.ancilla_bits());
        let mut stage = DecodeStage::new(&set, &codec, &factory());
        let spec = set.spec(0);
        let mut source =
            SyndromeSource::new(set.lattice(0).clone(), spec.noise, spec.seed).unwrap();
        let syndrome = source.next_syndrome();
        let packet = SyndromePacket::new(0, 0, 17, &syndrome);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        // A single bit flip anywhere — here in the lattice-id header word —
        // must surface as a typed error, not a panic or a misroute.
        record[0] ^= 1 << 7;
        assert!(stage.decode(&record).is_err());
        assert_eq!(stage.decoded(), 0, "a quarantined record decodes nothing");
        // The stage still decodes clean records afterwards.
        record[0] ^= 1 << 7;
        assert!(stage.decode(&record).is_ok());
        assert_eq!(stage.decoded(), 1);
    }
}
