//! Muxes: the arbiters that decide which input channel feeds a worker next.
//!
//! A hardware mux with an arbiter picks one of N valid inputs per grant; the
//! software analogue here fills a worker's decode batch from a slice of
//! [`CreditChannel`]s.  Three arbitration disciplines are provided:
//!
//! * [`StealMux`] — the engine's default: drain the worker's *home* channel
//!   first and steal a whole batch from the first busy neighbour only when
//!   home runs dry.  Maximizes locality (one lattice's rounds mostly decode
//!   on one worker's warm state) while guaranteeing a burst on one channel
//!   is drained by the whole pool.
//! * [`PriorityMux`] — fixed priority: always drain the lowest-indexed
//!   non-empty channel.  Lower-indexed channels preempt higher ones, which
//!   is how `examples/stage_pipeline.rs` keeps a Block-class lattice's
//!   latency flat while a Drop-class lattice sheds.
//! * [`RoundRobinMux`] — a rotating grant: each batch slot goes to the next
//!   non-empty channel after the previous grant, so asymmetric producers
//!   share a worker fairly.
//!
//! All three implement [`BatchMux`], the stage-facing trait; a mux never
//! copies a record twice — it pops straight into the caller's batch records.

use crate::stage::CreditChannel;

/// What one [`BatchMux::fill`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillResult {
    /// Records now resident in `batch[..filled]`.
    pub filled: usize,
    /// How many of them were taken from a non-home channel (always zero for
    /// muxes without a notion of home).
    pub stolen: u64,
}

/// An arbitration discipline filling a decode batch from input channels.
pub trait BatchMux {
    /// Pops up to `batch.len()` records from `channels` into `batch`,
    /// returning how many slots were filled and how many were stolen.
    /// Each `batch[i]` must be sized to the channels' record width.
    fn fill(&mut self, channels: &[CreditChannel], batch: &mut [Vec<u64>]) -> FillResult;
}

/// Home-first batch filling with whole-batch stealing, replicating the
/// engine's work-stealing loop: drain the home channel up to the batch
/// size; only if that yields *nothing*, scan neighbours in
/// `(home + offset) % n` order and take a whole batch from the first busy
/// one, counting every record taken there as stolen.
#[derive(Debug, Clone, Copy)]
pub struct StealMux {
    /// The channel this worker drains preferentially.
    home: usize,
}

impl StealMux {
    /// A steal mux anchored at `home` (the worker's own channel index).
    #[must_use]
    pub fn new(home: usize) -> Self {
        StealMux { home }
    }

    /// The home channel index.
    #[must_use]
    pub fn home(&self) -> usize {
        self.home
    }
}

impl BatchMux for StealMux {
    fn fill(&mut self, channels: &[CreditChannel], batch: &mut [Vec<u64>]) -> FillResult {
        let mut filled = 0usize;
        while filled < batch.len() && channels[self.home].try_recv(&mut batch[filled]) {
            filled += 1;
        }
        let mut stolen = 0u64;
        if filled == 0 && channels.len() > 1 {
            // Home dry: steal a batch from the first busy neighbour so a
            // burst of heavy rounds on one channel is drained by the pool.
            for offset in 1..channels.len() {
                let victim = (self.home + offset) % channels.len();
                while filled < batch.len() && channels[victim].try_recv(&mut batch[filled]) {
                    filled += 1;
                }
                if filled > 0 {
                    stolen = filled as u64;
                    break;
                }
            }
        }
        FillResult { filled, stolen }
    }
}

/// Fixed-priority arbitration: every grant goes to the lowest-indexed
/// non-empty channel, draining it batch by batch before a higher-indexed
/// channel is looked at again.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityMux;

impl PriorityMux {
    /// A fixed-priority mux (channel 0 highest).
    #[must_use]
    pub fn new() -> Self {
        PriorityMux
    }
}

impl BatchMux for PriorityMux {
    fn fill(&mut self, channels: &[CreditChannel], batch: &mut [Vec<u64>]) -> FillResult {
        let mut filled = 0usize;
        for channel in channels {
            while filled < batch.len() && channel.try_recv(&mut batch[filled]) {
                filled += 1;
            }
            if filled > 0 {
                break;
            }
        }
        FillResult { filled, stolen: 0 }
    }
}

/// A rotating grant: each batch slot is offered to channels starting just
/// past the channel that won the previous grant, so persistent traffic on
/// one channel cannot starve the others.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinMux {
    /// Channel index that gets first refusal on the next grant.
    cursor: usize,
}

impl RoundRobinMux {
    /// A round-robin mux starting its rotation at channel 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinMux { cursor: 0 }
    }
}

impl BatchMux for RoundRobinMux {
    fn fill(&mut self, channels: &[CreditChannel], batch: &mut [Vec<u64>]) -> FillResult {
        let mut filled = 0usize;
        'slots: while filled < batch.len() {
            for offset in 0..channels.len() {
                let candidate = (self.cursor + offset) % channels.len();
                if channels[candidate].try_recv(&mut batch[filled]) {
                    filled += 1;
                    self.cursor = (candidate + 1) % channels.len();
                    continue 'slots;
                }
            }
            break;
        }
        FillResult { filled, stolen: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel_with(records: &[u64]) -> CreditChannel {
        let channel = CreditChannel::new(records.len().max(1), 1);
        for &record in records {
            assert!(channel.try_send(&[record]));
        }
        channel
    }

    fn fill_all(
        mux: &mut impl BatchMux,
        channels: &[CreditChannel],
        batch_size: usize,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let mut batch: Vec<Vec<u64>> = (0..batch_size).map(|_| vec![0u64]).collect();
            let result = mux.fill(channels, &mut batch);
            if result.filled == 0 {
                return out;
            }
            out.extend(batch[..result.filled].iter().map(|r| r[0]));
        }
    }

    #[test]
    fn steal_mux_prefers_home_and_steals_whole_batches() {
        let channels = [channel_with(&[10, 11]), channel_with(&[20, 21, 22])];
        let mut mux = StealMux::new(0);
        let mut batch: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64]).collect();
        // Home has two records: the fill takes both and steals nothing even
        // though a neighbour is busy.
        let result = mux.fill(&channels, &mut batch);
        assert_eq!(
            result,
            FillResult {
                filled: 2,
                stolen: 0
            }
        );
        assert_eq!((batch[0][0], batch[1][0]), (10, 11));
        // Home dry: the whole next batch comes from the neighbour, counted
        // as stolen.
        let result = mux.fill(&channels, &mut batch);
        assert_eq!(
            result,
            FillResult {
                filled: 3,
                stolen: 3
            }
        );
        assert_eq!((batch[0][0], batch[1][0], batch[2][0]), (20, 21, 22));
        assert_eq!(mux.fill(&channels, &mut batch), FillResult::default());
    }

    #[test]
    fn steal_mux_scans_neighbours_in_ring_order() {
        let channels = [channel_with(&[]), channel_with(&[]), channel_with(&[30])];
        // Home 1 scans 2 before wrapping to 0.
        let mut mux = StealMux::new(1);
        let mut batch: Vec<Vec<u64>> = (0..2).map(|_| vec![0u64]).collect();
        let result = mux.fill(&channels, &mut batch);
        assert_eq!(
            result,
            FillResult {
                filled: 1,
                stolen: 1
            }
        );
        assert_eq!(batch[0][0], 30);
    }

    #[test]
    fn priority_mux_always_serves_the_lowest_busy_channel() {
        let channels = [channel_with(&[1, 2]), channel_with(&[100, 200])];
        let mut mux = PriorityMux::new();
        // Channel 0 preempts channel 1 until it is completely drained.
        assert_eq!(fill_all(&mut mux, &channels, 3), vec![1, 2, 100, 200]);
        // Refill channel 0 while channel 1 still had traffic in a longer
        // run: a fresh high-priority record wins the very next grant.
        assert!(channels[1].try_send(&[300]));
        assert!(channels[0].try_send(&[3]));
        let mut batch: Vec<Vec<u64>> = (0..2).map(|_| vec![0u64]).collect();
        let result = mux.fill(&channels, &mut batch);
        assert_eq!(result.filled, 1);
        assert_eq!(batch[0][0], 3);
    }

    /// Fairness under asymmetric load: one channel carries 9× the traffic
    /// of the other, yet the rotating grant interleaves them one-for-one
    /// until the light channel is exhausted — the heavy channel cannot
    /// starve it.
    #[test]
    fn round_robin_mux_is_fair_under_asymmetric_load() {
        let heavy: Vec<u64> = (100..109).collect();
        let light = [1, 2, 3];
        let channels = [channel_with(&heavy), channel_with(&light)];
        let mut mux = RoundRobinMux::new();
        let drained = fill_all(&mut mux, &channels, 4);
        assert_eq!(drained.len(), 12);
        // The light channel's three records all appear within the first six
        // grants (strict alternation while both are busy).
        let light_positions: Vec<usize> = drained
            .iter()
            .enumerate()
            .filter(|(_, v)| **v < 100)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(light_positions, vec![1, 3, 5]);
    }

    #[test]
    fn round_robin_mux_skips_empty_channels_without_stalling() {
        let channels = [channel_with(&[]), channel_with(&[7, 8])];
        let mut mux = RoundRobinMux::new();
        assert_eq!(fill_all(&mut mux, &channels, 2), vec![7, 8]);
    }
}
