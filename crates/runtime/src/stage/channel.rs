//! The credit-carrying channel between pipeline stages.
//!
//! A [`CreditChannel`] pairs the lock-free [`SpmcRing`] with a
//! [`CreditCounter`] granting exactly the ring's capacity: a send consumes
//! a credit *before* touching the ring, a receive returns the credit
//! *after* its slot is handed back.  A sender holding a credit is therefore
//! guaranteed a slot — at worst it waits out another consumer's in-flight
//! pop (pops complete out of order across workers, so the freed credit and
//! the freed slot can briefly belong to different positions).  Backpressure
//! surfaces exclusively as a failed credit acquisition — a counted,
//! observable stall at the seam — never as a lost record.
//!
//! Records are the same fixed-size `u64`-word packets the ring stores (the
//! typed view lives one layer up: [`PacketCodec`](crate::packet::PacketCodec)
//! encodes and validates, [`DecodeStage`](crate::stage::DecodeStage)
//! consumes).  Like the ring, a channel is multi-consumer-safe: any worker
//! may receive, which is what lets an idle worker steal from a busy
//! channel through [`StealMux`](crate::stage::StealMux).

use crate::obs::StageMetrics;
use crate::queue::SpmcRing;
use crate::stage::credit::CreditCounter;
use crate::stage::StageReport;

/// A bounded channel whose capacity is enforced by a credit loop.
///
/// ```rust
/// use nisqplus_runtime::stage::CreditChannel;
///
/// let channel = CreditChannel::new(2, 1);
/// assert!(channel.try_send(&[7]));
/// assert!(channel.try_send(&[8]));
/// assert!(!channel.try_send(&[9]), "credits exhausted");
/// let mut out = [0u64];
/// assert!(channel.try_recv(&mut out));
/// assert_eq!(out, [7]);
/// assert!(channel.try_send(&[9]), "the pop returned a credit");
/// ```
#[derive(Debug)]
pub struct CreditChannel {
    ring: SpmcRing,
    credits: CreditCounter,
    /// Occupancy peak (gauge), refused sends (`rejected`) and slot waits
    /// (`stall_cycles`) — live in the metrics registry when attached via
    /// [`CreditChannel::with_metrics`]; the flow and credit totals are
    /// mirrored in at report time from the authoritative credit loop.
    metrics: StageMetrics,
}

impl CreditChannel {
    /// A channel with `capacity` slots of `words_per_slot` words each, and
    /// `capacity` credits granted up front.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `words_per_slot` is zero.
    #[must_use]
    pub fn new(capacity: usize, words_per_slot: usize) -> Self {
        CreditChannel {
            ring: SpmcRing::new(capacity, words_per_slot),
            credits: CreditCounter::new(capacity as u64),
            metrics: StageMetrics::detached(),
        }
    }

    /// Attaches registry-backed stage metrics, so the channel's refusals,
    /// stalls and occupancy peak are observable by name mid-run.
    #[must_use]
    pub fn with_metrics(mut self, metrics: StageMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attempts to send one record.  Returns `false` — counting a refusal,
    /// enqueueing nothing — when no credit is available; the caller chooses
    /// between retrying (backpressure) and shedding.
    ///
    /// # Panics
    ///
    /// Panics if `record.len()` differs from [`CreditChannel::words_per_slot`].
    pub fn try_send(&self, record: &[u64]) -> bool {
        if !self.credits.try_acquire() {
            self.metrics.rejected.incr();
            return false;
        }
        // A held credit guarantees a slot, but the slot one lap back may
        // still be mid-handoff in another consumer (credits are fungible;
        // pops complete out of order).  That wait is bounded by a few word
        // copies, so spin it out rather than failing a credited send.
        while self.ring.try_push(record).is_err() {
            self.metrics.stall_cycles.incr();
            std::hint::spin_loop();
        }
        self.metrics.occupancy_peak.set_max(self.ring.len() as u64);
        true
    }

    /// Attempts to receive one record into `out`, returning the freed
    /// slot's credit to senders.  Returns `false` when the channel is
    /// empty.  Any consumer thread may call this concurrently; each record
    /// is delivered to exactly one consumer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`CreditChannel::words_per_slot`].
    pub fn try_recv(&self, out: &mut [u64]) -> bool {
        if !self.ring.try_pop(out) {
            return false;
        }
        self.credits.release();
        true
    }

    /// The channel's slot count (== its credit grant).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// The fixed record size, in `u64` words.
    #[must_use]
    pub fn words_per_slot(&self) -> usize {
        self.ring.words_per_slot()
    }

    /// A point-in-time occupancy estimate (see [`SpmcRing::len`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if the snapshot occupancy is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The channel's credit loop (for telemetry; the loop is driven by
    /// [`CreditChannel::try_send`]/[`CreditChannel::try_recv`]).
    #[must_use]
    pub fn credits(&self) -> &CreditCounter {
        &self.credits
    }

    /// This channel's [`StageReport`]: accepted = sends, emitted =
    /// receives, rejected = refused sends, plus the credit-loop totals and
    /// the occupancy high-water mark.  The credit loop is authoritative for
    /// the flow totals; reporting refreshes the registry's mirror of them.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        self.metrics.accepted.store(self.credits.consumed());
        self.metrics.emitted.store(self.credits.issued());
        self.metrics.credits_issued.store(self.credits.issued());
        self.metrics.credits_consumed.store(self.credits.consumed());
        self.metrics.report(stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_consumes_credit_and_recv_replenishes() {
        let channel = CreditChannel::new(2, 2);
        assert!(channel.try_send(&[1, 2]));
        assert!(channel.try_send(&[3, 4]));
        // Credit exhaustion, not ring-full, is the refusal signal.
        assert!(!channel.try_send(&[5, 6]));
        assert_eq!(channel.credits().available(), 0);
        let mut out = [0u64; 2];
        assert!(channel.try_recv(&mut out));
        assert_eq!(out, [1, 2]);
        assert_eq!(channel.credits().available(), 1);
        assert!(channel.try_send(&[5, 6]));
        assert!(channel.try_recv(&mut out));
        assert_eq!(out, [3, 4]);
        assert!(channel.try_recv(&mut out));
        assert_eq!(out, [5, 6]);
        assert!(!channel.try_recv(&mut out), "drained");
    }

    #[test]
    fn report_tracks_flow_refusals_and_occupancy() {
        let channel = CreditChannel::new(2, 1);
        let mut out = [0u64];
        assert!(channel.try_send(&[1]));
        assert!(channel.try_send(&[2]));
        assert!(!channel.try_send(&[3]));
        assert!(!channel.try_send(&[3]));
        assert!(channel.try_recv(&mut out));
        assert!(channel.try_send(&[3]));
        let report = channel.report("channel.0");
        assert_eq!(report.stage, "channel.0");
        assert_eq!(report.accepted, 3);
        assert_eq!(report.emitted, 1);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.credits_consumed, 3);
        assert_eq!(report.credits_issued, 1);
        assert_eq!(report.occupancy_peak, 2);
    }

    /// The credit loop keeps its books under concurrency: a producer and
    /// two consumers hammer one channel; afterwards every credit is home
    /// and consumed == issued.
    #[test]
    fn credit_books_balance_under_concurrency() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::thread;
        const RECORDS: u64 = 10_000;
        let channel = CreditChannel::new(8, 1);
        let received = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut out = [0u64];
                    while received.load(Ordering::Relaxed) < RECORDS {
                        if channel.try_recv(&mut out) {
                            received.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut sent = 0u64;
            while sent < RECORDS {
                if channel.try_send(&[sent]) {
                    sent += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(received.load(Ordering::Relaxed), RECORDS);
        assert_eq!(channel.credits().available(), 8);
        assert_eq!(channel.credits().consumed(), RECORDS);
        assert_eq!(channel.credits().issued(), RECORDS);
        assert!(channel.is_empty());
    }
}
