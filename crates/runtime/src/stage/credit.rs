//! Credit counters: the flow-control token of every stage seam.
//!
//! A [`CreditCounter`] models the credit loop of a latency-insensitive
//! hardware channel: the receiver grants the sender a fixed number of
//! credits up front (its buffer depth), the sender consumes one credit per
//! transfer, and the receiver returns the credit when the transfer leaves
//! its buffer.  The sender can therefore never overrun the receiver — the
//! credit counter *is* the backpressure, and exhaustion is observable as a
//! counted stall instead of a lost record.
//!
//! The runtime uses credit loops at two scopes:
//!
//! * **one seam** — a [`CreditChannel`](crate::stage::CreditChannel) grants
//!   exactly its ring capacity and returns each credit at pop time, so
//!   `available == free slots` is an invariant;
//! * **several stages** — a per-lattice queue budget
//!   ([`LatticeSpec::queue_budget`](crate::lattice_set::LatticeSpec::queue_budget))
//!   is a credit loop spanning the whole pipeline: the
//!   [`QosGate`](crate::stage::QosGate) consumes a credit at admission and
//!   the decode stage returns it only when the round's correction is
//!   committed, bounding the lattice's *outstanding* rounds end to end.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic credit counter: `initial` credits granted up front, consumed
/// with [`CreditCounter::try_acquire`] and returned with
/// [`CreditCounter::release`].  All operations are lock-free and safe to
/// share across threads by reference.
#[derive(Debug)]
pub struct CreditCounter {
    /// Credits currently available to the sender.
    available: AtomicU64,
    /// Total credits ever consumed (successful acquisitions).
    consumed: AtomicU64,
    /// Total credits ever returned (replenishments; the initial grant is
    /// not counted).
    issued: AtomicU64,
    /// The up-front grant.
    initial: u64,
}

impl CreditCounter {
    /// A counter with `initial` credits granted up front.
    #[must_use]
    pub fn new(initial: u64) -> Self {
        CreditCounter {
            available: AtomicU64::new(initial),
            consumed: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            initial,
        }
    }

    /// Consumes one credit.  Returns `false` (and consumes nothing) when no
    /// credit is available — the caller's cue to stall, shed, or retry.
    pub fn try_acquire(&self) -> bool {
        let acquired = self
            .available
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok();
        if acquired {
            self.consumed.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }

    /// Returns one credit to the pool.
    ///
    /// The caller is responsible for releasing only credits it acquired:
    /// the counter itself does not bound `available` above
    /// [`CreditCounter::initial`].
    pub fn release(&self) {
        self.available.fetch_add(1, Ordering::AcqRel);
        self.issued.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits currently available.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.available.load(Ordering::Acquire)
    }

    /// Total credits consumed so far (successful [`CreditCounter::try_acquire`]s).
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Total credits returned so far ([`CreditCounter::release`] calls; the
    /// initial grant is not counted).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// The up-front grant.
    #[must_use]
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// Credits currently held by senders: consumed but not yet returned.
    /// For a channel-scoped loop this is the channel occupancy; for a
    /// budget-scoped loop it is the lattice's outstanding rounds.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.consumed()
            .saturating_sub(self.issued())
            .min(self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_exhaust_and_replenish() {
        let credits = CreditCounter::new(2);
        assert_eq!(credits.available(), 2);
        assert!(credits.try_acquire());
        assert!(credits.try_acquire());
        // Exhausted: further acquisitions fail without consuming anything.
        assert!(!credits.try_acquire());
        assert!(!credits.try_acquire());
        assert_eq!(credits.available(), 0);
        assert_eq!(credits.consumed(), 2);
        assert_eq!(credits.in_flight(), 2);
        // One release replenishes exactly one acquisition.
        credits.release();
        assert_eq!(credits.available(), 1);
        assert!(credits.try_acquire());
        assert!(!credits.try_acquire());
        assert_eq!(credits.consumed(), 3);
        assert_eq!(credits.issued(), 1);
    }

    #[test]
    fn zero_credit_counter_always_stalls() {
        let credits = CreditCounter::new(0);
        assert!(!credits.try_acquire());
        credits.release();
        assert!(credits.try_acquire());
        assert!(!credits.try_acquire());
    }

    #[test]
    fn concurrent_acquire_never_oversubscribes() {
        use std::sync::atomic::AtomicU64;
        use std::thread;
        let credits = CreditCounter::new(64);
        let granted = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if credits.try_acquire() {
                            granted.fetch_add(1, Ordering::Relaxed);
                            credits.release();
                        }
                    }
                });
            }
        });
        // Every successful acquisition was matched by a release, so the
        // full grant is available again and the books balance.
        assert_eq!(credits.available(), 64);
        assert_eq!(credits.consumed(), granted.load(Ordering::Relaxed));
        assert_eq!(credits.issued(), credits.consumed());
        assert_eq!(credits.in_flight(), 0);
    }
}
