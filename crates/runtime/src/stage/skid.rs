//! The skid buffer: absorbing a stalled handshake without losing a beat.
//!
//! In a latency-insensitive hardware pipeline, a skid buffer sits between a
//! producer's *valid* and a consumer's *ready*: when the consumer deasserts
//! ready mid-transfer, the in-flight item "skids" into the buffer instead
//! of being dropped or forcing the producer to re-present it.  The software
//! analogue here is exactly that: a [`SkidBuffer`] owns one or two slots,
//! accepts an item while downstream is stalled, and drains into the
//! downstream seam when it becomes ready again — item storage is recycled,
//! so steady-state operation allocates nothing.
//!
//! The pipeline's source uses a skid at its send seam: a record whose
//! target [`CreditChannel`](crate::stage::CreditChannel) is out of credits
//! rests in the skid while the source spins (each failed drain is one
//! counted stall cycle), which is what makes the `Block` push policy
//! lossless by construction — the record exists in exactly one place at
//! every instant of the stall.

use crate::obs::StageMetrics;
use crate::stage::StageReport;
use std::collections::VecDeque;

/// A small FIFO decoupling buffer with recycled slot storage.
///
/// ```rust
/// use nisqplus_runtime::stage::SkidBuffer;
///
/// let mut skid: SkidBuffer<u64> = SkidBuffer::new(2);
/// assert!(skid.try_accept(7).is_ok());
/// assert!(skid.try_accept(8).is_ok());
/// assert_eq!(skid.try_accept(9), Err(9), "full: the item comes back");
/// // Downstream ready for one item only:
/// let mut taken = Vec::new();
/// skid.drain_with(|item| {
///     if taken.is_empty() {
///         taken.push(*item);
///         true
///     } else {
///         false // downstream stalled again
///     }
/// });
/// assert_eq!(taken, vec![7]);
/// assert_eq!(skid.len(), 1);
/// ```
#[derive(Debug)]
pub struct SkidBuffer<T> {
    /// Occupied slots, front = oldest.
    ready: VecDeque<T>,
    /// Recycled storage for future accepts.
    spare: Vec<T>,
    capacity: usize,
    accepted: u64,
    drained: u64,
    rejected: u64,
    stalls: u64,
    occupancy_peak: usize,
    /// Registry mirror of the plain books above, refreshed at report time
    /// when attached via [`SkidBuffer::with_metrics`].  The skid is
    /// single-owner (`&mut` on every hot-path call), so its authoritative
    /// counters stay plain integers — no atomics per round.
    metrics: StageMetrics,
}

impl<T> SkidBuffer<T> {
    /// A skid buffer holding at most `capacity` items (hardware skids are
    /// one or two entries deep; anything larger is a queue, not a skid).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a skid buffer needs at least one slot");
        SkidBuffer {
            ready: VecDeque::with_capacity(capacity),
            spare: Vec::with_capacity(capacity),
            capacity,
            accepted: 0,
            drained: 0,
            rejected: 0,
            stalls: 0,
            occupancy_peak: 0,
            metrics: StageMetrics::detached(),
        }
    }

    /// Attaches registry-backed stage metrics: the skid's plain books are
    /// mirrored into the registry by name whenever a report is taken.
    #[must_use]
    pub fn with_metrics(mut self, metrics: StageMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Accepts `item`, or returns it to the caller when the skid is full
    /// (the upstream stage must stall — nothing is dropped).
    pub fn try_accept(&mut self, item: T) -> Result<(), T> {
        if self.ready.len() == self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.ready.push_back(item);
        self.accepted += 1;
        self.occupancy_peak = self.occupancy_peak.max(self.ready.len());
        Ok(())
    }

    /// Accepts an item built in place, reusing a recycled slot when one is
    /// available (no allocation in steady state).  Returns `false` — and
    /// builds nothing — when the skid is full.
    pub fn accept_with(&mut self, fill: impl FnOnce(&mut T)) -> bool
    where
        T: Default,
    {
        if self.ready.len() == self.capacity {
            self.rejected += 1;
            return false;
        }
        let mut slot = self.spare.pop().unwrap_or_default();
        fill(&mut slot);
        self.ready.push_back(slot);
        self.accepted += 1;
        self.occupancy_peak = self.occupancy_peak.max(self.ready.len());
        true
    }

    /// Offers items to `sink` in FIFO order until it refuses one or the
    /// skid empties; returns how many it took.  A refusal counts one stall
    /// cycle and leaves the refused item (and everything behind it) in
    /// place, in order.
    pub fn drain_with(&mut self, mut sink: impl FnMut(&T) -> bool) -> usize {
        let mut taken = 0;
        while let Some(front) = self.ready.front() {
            if sink(front) {
                let slot = self.ready.pop_front().expect("front observed above");
                self.spare.push(slot);
                self.drained += 1;
                taken += 1;
            } else {
                self.stalls += 1;
                break;
            }
        }
        taken
    }

    /// Discards the oldest resident item without delivering it (a counted
    /// shed: the explicit lossy path for `Drop`-policy seams — nothing is
    /// ever lost implicitly).  Returns `false` when the skid is empty.
    pub fn discard_front(&mut self) -> bool {
        match self.ready.pop_front() {
            Some(slot) => {
                self.spare.push(slot);
                self.rejected += 1;
                true
            }
            None => false,
        }
    }

    /// Items currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// Returns `true` when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// The slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// This skid's [`StageReport`]: accepted/emitted flow, refused accepts
    /// plus explicit discards under `rejected`, downstream stalls, and the
    /// occupancy high-water mark.  The skid's own plain books are
    /// authoritative; reporting refreshes the registry's mirror of them.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        let report = StageReport {
            stage: stage.into(),
            accepted: self.accepted,
            emitted: self.drained,
            rejected: self.rejected,
            credits_issued: 0,
            credits_consumed: 0,
            occupancy_peak: self.occupancy_peak as u64,
            stall_cycles: self.stalls,
        };
        self.metrics.sync_from(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nothing in, nothing lost: every accepted item comes out exactly
    /// once, in order, under an adversarial on/off stall pattern.
    #[test]
    fn no_loss_no_reorder_under_stall() {
        let mut skid: SkidBuffer<u64> = SkidBuffer::new(2);
        let mut next_in = 0u64;
        let mut out = Vec::new();
        // Downstream readiness flips on a pattern unrelated to arrivals.
        for step in 0..1000 {
            if skid.try_accept(next_in).is_ok() {
                next_in += 1;
            }
            let ready = step % 3 != 0;
            if ready {
                skid.drain_with(|item| {
                    out.push(*item);
                    true
                });
            } else {
                // Stalled: a drain attempt takes nothing and loses nothing.
                let before = skid.len();
                skid.drain_with(|_| false);
                assert_eq!(skid.len(), before);
            }
        }
        skid.drain_with(|item| {
            out.push(*item);
            true
        });
        assert_eq!(out, (0..next_in).collect::<Vec<u64>>());
        assert!(skid.is_empty());
    }

    #[test]
    fn full_skid_returns_the_item_instead_of_dropping() {
        let mut skid: SkidBuffer<&str> = SkidBuffer::new(1);
        assert!(skid.try_accept("a").is_ok());
        assert_eq!(skid.try_accept("b"), Err("b"));
        let report = skid.report("skid");
        assert_eq!(report.accepted, 1);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.occupancy_peak, 1);
    }

    /// `accept_with` recycles drained slots: after warm-up, accepting
    /// through a full drain cycle reuses the same storage.
    #[test]
    fn accept_with_recycles_storage() {
        let mut skid: SkidBuffer<Vec<u64>> = SkidBuffer::new(2);
        assert!(skid.accept_with(|slot| {
            slot.clear();
            slot.extend_from_slice(&[1, 2, 3]);
        }));
        let mut seen = Vec::new();
        skid.drain_with(|item| {
            seen.push(item.clone());
            true
        });
        assert_eq!(seen, vec![vec![1, 2, 3]]);
        // The drained Vec went to the spare pool; the next accept must not
        // grow a fresh allocation but reuse its capacity.
        assert!(skid.accept_with(|slot| {
            assert!(slot.capacity() >= 3, "recycled slot keeps its storage");
            slot.clear();
            slot.extend_from_slice(&[4, 5]);
        }));
        seen.clear();
        skid.drain_with(|item| {
            seen.push(item.clone());
            true
        });
        assert_eq!(seen, vec![vec![4, 5]]);
    }

    #[test]
    fn stall_cycles_are_counted_per_refused_drain() {
        let mut skid: SkidBuffer<u64> = SkidBuffer::new(2);
        skid.try_accept(1).unwrap();
        for _ in 0..5 {
            assert_eq!(skid.drain_with(|_| false), 0);
        }
        assert_eq!(skid.report("skid").stall_cycles, 5);
        assert_eq!(skid.drain_with(|_| true), 1);
        assert_eq!(skid.report("skid").emitted, 1);
    }

    #[test]
    fn discard_front_is_an_explicit_counted_shed() {
        let mut skid: SkidBuffer<u64> = SkidBuffer::new(2);
        skid.try_accept(1).unwrap();
        skid.try_accept(2).unwrap();
        assert!(skid.discard_front());
        // The survivor is still deliverable, in order.
        let mut out = Vec::new();
        skid.drain_with(|item| {
            out.push(*item);
            true
        });
        assert_eq!(out, vec![2]);
        assert!(!skid.discard_front(), "empty skid has nothing to shed");
        let report = skid.report("skid");
        assert_eq!(report.rejected, 1);
        assert_eq!(report.emitted, 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _: SkidBuffer<u64> = SkidBuffer::new(0);
    }
}
