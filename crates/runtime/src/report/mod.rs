//! Machine-readable run artifacts.
//!
//! [`json`] is a dependency-free JSON value type with an exact-round-trip
//! writer and parser; [`export`] layers the schema-versioned
//! [`RuntimeReport`](crate::telemetry::RuntimeReport) and bench-suite
//! document formats on top of it.

pub mod export;
pub mod json;

pub use export::{
    bench_document, bench_document_entries, read_bench_document, read_report, report_from_json,
    report_from_str, report_to_json, report_to_string, write_bench_document, write_report,
    BenchEntry, ExportError, SCHEMA_VERSION,
};
pub use json::{parse, Json, JsonError};
