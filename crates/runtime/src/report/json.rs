//! A minimal JSON document model with an exact-round-trip writer/parser.
//!
//! The workspace's `serde` is an offline no-op shim (see `vendor/serde`),
//! so the export layer carries its own JSON: a [`Json`] tree, a pretty
//! writer, and a recursive-descent parser.  Two properties matter more
//! than generality:
//!
//! * **Exact numeric round-trip.**  Finite `f64`s are written with Rust's
//!   shortest-round-trip formatting (`{:?}`), so `parse(write(x)) == x`
//!   bit-for-bit; integers below 2^53 are written without a fraction.
//!   Non-finite values serialize as `null` (JSON has no NaN/Inf) and parse
//!   back as [`Json::Null`].
//! * **Stable, diffable output.**  Objects preserve insertion order and
//!   the writer indents deterministically, so exported artifacts diff
//!   cleanly across commits.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are not rejected;
    /// lookup returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (exactly).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", n as i64).expect("string write");
    } else {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same f64 — the round-trip guarantee.
        write!(out, "{n:?}").expect("string write");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_floats_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.5,
            1.0 / 3.0,
            6.626_070_15e-34,
            1.797_693_134_862_315_7e308,
            4_503_599_627_370_497.0, // 2^52 + 1: integer-exact boundary zone
        ] {
            let doc = Json::Num(x).to_pretty();
            let back = parse(&doc).unwrap().as_f64().unwrap();
            assert!(
                back == x || (back == 0.0 && x == 0.0),
                "{x} round-tripped to {back} via {doc}"
            );
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty().trim(), "null");
    }

    #[test]
    fn integers_are_written_without_a_fraction() {
        assert_eq!(Json::from(42u64).to_pretty().trim(), "42");
        assert_eq!(Json::Num(-7.0).to_pretty().trim(), "-7");
    }

    #[test]
    fn nested_documents_round_trip_structurally() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::from("engine \"x\"\nline2")),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "values".into(),
                Json::Arr(vec![Json::from(1u64), Json::from(2.5), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes_and_raw_unicode_parse() {
        assert_eq!(
            parse("\"a\\u00e9b\"").unwrap(),
            Json::Str("a\u{e9}b".to_string())
        );
        assert_eq!(parse(r#""aéb""#).unwrap(), Json::Str("aéb".to_string()));
    }

    #[test]
    fn malformed_input_reports_an_offset() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
