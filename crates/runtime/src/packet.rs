//! Bit-packed syndrome packets and their wire codec.
//!
//! A [`SyndromePacket`] is what travels through the [ring
//! buffer](crate::queue::SpmcRing): the round index, the emission timestamp
//! (virtual nanoseconds since the engine epoch, used for end-to-end latency),
//! and the [`PackedSyndrome`] itself.  The [`PacketCodec`] flattens a packet
//! into the fixed `u64`-word records the ring stores — two header words plus
//! `ceil(bits / 64)` syndrome words — and restores it on the consumer side.

use nisqplus_qec::syndrome::{PackedSyndrome, Syndrome};

/// One round of syndrome data in flight between generation and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromePacket {
    /// Zero-based index of the syndrome-generation round.
    pub round: u64,
    /// Nanoseconds since the engine epoch at which the round was generated.
    pub emitted_ns: u64,
    /// The bit-packed syndrome of the round.
    pub syndrome: PackedSyndrome,
}

impl SyndromePacket {
    /// Packs an unpacked syndrome into a packet.
    #[must_use]
    pub fn new(round: u64, emitted_ns: u64, syndrome: &Syndrome) -> Self {
        SyndromePacket {
            round,
            emitted_ns,
            syndrome: PackedSyndrome::from_syndrome(syndrome),
        }
    }
}

/// Encoder/decoder between [`SyndromePacket`]s and fixed-size word records.
///
/// The codec is parameterized by the syndrome bit length (the number of
/// ancillas of the lattice being streamed), which fixes the record size for
/// the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCodec {
    syndrome_bits: usize,
}

/// Number of header words preceding the syndrome payload (round, emitted_ns).
const HEADER_WORDS: usize = 2;

impl PacketCodec {
    /// Creates a codec for syndromes of `syndrome_bits` ancilla bits.
    #[must_use]
    pub fn new(syndrome_bits: usize) -> Self {
        PacketCodec { syndrome_bits }
    }

    /// The syndrome bit length this codec carries.
    #[must_use]
    pub fn syndrome_bits(&self) -> usize {
        self.syndrome_bits
    }

    /// The fixed record size in `u64` words.
    #[must_use]
    pub fn words_per_packet(&self) -> usize {
        HEADER_WORDS + PackedSyndrome::words_for(self.syndrome_bits)
    }

    /// Flattens a packet into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`PacketCodec::words_per_packet`] words
    /// long or if the packet's syndrome length does not match the codec.
    pub fn encode(&self, packet: &SyndromePacket, out: &mut [u64]) {
        assert_eq!(out.len(), self.words_per_packet(), "record size mismatch");
        assert_eq!(
            packet.syndrome.len(),
            self.syndrome_bits,
            "packet carries a {}-bit syndrome, codec expects {}",
            packet.syndrome.len(),
            self.syndrome_bits
        );
        out[0] = packet.round;
        out[1] = packet.emitted_ns;
        out[HEADER_WORDS..].copy_from_slice(packet.syndrome.words());
    }

    /// Restores a packet from a record.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long.
    #[must_use]
    pub fn decode(&self, words: &[u64]) -> SyndromePacket {
        assert_eq!(words.len(), self.words_per_packet(), "record size mismatch");
        SyndromePacket {
            round: words[0],
            emitted_ns: words[1],
            syndrome: PackedSyndrome::from_words(
                self.syndrome_bits,
                words[HEADER_WORDS..].to_vec(),
            ),
        }
    }

    /// Restores a packet into an existing buffer without allocating — the
    /// steady-state counterpart of [`PacketCodec::decode`] used by the worker
    /// hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long, or if `packet`'s syndrome length does not match the codec.
    pub fn decode_into(&self, words: &[u64], packet: &mut SyndromePacket) {
        assert_eq!(words.len(), self.words_per_packet(), "record size mismatch");
        assert_eq!(
            packet.syndrome.len(),
            self.syndrome_bits,
            "packet buffer carries a {}-bit syndrome, codec expects {}",
            packet.syndrome.len(),
            self.syndrome_bits
        );
        packet.round = words[0];
        packet.emitted_ns = words[1];
        packet.syndrome.copy_from_words(&words[HEADER_WORDS..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_round_trip_through_words() {
        let codec = PacketCodec::new(40);
        let syndrome = Syndrome::from_hot(40, &[0, 7, 39]);
        let packet = SyndromePacket::new(123, 456_789, &syndrome);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        let restored = codec.decode(&record);
        assert_eq!(restored, packet);
        assert_eq!(restored.syndrome.to_syndrome(), syndrome);
    }

    #[test]
    fn decode_into_reuses_the_buffer() {
        let codec = PacketCodec::new(40);
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut buffer = SyndromePacket::new(0, 0, &Syndrome::new(40));
        for round in 0..5u64 {
            let syndrome = Syndrome::from_hot(40, &[(round as usize) % 40, 17]);
            let packet = SyndromePacket::new(round, round * 100, &syndrome);
            codec.encode(&packet, &mut record);
            codec.decode_into(&record, &mut buffer);
            assert_eq!(buffer, packet);
        }
    }

    #[test]
    #[should_panic(expected = "codec expects")]
    fn decode_into_rejects_mismatched_buffer() {
        let codec = PacketCodec::new(40);
        let record = vec![0u64; codec.words_per_packet()];
        let mut buffer = SyndromePacket::new(0, 0, &Syndrome::new(24));
        codec.decode_into(&record, &mut buffer);
    }

    #[test]
    fn record_sizes_scale_with_bits() {
        assert_eq!(PacketCodec::new(40).words_per_packet(), 3); // d=5: 40 ancillas
        assert_eq!(PacketCodec::new(144).words_per_packet(), 5); // d=9
        assert_eq!(PacketCodec::new(64).words_per_packet(), 3);
        assert_eq!(PacketCodec::new(65).words_per_packet(), 4);
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn encode_rejects_short_records() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 0, &Syndrome::new(40));
        let mut record = vec![0u64; 2];
        codec.encode(&packet, &mut record);
    }

    #[test]
    #[should_panic(expected = "codec expects")]
    fn encode_rejects_mismatched_syndrome_length() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 0, &Syndrome::new(24));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
    }

    #[test]
    fn empty_syndromes_still_carry_headers() {
        let codec = PacketCodec::new(0);
        assert_eq!(codec.words_per_packet(), 2);
        let packet = SyndromePacket::new(9, 17, &Syndrome::new(0));
        let mut record = vec![0u64; 2];
        codec.encode(&packet, &mut record);
        assert_eq!(codec.decode(&record), packet);
    }
}
