//! Bit-packed syndrome packets and their wire codec.
//!
//! A [`SyndromePacket`] is what travels through the [ring
//! buffer](crate::queue::SpmcRing): the id of the lattice the round belongs
//! to, the round index, the emission timestamp (virtual nanoseconds since the
//! engine epoch, used for end-to-end latency), and the [`PackedSyndrome`]
//! itself.  The [`PacketCodec`] flattens a packet into the fixed `u64`-word
//! records the ring stores — three header words plus `ceil(bits / 64)`
//! syndrome words, sized for the *largest* lattice of the set so every
//! lattice's rounds fit the same slots — and restores it on the consumer
//! side.
//!
//! The header carries a format version and the packet's own syndrome bit
//! length next to the `lattice_id`, so the decoding side can verify that the
//! packet was encoded for the lattice registered under that id: a mismatched
//! record would otherwise silently misdecode into a wrong-width syndrome.
//!
//! Since format version 3 every record additionally ends in a trailer word
//! holding a 64-bit mix checksum of all preceding words.  The header checks
//! only cover the fields they name — a bit flip in the round index, the
//! timestamp or the payload is invisible to them — so the checksum is what
//! turns *any* in-flight corruption into a typed [`PacketError::Corrupted`]
//! instead of a silently wrong decode.
//!
//! Format version 4 adds an *opt-in* error payload: a codec built with
//! [`PacketCodec::with_error_payload`] appends the round's seeded physical
//! error — a [`PauliString`] packed as two bitplanes (X components, then Z
//! components), sized for the largest lattice's data-qubit count — between
//! the syndrome payload and the checksum trailer.  This is what lets workers
//! classify residuals *in stream* instead of replaying every round at the end
//! of a run.  Whether records carry errors is fixed at codec construction for
//! the whole run (both sides are built from the same
//! [`LatticeSet`](crate::lattice_set::LatticeSet)); the checksum covers the
//! extra words automatically.
//!
//! The codec also carries the *retirement watermarks* of elastic runs:
//! [`PacketCodec::retire_lattice`] marks a lattice id as retired after its
//! final round, shared across codec clones, and [`PacketCodec::verify`]
//! quarantines later rounds as [`PacketError::RetiredLattice`] while letting
//! the in-flight backlog drain.  Watermarks are codec state, not wire
//! layout, so the format version is unchanged.

use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::{PackedSyndrome, Syndrome};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One round of syndrome data in flight between generation and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromePacket {
    /// Id of the lattice (logical qubit) the round belongs to — an index
    /// into the engine's [`LatticeSet`](crate::lattice_set::LatticeSet).
    /// Single-lattice runs use id `0`.
    pub lattice_id: u32,
    /// Zero-based index of the syndrome-generation round *of that lattice*.
    pub round: u64,
    /// Nanoseconds since the engine epoch at which the round was generated.
    pub emitted_ns: u64,
    /// The bit-packed syndrome of the round.
    pub syndrome: PackedSyndrome,
}

impl SyndromePacket {
    /// Packs an unpacked syndrome into a packet.
    #[must_use]
    pub fn new(lattice_id: u32, round: u64, emitted_ns: u64, syndrome: &Syndrome) -> Self {
        SyndromePacket {
            lattice_id,
            round,
            emitted_ns,
            syndrome: PackedSyndrome::from_syndrome(syndrome),
        }
    }
}

/// Why a record was rejected by [`PacketCodec::try_decode_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// The record was encoded by an incompatible codec version.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this codec speaks ([`PacketCodec::VERSION`]).
        expected: u16,
    },
    /// The header names a lattice id the codec has no registration for.
    UnknownLattice {
        /// The out-of-range lattice id.
        lattice_id: u32,
    },
    /// The header's ancilla count disagrees with the lattice registered
    /// under its `lattice_id` — the record was encoded for a different
    /// lattice shape and would misdecode.
    AncillaMismatch {
        /// The lattice id named by the header.
        lattice_id: u32,
        /// Ancilla count carried in the header.
        header_bits: u32,
        /// Ancilla count of the registered lattice.
        registered_bits: u32,
    },
    /// The record's trailer checksum does not match its contents: the record
    /// was corrupted in flight (the header fields alone may still look
    /// plausible, so this is the check that catches payload, round and
    /// timestamp damage).
    Corrupted {
        /// The checksum recomputed from the record's contents.
        expected: u64,
        /// The checksum found in the trailer word.
        found: u64,
    },
    /// The record claims a round at or past its lattice's retirement
    /// watermark ([`PacketCodec::retire_lattice`]): the lattice was retired
    /// after emitting `final_round` rounds, so a straggler or forged record
    /// for a later round is quarantined while in-flight earlier rounds still
    /// drain to the final frame.
    RetiredLattice {
        /// The lattice id named by the header.
        lattice_id: u32,
        /// The round the record claims.
        round: u64,
        /// Rounds the lattice emitted before retiring (the watermark).
        final_round: u64,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PacketError::VersionMismatch { found, expected } => {
                write!(f, "packet version {found} but codec expects {expected}")
            }
            PacketError::UnknownLattice { lattice_id } => {
                write!(f, "packet names unregistered lattice {lattice_id}")
            }
            PacketError::AncillaMismatch {
                lattice_id,
                header_bits,
                registered_bits,
            } => write!(
                f,
                "packet for lattice {lattice_id} carries {header_bits} ancilla bits, but the \
                 registered lattice has {registered_bits}"
            ),
            PacketError::Corrupted { expected, found } => write!(
                f,
                "packet record corrupted in flight: checksum {found:#018x} does not match \
                 contents ({expected:#018x})"
            ),
            PacketError::RetiredLattice {
                lattice_id,
                round,
                final_round,
            } => write!(
                f,
                "packet claims round {round} of lattice {lattice_id}, which retired after \
                 {final_round} rounds"
            ),
        }
    }
}

impl std::error::Error for PacketError {}

/// Encoder/decoder between [`SyndromePacket`]s and fixed-size word records.
///
/// The codec is parameterized by the syndrome bit length (ancilla count) of
/// every registered lattice, which fixes the record size — three header
/// words plus enough payload words for the *largest* lattice — for the whole
/// run.  Smaller lattices' records are zero-padded; the header's bit-length
/// field says how much payload is live.
#[derive(Debug, Clone)]
pub struct PacketCodec {
    /// Ancilla count per lattice id.
    lattice_bits: Vec<u32>,
    /// Payload words needed by the largest lattice.
    max_syndrome_words: usize,
    /// Data-qubit count per lattice id when records carry the round's seeded
    /// error as a packed Pauli payload; empty for errorless codecs.
    lattice_data: Vec<u32>,
    /// Error-payload words (two bitplanes sized for the largest lattice's
    /// data-qubit count); `0` for errorless codecs.
    error_words: usize,
    /// Per-lattice retirement watermark: records claiming round `>=` the
    /// watermark are quarantined ([`PacketError::RetiredLattice`]);
    /// `u64::MAX` means not retired.  Shared across clones, so retiring on
    /// the producer's codec is immediately visible to every worker's.
    retired: Arc<Vec<AtomicU64>>,
}

impl PartialEq for PacketCodec {
    fn eq(&self, other: &Self) -> bool {
        self.lattice_bits == other.lattice_bits
            && self.max_syndrome_words == other.max_syndrome_words
            && self.lattice_data == other.lattice_data
            && self.error_words == other.error_words
            && self.retired.len() == other.retired.len()
            && self
                .retired
                .iter()
                .zip(other.retired.iter())
                .all(|(a, b)| a.load(Ordering::Acquire) == b.load(Ordering::Acquire))
    }
}

impl Eq for PacketCodec {}

/// Number of header words preceding the syndrome payload
/// (version/lattice/bits, round, emitted_ns).
const HEADER_WORDS: usize = 3;

/// Number of trailer words following the syndrome payload (the integrity
/// checksum).
const TRAILER_WORDS: usize = 1;

/// The record integrity checksum: a 64-bit multiply-xor-shift mix folded over
/// every word preceding the trailer.  A flip of any single bit anywhere in
/// the record avalanches through the multiply, so header *and* payload
/// corruption is detected; colliding by accident requires matching a full
/// 64-bit digest.
#[must_use]
fn record_checksum(words: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &word in words {
        acc = (acc ^ word).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        acc ^= acc >> 31;
    }
    acc
}

impl PacketCodec {
    /// The wire-format version stamped into (and checked against) every
    /// record's header.  Version 1 was the PR-2 single-lattice format with a
    /// two-word header; version 2 added the lattice-id/ancilla header fields;
    /// version 3 appends the integrity-checksum trailer word, so a v2
    /// receiver cannot mistake a v3 record for its own format (and vice
    /// versa: the version field is checked before anything else); version 4
    /// introduces the opt-in packed-error payload between syndrome and
    /// trailer ([`PacketCodec::with_error_payload`]), so a pre-v4 receiver
    /// can never misread error bitplanes as syndrome padding.
    pub const VERSION: u16 = 4;

    /// Creates a single-lattice codec: lattice id 0 with `syndrome_bits`
    /// ancilla bits.
    #[must_use]
    pub fn new(syndrome_bits: usize) -> Self {
        Self::for_lattice_bits(&[syndrome_bits])
    }

    /// Creates a codec for a set of lattices: `bits[id]` is the ancilla
    /// count of the lattice registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn for_lattice_bits(bits: &[usize]) -> Self {
        assert!(!bits.is_empty(), "codec needs at least one lattice");
        let lattice_bits: Vec<u32> = bits
            .iter()
            .map(|&b| u32::try_from(b).expect("ancilla count fits u32"))
            .collect();
        let max_bits = *lattice_bits.iter().max().expect("non-empty") as usize;
        let retired = Arc::new(
            (0..lattice_bits.len())
                .map(|_| AtomicU64::new(u64::MAX))
                .collect::<Vec<_>>(),
        );
        PacketCodec {
            lattice_bits,
            max_syndrome_words: PackedSyndrome::words_for(max_bits),
            lattice_data: Vec::new(),
            error_words: 0,
            retired,
        }
    }

    /// Retires a lattice at `final_round`: from now on, [`PacketCodec::verify`]
    /// quarantines any record claiming round `>= final_round` for this
    /// lattice as [`PacketError::RetiredLattice`], while records for earlier
    /// rounds — the in-flight backlog draining to the final frame — still
    /// verify normally.
    ///
    /// The watermark is shared across codec clones: the producer retires on
    /// its codec and every worker's clone observes it, which is how scripted
    /// [`RetireLattice`](crate::scenario::ScenarioAction::RetireLattice)
    /// actions turn straggler records into typed quarantines instead of
    /// decodes against a decommissioned patch.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    pub fn retire_lattice(&self, lattice_id: u32, final_round: u64) {
        self.retired[lattice_id as usize].store(final_round, Ordering::Release);
    }

    /// The retirement watermark of `lattice_id`: `Some(final_round)` once
    /// retired, `None` while live.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn retirement(&self, lattice_id: u32) -> Option<u64> {
        match self.retired[lattice_id as usize].load(Ordering::Acquire) {
            u64::MAX => None,
            final_round => Some(final_round),
        }
    }

    /// Creates a codec whose records additionally carry the round's seeded
    /// physical error: `bits[id]` is the ancilla count and `data_qubits[id]`
    /// the data-qubit count of the lattice registered under `id`.
    ///
    /// The error payload is two bitplanes sized for the largest lattice
    /// ([`PauliString::packed_words`]); smaller lattices' planes are
    /// zero-padded, like the syndrome payload.  Records from this codec must
    /// be encoded with [`PacketCodec::encode_with_error`] and their error
    /// read back with [`PacketCodec::decode_error_into`].
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or are empty.
    #[must_use]
    pub fn with_error_payload(bits: &[usize], data_qubits: &[usize]) -> Self {
        assert_eq!(
            bits.len(),
            data_qubits.len(),
            "every lattice needs both an ancilla and a data-qubit count"
        );
        let mut codec = Self::for_lattice_bits(bits);
        codec.lattice_data = data_qubits
            .iter()
            .map(|&d| u32::try_from(d).expect("data-qubit count fits u32"))
            .collect();
        let max_data = *codec.lattice_data.iter().max().expect("non-empty") as usize;
        codec.error_words = PauliString::packed_words(max_data);
        codec
    }

    /// Returns `true` if records from this codec carry a packed error
    /// payload ([`PacketCodec::with_error_payload`]).
    #[must_use]
    pub fn carries_errors(&self) -> bool {
        !self.lattice_data.is_empty()
    }

    /// The data-qubit count registered for `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if this codec carries no error payload or `lattice_id` is out
    /// of range.
    #[must_use]
    pub fn data_bits(&self, lattice_id: u32) -> usize {
        self.lattice_data[lattice_id as usize] as usize
    }

    /// Word offset of the error payload within a record.
    fn error_offset(&self) -> usize {
        HEADER_WORDS + self.max_syndrome_words
    }

    /// The number of registered lattices.
    #[must_use]
    pub fn num_lattices(&self) -> usize {
        self.lattice_bits.len()
    }

    /// The syndrome bit length registered for `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn syndrome_bits(&self, lattice_id: u32) -> usize {
        self.lattice_bits[lattice_id as usize] as usize
    }

    /// The fixed record size in `u64` words (header plus the largest
    /// lattice's syndrome payload, plus the error payload when this codec
    /// carries one, plus the checksum trailer).
    #[must_use]
    pub fn words_per_packet(&self) -> usize {
        HEADER_WORDS + self.max_syndrome_words + self.error_words + TRAILER_WORDS
    }

    /// Packs the version, lattice id and bit length into header word 0.
    fn header_word(&self, lattice_id: u32, bits: u32) -> u64 {
        assert!(
            lattice_id < 1 << 24,
            "lattice id exceeds the 24-bit header field"
        );
        assert!(
            bits < 1 << 24,
            "ancilla count exceeds the 24-bit header field"
        );
        (u64::from(Self::VERSION) << 48) | (u64::from(lattice_id) << 24) | u64::from(bits)
    }

    /// Extracts the raw lattice-id field from a record's header *without any
    /// validation* — no version, registration or ancilla-count check.
    ///
    /// This is the cheap routing peek the worker hot loop uses to select the
    /// per-lattice decode buffers before handing the record to
    /// [`PacketCodec::try_decode_into`], which performs the one full header
    /// validation.  Never trust the returned id on its own: a corrupt or
    /// foreign record yields an arbitrary value that only the validating
    /// decode path will reject.
    #[must_use]
    pub fn peek_lattice_id(words: &[u64]) -> u32 {
        ((words[0] >> 24) & 0xFF_FFFF) as u32
    }

    /// Reads the lattice id a record claims to belong to, after validating
    /// the header against the codec's registrations.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] on a version, lattice-id or ancilla-count
    /// mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long.
    pub fn check_header(&self, words: &[u64]) -> Result<u32, PacketError> {
        assert_eq!(words.len(), self.words_per_packet(), "record size mismatch");
        let header = words[0];
        let version = (header >> 48) as u16;
        if version != Self::VERSION {
            return Err(PacketError::VersionMismatch {
                found: version,
                expected: Self::VERSION,
            });
        }
        let lattice_id = ((header >> 24) & 0xFF_FFFF) as u32;
        let header_bits = (header & 0xFF_FFFF) as u32;
        let Some(&registered_bits) = self.lattice_bits.get(lattice_id as usize) else {
            return Err(PacketError::UnknownLattice { lattice_id });
        };
        if header_bits != registered_bits {
            return Err(PacketError::AncillaMismatch {
                lattice_id,
                header_bits,
                registered_bits,
            });
        }
        Ok(lattice_id)
    }

    /// Fully validates a record — header fields *and* the trailer checksum —
    /// and returns the lattice id it belongs to.  This is what the worker
    /// loop calls before touching any per-lattice state, so a hostile or
    /// damaged record is quarantined instead of indexing anything with an
    /// untrusted id.
    ///
    /// # Errors
    ///
    /// Returns the header's [`PacketError`] if a named field fails its
    /// check, or [`PacketError::Corrupted`] for damage the header fields
    /// cannot see (round, timestamp, payload, padding).
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long.
    pub fn verify(&self, words: &[u64]) -> Result<u32, PacketError> {
        let lattice_id = self.check_header(words)?;
        let body = words.len() - TRAILER_WORDS;
        let expected = record_checksum(&words[..body]);
        let found = words[body];
        if expected != found {
            return Err(PacketError::Corrupted { expected, found });
        }
        // Only after the checksum: a corrupted record's round word is noise,
        // and `Corrupted` is the verdict that should win.
        let final_round = self.retired[lattice_id as usize].load(Ordering::Acquire);
        let round = words[1];
        if round >= final_round {
            return Err(PacketError::RetiredLattice {
                lattice_id,
                round,
                final_round,
            });
        }
        Ok(lattice_id)
    }

    /// Writes the header and syndrome payload of `packet` into `out` and
    /// returns the index one past the live syndrome words (the shared front
    /// half of [`PacketCodec::encode`] and
    /// [`PacketCodec::encode_with_error`]).
    fn write_prefix(&self, packet: &SyndromePacket, out: &mut [u64]) -> usize {
        assert_eq!(out.len(), self.words_per_packet(), "record size mismatch");
        let registered = self
            .lattice_bits
            .get(packet.lattice_id as usize)
            .unwrap_or_else(|| panic!("lattice {} is not registered", packet.lattice_id));
        assert_eq!(
            packet.syndrome.len() as u32,
            *registered,
            "packet carries a {}-bit syndrome, lattice {} is registered with {}",
            packet.syndrome.len(),
            packet.lattice_id,
            registered
        );
        out[0] = self.header_word(packet.lattice_id, *registered);
        out[1] = packet.round;
        out[2] = packet.emitted_ns;
        let payload = packet.syndrome.words();
        out[HEADER_WORDS..HEADER_WORDS + payload.len()].copy_from_slice(payload);
        HEADER_WORDS + payload.len()
    }

    /// Flattens a packet into `out`, zero-padding past the packet's payload.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`PacketCodec::words_per_packet`] words
    /// long, if the packet's lattice id is not registered, if its syndrome
    /// length does not match the registered lattice, or if this codec was
    /// built with [`PacketCodec::with_error_payload`] (error-carrying records
    /// must state their error explicitly via
    /// [`PacketCodec::encode_with_error`]).
    pub fn encode(&self, packet: &SyndromePacket, out: &mut [u64]) {
        assert!(
            !self.carries_errors(),
            "codec carries error payloads; encode records with encode_with_error"
        );
        let end = self.write_prefix(packet, out);
        let body = out.len() - TRAILER_WORDS;
        out[end..body].fill(0);
        out[body] = record_checksum(&out[..body]);
    }

    /// Flattens a packet plus the round's seeded error into `out`
    /// (error-carrying codecs only).  The error is packed as two bitplanes
    /// after the syndrome payload; the checksum trailer covers it like every
    /// other word.
    ///
    /// # Panics
    ///
    /// Panics on everything [`PacketCodec::encode`] rejects, plus if this
    /// codec carries no error payload or `error`'s length does not match the
    /// lattice's registered data-qubit count.
    pub fn encode_with_error(&self, packet: &SyndromePacket, error: &PauliString, out: &mut [u64]) {
        assert!(
            self.carries_errors(),
            "codec carries no error payload; use encode"
        );
        let end = self.write_prefix(packet, out);
        let err_off = self.error_offset();
        out[end..err_off].fill(0);
        let data = self.data_bits(packet.lattice_id);
        assert_eq!(
            error.len(),
            data,
            "error acts on {} qubits, lattice {} is registered with {} data qubits",
            error.len(),
            packet.lattice_id,
            data
        );
        let packed = PauliString::packed_words(data);
        error.pack_into(&mut out[err_off..err_off + packed]);
        let body = out.len() - TRAILER_WORDS;
        out[err_off + packed..body].fill(0);
        out[body] = record_checksum(&out[..body]);
    }

    /// Unpacks the error payload of an already-verified record into `error`
    /// without allocating — the companion of
    /// [`PacketCodec::try_decode_into`] on the worker hot path.  `lattice_id`
    /// must be the id returned by the verifying decode (the raw peeked id is
    /// not trustworthy).
    ///
    /// # Panics
    ///
    /// Panics if this codec carries no error payload, if `words` is not
    /// exactly [`PacketCodec::words_per_packet`] words long, or if `error`'s
    /// length does not match the lattice's registered data-qubit count.
    pub fn decode_error_into(&self, words: &[u64], lattice_id: u32, error: &mut PauliString) {
        assert!(
            self.carries_errors(),
            "codec carries no error payload to decode"
        );
        assert_eq!(words.len(), self.words_per_packet(), "record size mismatch");
        let data = self.data_bits(lattice_id);
        assert_eq!(
            error.len(),
            data,
            "error buffer holds {} qubits, lattice {lattice_id} needs {}",
            error.len(),
            data
        );
        let off = self.error_offset();
        let packed = PauliString::packed_words(data);
        error.unpack_from(&words[off..off + packed]);
    }

    /// Restores a packet from a record, allocating the syndrome.
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the header fails the version or lattice
    /// compatibility checks, or if the trailer checksum exposes in-flight
    /// corruption.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long.
    pub fn try_decode(&self, words: &[u64]) -> Result<SyndromePacket, PacketError> {
        let lattice_id = self.verify(words)?;
        let bits = self.syndrome_bits(lattice_id);
        let payload_words = PackedSyndrome::words_for(bits);
        Ok(SyndromePacket {
            lattice_id,
            round: words[1],
            emitted_ns: words[2],
            syndrome: PackedSyndrome::from_words(
                bits,
                words[HEADER_WORDS..HEADER_WORDS + payload_words].to_vec(),
            ),
        })
    }

    /// Restores a packet from a record, panicking on any incompatibility.
    ///
    /// Test-only: production paths go through [`PacketCodec::try_decode`] so
    /// a hostile record is a typed error, never a panic.
    ///
    /// # Panics
    ///
    /// Panics if the record fails validation (see
    /// [`PacketCodec::try_decode`]) or is not exactly
    /// [`PacketCodec::words_per_packet`] words long.
    #[cfg(test)]
    #[must_use]
    pub fn decode(&self, words: &[u64]) -> SyndromePacket {
        self.try_decode(words).expect("compatible packet record")
    }

    /// Restores a packet into an existing buffer without allocating — the
    /// steady-state decode path used by the worker hot loop (the allocating
    /// [`PacketCodec::try_decode`] is its setup-time counterpart).  The buffer's syndrome must already have the width of the
    /// record's lattice (workers keep one buffer per lattice).
    ///
    /// # Errors
    ///
    /// Returns a [`PacketError`] if the header fails the version or lattice
    /// compatibility checks, or if the trailer checksum exposes in-flight
    /// corruption.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`PacketCodec::words_per_packet`]
    /// words long, or if `packet`'s syndrome length does not match the
    /// record's lattice.
    pub fn try_decode_into(
        &self,
        words: &[u64],
        packet: &mut SyndromePacket,
    ) -> Result<(), PacketError> {
        let lattice_id = self.verify(words)?;
        let bits = self.syndrome_bits(lattice_id);
        assert_eq!(
            packet.syndrome.len(),
            bits,
            "packet buffer carries a {}-bit syndrome, lattice {} needs {}",
            packet.syndrome.len(),
            lattice_id,
            bits
        );
        packet.lattice_id = lattice_id;
        packet.round = words[1];
        packet.emitted_ns = words[2];
        let payload_words = PackedSyndrome::words_for(bits);
        packet
            .syndrome
            .copy_from_words(&words[HEADER_WORDS..HEADER_WORDS + payload_words]);
        Ok(())
    }

    /// Infallible wrapper over [`PacketCodec::try_decode_into`].
    ///
    /// Test-only: the worker hot loop routes every record through the
    /// fallible [`PacketCodec::try_decode_into`] and quarantines failures,
    /// so no hostile record can panic the pool.
    ///
    /// # Panics
    ///
    /// Panics on any validation error in addition to the panics of
    /// [`PacketCodec::try_decode_into`].
    #[cfg(test)]
    pub fn decode_into(&self, words: &[u64], packet: &mut SyndromePacket) {
        if let Err(err) = self.try_decode_into(words, packet) {
            panic!("incompatible packet record: {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_round_trip_through_words() {
        let codec = PacketCodec::new(40);
        let syndrome = Syndrome::from_hot(40, &[0, 7, 39]);
        let packet = SyndromePacket::new(0, 123, 456_789, &syndrome);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        let restored = codec.decode(&record);
        assert_eq!(restored, packet);
        assert_eq!(restored.syndrome.to_syndrome(), syndrome);
    }

    #[test]
    fn mixed_lattices_round_trip_with_padding() {
        // Lattice 0: 8 ancillas (d=3), lattice 1: 40 (d=5) — records are
        // sized for the larger one, the smaller one's tail is zero-padded.
        let codec = PacketCodec::for_lattice_bits(&[8, 40]);
        assert_eq!(codec.num_lattices(), 2);
        assert_eq!(codec.words_per_packet(), 3 + 1 + 1);
        let small = SyndromePacket::new(0, 5, 50, &Syndrome::from_hot(8, &[1, 6]));
        let large = SyndromePacket::new(1, 9, 90, &Syndrome::from_hot(40, &[0, 39]));
        let mut record = vec![u64::MAX; codec.words_per_packet()];
        codec.encode(&small, &mut record);
        assert_eq!(codec.decode(&record), small);
        codec.encode(&large, &mut record);
        assert_eq!(codec.decode(&record), large);
    }

    #[test]
    fn decode_into_reuses_the_buffer() {
        let codec = PacketCodec::new(40);
        let mut record = vec![0u64; codec.words_per_packet()];
        let mut buffer = SyndromePacket::new(0, 0, 0, &Syndrome::new(40));
        for round in 0..5u64 {
            let syndrome = Syndrome::from_hot(40, &[(round as usize) % 40, 17]);
            let packet = SyndromePacket::new(0, round, round * 100, &syndrome);
            codec.encode(&packet, &mut record);
            codec.decode_into(&record, &mut buffer);
            assert_eq!(buffer, packet);
        }
    }

    #[test]
    #[should_panic(expected = "needs 40")]
    fn decode_into_rejects_mismatched_buffer() {
        let codec = PacketCodec::new(40);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(
            &SyndromePacket::new(0, 0, 0, &Syndrome::new(40)),
            &mut record,
        );
        let mut buffer = SyndromePacket::new(0, 0, 0, &Syndrome::new(24));
        codec.decode_into(&record, &mut buffer);
    }

    #[test]
    fn record_sizes_scale_with_bits() {
        // 3 header words + payload + 1 checksum trailer word.
        assert_eq!(PacketCodec::new(40).words_per_packet(), 5); // d=5: 40 ancillas
        assert_eq!(PacketCodec::new(144).words_per_packet(), 7); // d=9
        assert_eq!(PacketCodec::new(64).words_per_packet(), 5);
        assert_eq!(PacketCodec::new(65).words_per_packet(), 6);
        // A mixed set is sized by its largest member.
        assert_eq!(
            PacketCodec::for_lattice_bits(&[8, 144, 40]).words_per_packet(),
            7
        );
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn encode_rejects_short_records() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(40));
        let mut record = vec![0u64; 2];
        codec.encode(&packet, &mut record);
    }

    #[test]
    #[should_panic(expected = "is registered with")]
    fn encode_rejects_mismatched_syndrome_length() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(24));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn encode_rejects_unregistered_lattice() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(3, 0, 0, &Syndrome::new(40));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
    }

    /// The compat guard: a record encoded for a lattice whose ancilla count
    /// disagrees with the receiving codec's registration for that id is
    /// rejected instead of silently misdecoding into a wrong-width syndrome.
    #[test]
    fn ancilla_count_mismatch_is_rejected() {
        // Sender registered lattice 0 with 40 ancillas...
        let sender = PacketCodec::for_lattice_bits(&[40, 40]);
        let packet = SyndromePacket::new(0, 7, 70, &Syndrome::from_hot(40, &[2]));
        let mut record = vec![0u64; sender.words_per_packet()];
        sender.encode(&packet, &mut record);
        // ...but the receiver has an 8-ancilla (d=3) lattice under id 0.
        let receiver = PacketCodec::for_lattice_bits(&[8, 40]);
        assert_eq!(receiver.words_per_packet(), sender.words_per_packet());
        assert_eq!(
            receiver.check_header(&record),
            Err(PacketError::AncillaMismatch {
                lattice_id: 0,
                header_bits: 40,
                registered_bits: 8,
            })
        );
        let mut buffer = SyndromePacket::new(0, 0, 0, &Syndrome::new(8));
        assert!(receiver.try_decode_into(&record, &mut buffer).is_err());
        assert!(receiver.try_decode(&record).is_err());
    }

    #[test]
    fn peek_reads_the_raw_lattice_id_field() {
        let codec = PacketCodec::for_lattice_bits(&[8, 40, 40]);
        let mut record = vec![0u64; codec.words_per_packet()];
        for lattice_id in [0u32, 1, 2] {
            let bits = codec.syndrome_bits(lattice_id);
            let packet = SyndromePacket::new(lattice_id, 3, 30, &Syndrome::new(bits));
            codec.encode(&packet, &mut record);
            assert_eq!(PacketCodec::peek_lattice_id(&record), lattice_id);
        }
    }

    #[test]
    fn unknown_lattice_id_is_rejected() {
        let sender = PacketCodec::for_lattice_bits(&[40, 40]);
        let packet = SyndromePacket::new(1, 0, 0, &Syndrome::new(40));
        let mut record = vec![0u64; sender.words_per_packet()];
        sender.encode(&packet, &mut record);
        let receiver = PacketCodec::for_lattice_bits(&[40]);
        assert_eq!(
            receiver.check_header(&record),
            Err(PacketError::UnknownLattice { lattice_id: 1 })
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(40));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        // Forge a version-1 header (the PR-2 format had no version field;
        // its first word was the round index, so small values read as v0/v1).
        record[0] = (1u64 << 48) | record[0] & 0xFFFF_FFFF_FFFF;
        let err = codec.check_header(&record).unwrap_err();
        assert_eq!(
            err,
            PacketError::VersionMismatch {
                found: 1,
                expected: PacketCodec::VERSION,
            }
        );
        assert!(err.to_string().contains("version 1"));
    }

    #[test]
    fn empty_syndromes_still_carry_headers() {
        let codec = PacketCodec::new(0);
        assert_eq!(codec.words_per_packet(), 4);
        let packet = SyndromePacket::new(0, 9, 17, &Syndrome::new(0));
        let mut record = vec![0u64; 4];
        codec.encode(&packet, &mut record);
        assert_eq!(codec.decode(&record), packet);
    }

    /// The checksum catches damage the header fields cannot see: a flipped
    /// bit in the round index, the timestamp, the payload or the trailer
    /// itself all surface as `Corrupted`, never as a wrong decode.
    #[test]
    fn any_single_bit_flip_is_detected() {
        let codec = PacketCodec::new(40);
        let syndrome = Syndrome::from_hot(40, &[3, 17, 31]);
        let packet = SyndromePacket::new(0, 123, 456_789, &syndrome);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        assert!(codec.verify(&record).is_ok());
        for word in 0..record.len() {
            for bit in [0u32, 13, 31, 47, 63] {
                let mut corrupt = record.clone();
                corrupt[word] ^= 1u64 << bit;
                let err = codec.try_decode(&corrupt).unwrap_err();
                // Flips in named header fields may produce their own typed
                // error; everything else must land on the checksum.
                if word > 0 {
                    let trailer = word == record.len() - 1;
                    assert!(
                        matches!(err, PacketError::Corrupted { .. }) || trailer,
                        "word {word} bit {bit}: got {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn corruption_is_a_typed_error_not_a_misdecode() {
        let codec = PacketCodec::new(40);
        let packet = SyndromePacket::new(0, 7, 70, &Syndrome::from_hot(40, &[2, 9]));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
        // Damage the round index: the header checks cannot see it...
        record[1] ^= 1 << 40;
        assert!(codec.check_header(&record).is_ok());
        // ...but full validation rejects it with the corruption error.
        let err = codec.verify(&record).unwrap_err();
        assert!(matches!(err, PacketError::Corrupted { .. }));
        assert!(err.to_string().contains("corrupted in flight"));
        let mut buffer = SyndromePacket::new(0, 0, 0, &Syndrome::new(40));
        assert_eq!(codec.try_decode_into(&record, &mut buffer), Err(err));
    }

    use nisqplus_qec::pauli::Pauli;

    #[test]
    fn error_payload_round_trips_across_mixed_lattices() {
        // d=3 (8 ancillas, 13 data) and d=5 (40 ancillas, 41 data): records
        // are sized for the larger lattice in both payloads.
        let codec = PacketCodec::with_error_payload(&[8, 40], &[13, 41]);
        assert!(codec.carries_errors());
        assert_eq!(codec.data_bits(0), 13);
        // 3 header + 1 syndrome + 2 error bitplanes + 1 trailer.
        assert_eq!(codec.words_per_packet(), 3 + 1 + 2 + 1);
        let mut record = vec![u64::MAX; codec.words_per_packet()];
        for (id, bits, data) in [(0u32, 8usize, 13usize), (1, 40, 41)] {
            let packet = SyndromePacket::new(id, 11, 110, &Syndrome::from_hot(bits, &[3]));
            let mut error = PauliString::identity(data);
            error.set(0, Pauli::Y);
            error.set(data - 1, Pauli::Z);
            codec.encode_with_error(&packet, &error, &mut record);
            let mut buffer = SyndromePacket::new(id, 0, 0, &Syndrome::new(bits));
            let lattice_id = codec.verify(&record).expect("valid record");
            codec.try_decode_into(&record, &mut buffer).unwrap();
            assert_eq!(buffer, packet);
            let mut restored = PauliString::identity(data);
            codec.decode_error_into(&record, lattice_id, &mut restored);
            assert_eq!(restored, error);
        }
    }

    #[test]
    fn errorless_codecs_keep_their_record_size() {
        // The error payload is strictly opt-in: the classic constructors
        // produce byte-compatible sizes with the pre-v4 format.
        assert_eq!(PacketCodec::new(40).words_per_packet(), 5);
        assert!(!PacketCodec::new(40).carries_errors());
        assert_eq!(
            PacketCodec::with_error_payload(&[40], &[41]).words_per_packet(),
            5 + 2
        );
    }

    #[test]
    #[should_panic(expected = "encode records with encode_with_error")]
    fn error_carrying_codec_rejects_plain_encode() {
        let codec = PacketCodec::with_error_payload(&[8], &[13]);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(8));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode(&packet, &mut record);
    }

    #[test]
    #[should_panic(expected = "use encode")]
    fn errorless_codec_rejects_encode_with_error() {
        let codec = PacketCodec::new(8);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(8));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode_with_error(&packet, &PauliString::identity(13), &mut record);
    }

    #[test]
    #[should_panic(expected = "data qubits")]
    fn error_length_mismatch_is_rejected() {
        let codec = PacketCodec::with_error_payload(&[8], &[13]);
        let packet = SyndromePacket::new(0, 0, 0, &Syndrome::new(8));
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode_with_error(&packet, &PauliString::identity(12), &mut record);
    }

    #[test]
    fn error_payload_corruption_is_detected() {
        let codec = PacketCodec::with_error_payload(&[40], &[41]);
        let packet = SyndromePacket::new(0, 3, 30, &Syndrome::from_hot(40, &[7]));
        let error = PauliString::from_sparse(41, &[5, 9], Pauli::X);
        let mut record = vec![0u64; codec.words_per_packet()];
        codec.encode_with_error(&packet, &error, &mut record);
        assert!(codec.verify(&record).is_ok());
        // Flip a bit inside the error bitplanes: the checksum must catch it.
        record[4] ^= 1 << 9;
        assert!(matches!(
            codec.verify(&record),
            Err(PacketError::Corrupted { .. })
        ));
    }

    #[test]
    fn retirement_quarantines_later_rounds_but_drains_earlier_ones() {
        let codec = PacketCodec::for_lattice_bits(&[8, 24]);
        let encode = |lattice_id: u32, round: u64| {
            let bits = codec.syndrome_bits(lattice_id);
            let packet = SyndromePacket::new(lattice_id, round, 0, &Syndrome::new(bits));
            let mut record = vec![0u64; codec.words_per_packet()];
            codec.encode(&packet, &mut record);
            record
        };
        assert_eq!(codec.retirement(1), None);
        assert!(codec.verify(&encode(1, 99)).is_ok());

        codec.retire_lattice(1, 5);
        assert_eq!(codec.retirement(1), Some(5));
        // In-flight rounds below the watermark still drain.
        assert_eq!(codec.verify(&encode(1, 4)), Ok(1));
        // Rounds at or past it are quarantined with a typed verdict.
        assert_eq!(
            codec.verify(&encode(1, 5)),
            Err(PacketError::RetiredLattice {
                lattice_id: 1,
                round: 5,
                final_round: 5,
            })
        );
        let err = codec.verify(&encode(1, 12)).unwrap_err();
        assert!(err.to_string().contains("retired after 5 rounds"));
        // Other lattices are untouched.
        assert!(codec.verify(&encode(0, 1_000)).is_ok());
    }

    #[test]
    fn retirement_propagates_to_clones_and_corruption_wins() {
        let producer = PacketCodec::for_lattice_bits(&[8]);
        let worker = producer.clone();
        let packet = SyndromePacket::new(0, 7, 0, &Syndrome::new(8));
        let mut record = vec![0u64; producer.words_per_packet()];
        producer.encode(&packet, &mut record);
        assert!(worker.verify(&record).is_ok());

        producer.retire_lattice(0, 3);
        // The worker's clone shares the watermark.
        assert!(matches!(
            worker.verify(&record),
            Err(PacketError::RetiredLattice { round: 7, .. })
        ));
        // A corrupted record is reported as corruption, not retirement: its
        // round word is untrustworthy.
        let body = record.len() - 1;
        record[body] ^= 1;
        assert!(matches!(
            worker.verify(&record),
            Err(PacketError::Corrupted { .. })
        ));
    }
}
