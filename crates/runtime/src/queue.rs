//! The bounded lock-free syndrome ring buffer.
//!
//! The queue between syndrome generation and the decoder workers is the one
//! data structure on the runtime's hot path, so it mirrors the shape used by
//! production streaming decoders (cf. the riscv-qcu pipeline): a bounded ring
//! of fixed-size slots, a producer cursor, a consumer cursor, and per-slot
//! sequence numbers in the style of Vyukov's bounded queue.  Slots carry raw
//! `u64` words (a bit-packed [`SyndromePacket`](crate::packet::SyndromePacket))
//! rather than an owned type, which lets the whole structure be built from
//! `std::sync::atomic` primitives in entirely safe Rust: payload words are
//! plain relaxed atomic stores/loads whose visibility is ordered by the
//! release/acquire handoff on the slot sequence number.
//!
//! The implementation is multi-producer/multi-consumer-safe (both cursors
//! advance by compare-and-swap), though the runtime drives it in SPMC mode:
//! one producer thread pushing at the syndrome-generation cadence, many
//! decoder workers popping.
//!
//! The ring itself is only *storage*: in the pipeline graph the flow
//! control lives one layer up, in
//! [`CreditChannel`](crate::stage::channel::CreditChannel), which pairs
//! each ring with a capacity-credit loop so that a full ring is a counted
//! refusal at a stage seam rather than a failed push deep in a hot loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned by [`SpmcRing::try_push`] when the ring is full.
///
/// The caller decides the policy: drop the packet (and count it) or spin
/// until a worker frees a slot (backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

/// One slot: a sequence number guarding a fixed array of payload words.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: Box<[AtomicU64]>,
}

/// A 64-byte-aligned wrapper keeping the producer and consumer cursors on
/// separate cache lines.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CacheAligned(AtomicU64);

/// A bounded lock-free single-producer/multi-consumer ring buffer of
/// fixed-size `u64`-word records.
///
/// ```rust
/// use nisqplus_runtime::queue::SpmcRing;
///
/// let ring = SpmcRing::new(4, 2);
/// ring.try_push(&[1, 2]).unwrap();
/// ring.try_push(&[3, 4]).unwrap();
/// let mut out = [0u64; 2];
/// assert!(ring.try_pop(&mut out));
/// assert_eq!(out, [1, 2]);
/// assert_eq!(ring.len(), 1);
/// ```
#[derive(Debug)]
pub struct SpmcRing {
    slots: Box<[Slot]>,
    capacity: u64,
    words_per_slot: usize,
    /// Next index to push (producer cursor).
    head: CacheAligned,
    /// Next index to pop (consumer cursor).
    tail: CacheAligned,
}

impl SpmcRing {
    /// Creates a ring with `capacity` slots of `words_per_slot` words each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `words_per_slot` is zero.
    #[must_use]
    pub fn new(capacity: usize, words_per_slot: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(words_per_slot > 0, "slot word count must be positive");
        let slots = (0..capacity as u64)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                words: (0..words_per_slot).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        SpmcRing {
            slots,
            capacity: capacity as u64,
            words_per_slot,
            head: CacheAligned::default(),
            tail: CacheAligned::default(),
        }
    }

    /// The number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// The fixed record size, in `u64` words.
    #[must_use]
    pub fn words_per_slot(&self) -> usize {
        self.words_per_slot
    }

    /// A snapshot of the current occupancy.  Exact when quiescent; during
    /// concurrent pushes and pops it is a consistent point-in-time estimate,
    /// which is all the backlog telemetry needs.
    #[must_use]
    pub fn len(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head.saturating_sub(tail).min(self.capacity) as usize
    }

    /// Returns `true` if the snapshot occupancy is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue one record without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`RingFull`] when all slots are occupied; the record is not
    /// enqueued and the caller chooses between dropping and backpressure.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from [`SpmcRing::words_per_slot`].
    pub fn try_push(&self, words: &[u64]) -> Result<(), RingFull> {
        assert_eq!(
            words.len(),
            self.words_per_slot,
            "pushed record has {} words, slots hold {}",
            words.len(),
            self.words_per_slot
        );
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos % self.capacity) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot is free at our position: claim it.
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        for (slot_word, &value) in slot.words.iter().zip(words) {
                            slot_word.store(value, Ordering::Relaxed);
                        }
                        // Publish: consumers' acquire-load of `seq` orders the
                        // payload stores above before their payload loads.
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // The slot still holds an unconsumed record from one lap ago.
                return Err(RingFull);
            } else {
                // Another producer claimed this position; catch up.
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue one record into `out` without blocking.
    ///
    /// Returns `false` when the ring is empty.  Any consumer thread may call
    /// this concurrently; each record is delivered to exactly one consumer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`SpmcRing::words_per_slot`].
    pub fn try_pop(&self, out: &mut [u64]) -> bool {
        assert_eq!(
            out.len(),
            self.words_per_slot,
            "pop buffer has {} words, slots hold {}",
            out.len(),
            self.words_per_slot
        );
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos % self.capacity) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Slot holds a published record at our position: claim it.
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        for (out_word, slot_word) in out.iter_mut().zip(slot.words.iter()) {
                            *out_word = slot_word.load(Ordering::Relaxed);
                        }
                        // Hand the slot back to the producer one lap later.
                        slot.seq.store(pos + self.capacity, Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq <= pos {
                // Nothing published at our position yet.
                return false;
            } else {
                // Another consumer claimed this position; catch up.
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    #[test]
    fn fifo_order_single_threaded() {
        let ring = SpmcRing::new(8, 1);
        for i in 0..8u64 {
            ring.try_push(&[i]).unwrap();
        }
        assert_eq!(ring.try_push(&[99]), Err(RingFull));
        assert_eq!(ring.len(), 8);
        let mut out = [0u64];
        for i in 0..8u64 {
            assert!(ring.try_pop(&mut out));
            assert_eq!(out[0], i);
        }
        assert!(!ring.try_pop(&mut out));
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_around_many_laps() {
        let ring = SpmcRing::new(4, 2);
        let mut out = [0u64; 2];
        for lap in 0..1000u64 {
            ring.try_push(&[lap, lap * 2]).unwrap();
            assert!(ring.try_pop(&mut out));
            assert_eq!(out, [lap, lap * 2]);
        }
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpmcRing::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "pushed record has")]
    fn wrong_record_size_rejected() {
        let ring = SpmcRing::new(2, 3);
        let _ = ring.try_push(&[1]);
    }

    /// One producer, several consumers: every record is delivered exactly
    /// once and the per-record payload stays intact (no torn reads).
    #[test]
    fn spmc_delivers_each_record_exactly_once() {
        const RECORDS: u64 = 20_000;
        const CONSUMERS: usize = 4;
        let ring = SpmcRing::new(64, 3);
        let delivered = AtomicU64::new(0);
        let checksum = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..CONSUMERS {
                s.spawn(|| {
                    let mut out = [0u64; 3];
                    loop {
                        if ring.try_pop(&mut out) {
                            // Payload integrity: words are derived from the
                            // record id; a torn read would break the relation.
                            assert_eq!(out[1], out[0].wrapping_mul(31));
                            assert_eq!(out[2], !out[0]);
                            checksum.fetch_add(out[0], Ordering::Relaxed);
                            if delivered.fetch_add(1, Ordering::Relaxed) + 1 == RECORDS {
                                return;
                            }
                        } else if delivered.load(Ordering::Relaxed) >= RECORDS {
                            return;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut pushed = 0u64;
            while pushed < RECORDS {
                let record = [pushed, pushed.wrapping_mul(31), !pushed];
                if ring.try_push(&record).is_ok() {
                    pushed += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(delivered.load(Ordering::Relaxed), RECORDS);
        // Sum 0..RECORDS — every id delivered exactly once.
        assert_eq!(
            checksum.load(Ordering::Relaxed),
            RECORDS * (RECORDS - 1) / 2
        );
    }

    /// Drops under pressure never corrupt the stream: whatever does get
    /// through arrives in order.
    #[test]
    fn order_is_preserved_under_drops() {
        let ring = SpmcRing::new(4, 1);
        let mut accepted = Vec::new();
        let mut out = [0u64];
        for i in 0..100u64 {
            if ring.try_push(&[i]).is_ok() {
                accepted.push(i);
            }
            if i % 3 == 0 && ring.try_pop(&mut out) {
                assert_eq!(out[0], accepted.remove(0));
            }
        }
        while ring.try_pop(&mut out) {
            assert_eq!(out[0], accepted.remove(0));
        }
        assert!(accepted.is_empty());
    }
}
