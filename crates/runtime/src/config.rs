//! Run configuration: the single-lattice front door ([`RuntimeConfig`]) and
//! the multi-lattice machine description ([`MachineConfig`]) the engine
//! actually executes, plus the full-queue [`PushPolicy`].
//!
//! These types describe *what* to run; how the run is wired — source, gate,
//! channels, decode workers, sinks — lives in [`crate::stage`], and the
//! orchestration in [`crate::engine`].

use crate::fault::FaultPlan;
use crate::lattice_set::LatticeSpec;
use crate::scenario::ScenarioScript;
use crate::source::NoiseSpec;
use nisqplus_sim::timing::CycleTimeConverter;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// What the producer does when the ring buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushPolicy {
    /// Spin (counting [`backpressure_spins`](crate::telemetry::CounterSnapshot::backpressure_spins))
    /// until a worker frees a slot.  No round is ever lost, so the backlog
    /// measured by the run is exact — this is the policy the backlog
    /// experiments use, with a ring deep enough to hold the whole backlog.
    Block,
    /// Drop the packet (counting
    /// [`dropped`](crate::telemetry::CounterSnapshot::dropped)) and move on,
    /// as a load-shedding hardware front-end would.
    Drop,
}

/// How residual classification runs when
/// [`MachineConfig::analyze_residuals`] is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ResidualMode {
    /// Classify residuals *in stream*: packets carry the round's seeded
    /// error ([`crate::packet::PacketCodec::with_error_payload`]), workers
    /// classify immediately after decoding, and the producer classifies shed
    /// rounds as it sheds them.  Memory stays O(lattices) no matter how many
    /// rounds stream — the soak-scale default.
    #[default]
    Streaming,
    /// The original end-of-run oracle: record every correction, then replay
    /// each lattice's seeded error stream and classify round by round.
    /// Memory grows O(rounds); kept as the equivalence reference the
    /// streaming path is tested against.
    Replay,
}

/// Configuration of the live observability plane
/// ([`crate::obs::ObsPlane`]): snapshot cadence, journal capacity, and the
/// optional end-of-run report export.
///
/// Every bound here is a *memory* bound: snapshots, journal events, and
/// histograms all cost the same at a million rounds as at a hundred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Sampler cadence in microseconds: how often the snapshot thread wakes
    /// and records a [`MetricsSnapshot`](crate::obs::MetricsSnapshot).  `0`
    /// disables the sampler thread entirely (the report's `snapshots` stay
    /// empty; counters, histograms and the journal still run).
    pub snapshot_cadence_us: u64,
    /// Upper bound on snapshots kept; samples past the bound are dropped
    /// and counted, never grown.
    pub max_snapshots: usize,
    /// Resident capacity of the event journal ring (older events are
    /// overwritten and counted once it fills).
    pub journal_capacity: usize,
    /// How many of the newest resident events the end-of-run
    /// [`JournalSnapshot`](crate::obs::JournalSnapshot) carries verbatim.
    pub journal_tail: usize,
    /// When set, the engine serializes the finished
    /// [`RuntimeReport`](crate::telemetry::RuntimeReport) to this path as
    /// schema-versioned JSON (see [`crate::report::export`]) after every
    /// run.  A failed write warns on stderr; it never fails the run.
    pub export_path: Option<PathBuf>,
}

impl Default for ObsConfig {
    /// 500 µs snapshot cadence, 1024 snapshots, a 1024-event journal with a
    /// 64-event report tail, no export.
    fn default() -> Self {
        ObsConfig {
            snapshot_cadence_us: 500,
            max_snapshots: 1024,
            journal_capacity: 1024,
            journal_tail: 64,
            export_path: None,
        }
    }
}

/// Configuration of a single-lattice streaming run.
///
/// This is the ergonomic front door for the common one-patch experiment; it
/// converts into a one-entry [`MachineConfig`], which is what the engine
/// actually runs.  Use [`MachineConfig`] directly to serve several logical
/// qubits at once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Surface-code distance of the streamed lattice.
    pub distance: usize,
    /// The stochastic error channel driving the stream.
    pub noise: NoiseSpec,
    /// Seed of the syndrome stream (same seed, same stream — see
    /// [`crate::source::SyndromeSource`]).
    pub seed: u64,
    /// Number of syndrome-generation rounds to stream.
    pub rounds: u64,
    /// Number of decoder worker threads.
    pub workers: usize,
    /// Syndrome-generation period in decoder clock cycles; mapped to
    /// nanoseconds through [`RuntimeConfig::cycle_time`].  `0` disables
    /// pacing: the producer generates as fast as the CPU allows (useful for
    /// deterministic equivalence tests and throughput benchmarks).
    pub cadence_cycles: usize,
    /// Converts [`RuntimeConfig::cadence_cycles`] into wall-clock
    /// nanoseconds (`nisqplus-sim`'s cycle→ns mapping).
    pub cycle_time: CycleTimeConverter,
    /// Total ring-buffer capacity in packets, split evenly across the
    /// per-worker rings (each ring holds `ceil(queue_capacity / workers)`
    /// packets).  For backlog experiments with [`PushPolicy::Block`], size
    /// this above the expected final backlog so the producer never stalls.
    pub queue_capacity: usize,
    /// Maximum number of consecutive rounds a worker pops from a ring and
    /// decodes as one batch, amortizing per-packet overhead (ring pop/steal
    /// scans, shared counter updates) across the window.  Latency telemetry
    /// stays per-packet (timestamps are chained inside the batch).  `1`
    /// reproduces the original packet-at-a-time behaviour; corrections are
    /// byte-identical for every value because rounds remain independent
    /// decoding problems.
    pub batch_size: usize,
    /// Full-queue policy.
    pub push_policy: PushPolicy,
    /// Hard upper bound on the number of
    /// [`DepthSample`](crate::telemetry::DepthSample)s kept on the timeline.
    /// The producer samples on a stride aiming at this many points; if a
    /// run outlives its stride estimate the timeline is compacted in place
    /// (keeping the peak-backlog and newest samples), so memory stays
    /// bounded at soak scale no matter how many rounds stream.
    pub max_depth_samples: usize,
    /// When `true`, every worker keeps the per-round corrections it
    /// committed, and
    /// [`RuntimeOutcome::corrections`](crate::engine::RuntimeOutcome::corrections)
    /// returns them sorted by `(lattice, round)` — the hook the
    /// stream-versus-batch equivalence tests use.
    pub record_corrections: bool,
    /// When `true`, every round's residual is classified (shed rounds count
    /// as identity corrections), filling
    /// [`LatticeReport::residual`](crate::telemetry::LatticeReport::residual)
    /// — the measured logical cost of shedding versus backpressure.  *How*
    /// the classification runs is [`RuntimeConfig::residual_mode`].
    pub analyze_residuals: bool,
    /// Streaming (in-worker, bounded-memory) versus replay (end-of-run
    /// oracle) residual classification; ignored unless
    /// [`RuntimeConfig::analyze_residuals`] is on.
    pub residual_mode: ResidualMode,
    /// When set, each worker keeps at most this many recorded corrections as
    /// a ring of the *most recent* rounds instead of the full history —
    /// the soak-scale memory bound for
    /// [`RuntimeConfig::record_corrections`].  `None` keeps every correction
    /// (required by [`ResidualMode::Replay`]).
    pub correction_cap: Option<usize>,
    /// When `true` (the default), the producer keeps the exact round indices
    /// it shed per lattice
    /// ([`PipelineRun::lattice_shed`](crate::stage::PipelineRun::lattice_shed)).
    /// Soak runs turn this off to stay O(1) per lattice under sustained
    /// shedding; the shed *counters* always run.  Required by
    /// [`ResidualMode::Replay`], which replays shed rounds by index.
    pub track_shed_rounds: bool,
}

impl RuntimeConfig {
    /// The paper's 400 ns syndrome-generation period expressed in decoder
    /// clock cycles at the synthesized module latency (162.72 ps, Table III):
    /// `2458 * 162.72 ps ≈ 400 ns`.
    pub const PAPER_CADENCE_CYCLES: usize = 2458;

    /// Default batched-window size: small enough to keep per-round latency
    /// telemetry meaningful, large enough to amortize per-packet overhead.
    pub const DEFAULT_BATCH_SIZE: usize = 4;

    /// A paper-shaped default: pure dephasing at 3%, one round per 400 ns,
    /// two workers, a 4096-packet ring with blocking backpressure, 4-round
    /// decode windows.
    #[must_use]
    pub fn new(distance: usize) -> Self {
        RuntimeConfig {
            distance,
            noise: NoiseSpec::PureDephasing { p: 0.03 },
            seed: 2020,
            rounds: 10_000,
            workers: 2,
            cadence_cycles: Self::PAPER_CADENCE_CYCLES,
            cycle_time: CycleTimeConverter::paper_reference(),
            queue_capacity: 4096,
            batch_size: Self::DEFAULT_BATCH_SIZE,
            push_policy: PushPolicy::Block,
            max_depth_samples: 4096,
            record_corrections: false,
            analyze_residuals: false,
            residual_mode: ResidualMode::Streaming,
            correction_cap: None,
            track_shed_rounds: true,
        }
    }

    /// The syndrome-generation period in nanoseconds (`0.0` when pacing is
    /// disabled).
    #[must_use]
    pub fn cadence_ns(&self) -> f64 {
        self.cycle_time.cycles_to_ns(self.cadence_cycles)
    }
}

impl From<RuntimeConfig> for MachineConfig {
    /// A single-lattice run is a one-entry machine.
    fn from(config: RuntimeConfig) -> Self {
        MachineConfig {
            lattices: vec![LatticeSpec {
                distance: config.distance,
                noise: config.noise,
                seed: config.seed,
                rounds: config.rounds,
                cadence_cycles: config.cadence_cycles,
                burst: None,
                push_policy: None,
                queue_budget: None,
                shed_slo: None,
                decoder: None,
            }],
            workers: config.workers,
            cycle_time: config.cycle_time,
            queue_capacity: config.queue_capacity,
            batch_size: config.batch_size,
            push_policy: config.push_policy,
            max_depth_samples: config.max_depth_samples,
            record_corrections: config.record_corrections,
            analyze_residuals: config.analyze_residuals,
            residual_mode: config.residual_mode,
            correction_cap: config.correction_cap,
            track_shed_rounds: config.track_shed_rounds,
            obs: ObsConfig::default(),
            fault: FaultPlan::default(),
            scenario: ScenarioScript::default(),
        }
    }
}

/// Configuration of a multi-lattice streaming run: one engine serving a full
/// NISQ+ machine of N logical qubits.
///
/// Per-stream knobs (distance, noise, seed, rounds, cadence) live in each
/// [`LatticeSpec`]; the fields here configure the shared decoder fabric.
/// The field semantics match [`RuntimeConfig`]'s identically-named fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The lattices to serve, in lattice-id order (id = index).
    pub lattices: Vec<LatticeSpec>,
    /// Number of decoder worker threads shared by all lattices.
    pub workers: usize,
    /// Converts every lattice's `cadence_cycles` into wall-clock nanoseconds.
    pub cycle_time: CycleTimeConverter,
    /// Total ring-buffer capacity in packets, split evenly across the
    /// per-worker rings.
    pub queue_capacity: usize,
    /// Maximum rounds a worker decodes as one batch (see
    /// [`RuntimeConfig::batch_size`]).
    pub batch_size: usize,
    /// Full-queue policy.
    pub push_policy: PushPolicy,
    /// Upper bound on the number of
    /// [`DepthSample`](crate::telemetry::DepthSample)s kept on the timeline.
    pub max_depth_samples: usize,
    /// When `true`, per-round corrections are kept, sorted by
    /// `(lattice, round)`.
    pub record_corrections: bool,
    /// When `true`, every round's residual is classified (shed rounds count
    /// as identity corrections), filling
    /// [`LatticeReport::residual`](crate::telemetry::LatticeReport::residual).
    pub analyze_residuals: bool,
    /// Streaming (in-worker, bounded-memory) versus replay (end-of-run
    /// oracle) residual classification (see [`ResidualMode`]).
    pub residual_mode: ResidualMode,
    /// Ring bound on recorded corrections per worker (see
    /// [`RuntimeConfig::correction_cap`]).
    pub correction_cap: Option<usize>,
    /// Whether the producer keeps exact shed round indices (see
    /// [`RuntimeConfig::track_shed_rounds`]).
    pub track_shed_rounds: bool,
    /// The live observability plane: snapshot cadence, journal capacity,
    /// optional report export.
    pub obs: ObsConfig,
    /// The deterministic fault schedule for this run — worker crashes,
    /// packet corruption, burst-noise episodes, channel stalls (see
    /// [`crate::fault`]).  Empty by default: a plan-free run pays nothing
    /// for the injection hooks.
    pub fault: FaultPlan,
    /// The scripted elastic reconfigurations for this run — lattices added,
    /// retired, or re-tuned at scripted machine-global rounds (see
    /// [`crate::scenario`]).  Empty by default: a script-free run is a
    /// static machine.
    pub scenario: ScenarioScript,
}

impl MachineConfig {
    /// A machine of `distances.len()` lattices with otherwise
    /// [`RuntimeConfig::new`]-shaped defaults; lattice `i` gets distance
    /// `distances[i]` and seed `base_seed + i` so the streams are
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty.
    #[must_use]
    pub fn new(distances: &[usize], base_seed: u64) -> Self {
        assert!(
            !distances.is_empty(),
            "a machine needs at least one lattice"
        );
        let template = RuntimeConfig::new(distances[0]);
        MachineConfig {
            lattices: distances
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut spec = LatticeSpec::new(d);
                    spec.seed = base_seed + i as u64;
                    spec
                })
                .collect(),
            workers: template.workers,
            cycle_time: template.cycle_time,
            queue_capacity: template.queue_capacity,
            batch_size: template.batch_size,
            push_policy: template.push_policy,
            max_depth_samples: template.max_depth_samples,
            record_corrections: template.record_corrections,
            analyze_residuals: template.analyze_residuals,
            residual_mode: template.residual_mode,
            correction_cap: template.correction_cap,
            track_shed_rounds: template.track_shed_rounds,
            obs: ObsConfig::default(),
            fault: FaultPlan::default(),
            scenario: ScenarioScript::default(),
        }
    }

    /// `true` when this run classifies residuals in stream: packets carry
    /// errors, workers classify after decoding, the producer classifies shed
    /// rounds.
    #[must_use]
    pub fn streams_residuals(&self) -> bool {
        self.analyze_residuals && self.residual_mode == ResidualMode::Streaming
    }

    /// `true` when this run classifies residuals with the end-of-run replay
    /// oracle (which needs the full correction history and exact shed round
    /// indices).
    #[must_use]
    pub fn replays_residuals(&self) -> bool {
        self.analyze_residuals && self.residual_mode == ResidualMode::Replay
    }

    /// The push policy `spec` runs under: its own override, or this
    /// machine's [`MachineConfig::push_policy`] when it has none.
    #[must_use]
    pub fn policy_for(&self, spec: &LatticeSpec) -> PushPolicy {
        spec.push_policy.unwrap_or(self.push_policy)
    }

    /// The nominal *aggregate* inter-arrival time across the machine, in
    /// nanoseconds per round: `1 / Σ 1/cadence_i`.  Returns `0.0` if any
    /// lattice is unpaced (the aggregate arrival rate is then CPU-bound).
    #[must_use]
    pub fn aggregate_cadence_ns(&self) -> f64 {
        let mut rate_per_ns = 0.0f64;
        for spec in &self.lattices {
            let cadence = self.cycle_time.cycles_to_ns(spec.cadence_cycles);
            if cadence <= 0.0 {
                return 0.0;
            }
            rate_per_ns += 1.0 / cadence;
        }
        if rate_per_ns > 0.0 {
            1.0 / rate_per_ns
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> RuntimeConfig {
        let mut config = RuntimeConfig::new(3);
        config.rounds = 200;
        config.workers = 2;
        config.cadence_cycles = 0;
        config.queue_capacity = 64;
        config
    }

    #[test]
    fn paper_default_cadence_is_400ns() {
        let config = RuntimeConfig::new(5);
        assert!(
            (config.cadence_ns() - 400.0).abs() < 0.5,
            "{}",
            config.cadence_ns()
        );
    }

    #[test]
    fn unpaced_config_has_zero_cadence() {
        let config = fast_config();
        assert_eq!(config.cadence_ns(), 0.0);
    }

    #[test]
    fn aggregate_cadence_combines_arrival_rates() {
        let mut config = MachineConfig::new(&[3, 3], 0);
        for spec in &mut config.lattices {
            spec.cadence_cycles = RuntimeConfig::PAPER_CADENCE_CYCLES;
        }
        // Two 400 ns streams arrive every 200 ns in aggregate.
        assert!((config.aggregate_cadence_ns() - 200.0).abs() < 0.5);
        config.lattices[0].cadence_cycles = 0;
        assert_eq!(config.aggregate_cadence_ns(), 0.0);
    }

    #[test]
    fn single_lattice_config_is_a_one_entry_machine() {
        let config = fast_config();
        let machine: MachineConfig = config.into();
        assert_eq!(machine.lattices.len(), 1);
        assert_eq!(machine.lattices[0].distance, 3);
        assert_eq!(machine.lattices[0].rounds, 200);
        assert_eq!(machine.workers, config.workers);
        assert_eq!(machine.aggregate_cadence_ns(), config.cadence_ns());
    }
}
