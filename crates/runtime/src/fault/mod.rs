//! Deterministic fault injection and the run's fault ledger.
//!
//! A [`FaultPlan`] is a declarative schedule of hostile events — worker
//! crashes, in-flight packet corruption, burst-noise episodes, credit-channel
//! stalls — keyed entirely by *logical* run coordinates (worker id × rounds
//! decoded, lattice id × round index, channel index × round index), never by
//! wall clock or extra randomness.  The same plan against the same seeded
//! machine therefore injects the same faults at the same points every run,
//! which is what lets the recovery tests demand byte-identical frames.
//!
//! The plan is carried by
//! [`MachineConfig::fault`](crate::config::MachineConfig) and armed as a
//! [`FaultInjector`] inside the pipeline graph.  The injector's hooks sit on
//! the producer and worker hot paths but are engineered to cost nothing when
//! the plan is empty: every hook short-circuits on a pre-computed emptiness
//! check, performs no allocation either way, and takes no locks (arming is a
//! compare-and-swap per scheduled fault).  The bench suite's allocation
//! guard runs the full pipeline with an empty plan to pin this.
//!
//! What happened under fire is reconciled in the [`FaultReport`] attached to
//! every [`RuntimeReport`](crate::telemetry::RuntimeReport): injected counts
//! (from the injector's own books) versus observed counts (from the event
//! journal and runtime counters).  [`FaultReport::reconciled`] is the
//! self-healing contract in one predicate — every crash recovered by a
//! restart, every poisoned packet quarantined, every scheduled burst seen
//! starting and ending.

use crate::obs::EventCounts;
use crate::source::BurstOverlay;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Kill one worker once it has committed a given number of rounds.
///
/// The crash fires at a batch boundary (no records are in flight inside the
/// worker when it dies), as a panic unwound to the worker's supervisor,
/// which restarts the decode stage — re-`prepare`-ing its decoders — over
/// the same frame shard.  Each scheduled crash fires at most once, so the
/// replacement does not immediately re-crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The worker to kill.
    pub worker_id: usize,
    /// Fire once the worker has committed at least this many rounds.
    pub after_decoded: u64,
}

/// Flip one bit of one lattice round's encoded record after admission, while
/// it is "on the wire".
///
/// The poisoned record still travels to a worker, whose codec rejects it
/// (header check or checksum trailer) and quarantines it; the producer
/// accounts the round as shed at injection time so the frame and residual
/// books stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionFault {
    /// The lattice whose round is poisoned.
    pub lattice_id: u32,
    /// The round (within that lattice's stream) to poison.
    pub round: u64,
    /// Word index to flip, reduced modulo the record length.
    pub word: usize,
    /// Bit index to flip, reduced modulo 64.
    pub bit: u32,
}

/// Blanket one lattice with a burst-noise episode (see [`BurstOverlay`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstFault {
    /// The lattice the episode covers.
    pub lattice_id: u32,
    /// The episode's window and amplification.
    pub overlay: BurstOverlay,
}

/// Make one credit channel refuse the producer's sends for a while — a dead
/// or wedged consumer, as seen from the send side.
///
/// The stall arms the first time the producer routes a round to the channel
/// at or after `from_round` (machine-wide emission index) and holds for
/// `duration_ns` of wall-clock time; `u64::MAX` never releases, which is how
/// the watchdog's force-shed degradation path is exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallFault {
    /// The channel that refuses sends.
    pub channel: usize,
    /// Machine-wide emission index at which the stall arms.
    pub from_round: u64,
    /// How long the channel stays dead once armed (`u64::MAX` = forever).
    pub duration_ns: u64,
}

/// A deterministic schedule of injectable faults for one run.
///
/// Empty by default (and in every config built by the public constructors):
/// a plan-free run pays nothing for the hooks.  Build one with the
/// fluent helpers:
///
/// ```rust
/// use nisqplus_runtime::fault::FaultPlan;
/// use nisqplus_runtime::source::BurstOverlay;
///
/// let plan = FaultPlan::default()
///     .crash_worker(1, 10)
///     .corrupt_record(0, 25, 2, 17)
///     .burst(2, BurstOverlay { start_round: 40, rounds: 20, factor: 30.0 })
///     .stall_channel(0, 100, 5_000_000);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled worker crashes.
    pub crashes: Vec<CrashFault>,
    /// Scheduled packet corruptions.
    pub corruptions: Vec<CorruptionFault>,
    /// Scheduled burst-noise episodes.
    pub bursts: Vec<BurstFault>,
    /// Scheduled credit-channel stalls.
    pub stalls: Vec<StallFault>,
}

impl FaultPlan {
    /// Schedules a worker crash once `worker_id` has committed
    /// `after_decoded` rounds.
    #[must_use]
    pub fn crash_worker(mut self, worker_id: usize, after_decoded: u64) -> Self {
        self.crashes.push(CrashFault {
            worker_id,
            after_decoded,
        });
        self
    }

    /// Schedules a single-bit corruption of `(lattice_id, round)`'s encoded
    /// record.
    #[must_use]
    pub fn corrupt_record(mut self, lattice_id: u32, round: u64, word: usize, bit: u32) -> Self {
        self.corruptions.push(CorruptionFault {
            lattice_id,
            round,
            word,
            bit,
        });
        self
    }

    /// Schedules a burst-noise episode blanketing `lattice_id`.
    #[must_use]
    pub fn burst(mut self, lattice_id: u32, overlay: BurstOverlay) -> Self {
        self.bursts.push(BurstFault {
            lattice_id,
            overlay,
        });
        self
    }

    /// Schedules a credit-channel stall.
    #[must_use]
    pub fn stall_channel(mut self, channel: usize, from_round: u64, duration_ns: u64) -> Self {
        self.stalls.push(StallFault {
            channel,
            from_round,
            duration_ns,
        });
        self
    }

    /// `true` when the plan schedules nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.corruptions.is_empty()
            && self.bursts.is_empty()
            && self.stalls.is_empty()
    }

    /// The burst overlay scheduled for `lattice_id`, if any (the first one,
    /// when several are scheduled).  The engine's residual replay uses this
    /// to regenerate a bursty lattice's error stream exactly.
    #[must_use]
    pub fn burst_for(&self, lattice_id: u32) -> Option<BurstOverlay> {
        self.bursts
            .iter()
            .find(|b| b.lattice_id == lattice_id)
            .map(|b| b.overlay)
    }
}

/// The substring every injected crash panic carries, so test harnesses can
/// tell scheduled panics from real bugs (see
/// [`silence_injected_crash_panics`]).
pub const CRASH_PANIC_MARKER: &str = "fault-injected worker crash";

/// Installs (once, process-wide) a panic hook that swallows the default
/// stderr report for panics carrying [`CRASH_PANIC_MARKER`], delegating
/// everything else to the previous hook.  Injected crashes are *scheduled*
/// events; without this the recovery proptests would spray hundreds of
/// backtraces for panics that are the test passing.
pub fn silence_injected_crash_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|message| message.contains(CRASH_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// One scheduled fault's arm-once latch plus delivery bookkeeping.
#[derive(Debug, Default)]
struct Armed {
    fired: AtomicBool,
}

impl Armed {
    /// Latches the fault: `true` exactly once.
    fn fire(&self) -> bool {
        !self.fired.swap(true, Ordering::AcqRel)
    }
}

/// The armed, thread-shared runtime form of a [`FaultPlan`].
///
/// Owned by the pipeline graph and handed by reference to the source and
/// every worker seat.  All hooks are lock- and allocation-free; with an
/// empty plan each is a branch on a pre-computed flag.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    crash_armed: Vec<Armed>,
    corruption_armed: Vec<Armed>,
    /// Wall-clock nanoseconds (run epoch) at which each stall armed;
    /// `u64::MAX` = not yet armed.
    stall_started: Vec<AtomicU64>,
    corruptions_delivered: AtomicU64,
    crashes_fired: AtomicU64,
    stalls_fired: AtomicU64,
}

impl FaultInjector {
    /// Arms `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            crash_armed: plan.crashes.iter().map(|_| Armed::default()).collect(),
            corruption_armed: plan.corruptions.iter().map(|_| Armed::default()).collect(),
            stall_started: plan
                .stalls
                .iter()
                .map(|_| AtomicU64::new(u64::MAX))
                .collect(),
            corruptions_delivered: AtomicU64::new(0),
            crashes_fired: AtomicU64::new(0),
            stalls_fired: AtomicU64::new(0),
            plan,
        }
    }

    /// An injector that injects nothing (the default for every run that
    /// doesn't ask for faults).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(FaultPlan::default())
    }

    /// The plan this injector was armed with.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Worker hook, called at each batch boundary: `true` when a scheduled
    /// crash for `worker_id` should fire now (the worker has committed
    /// `decoded` rounds).  Fires each scheduled crash at most once, so the
    /// supervisor's replacement survives.
    #[must_use]
    pub fn should_crash(&self, worker_id: usize, decoded: u64) -> bool {
        if self.plan.crashes.is_empty() {
            return false;
        }
        for (fault, armed) in self.plan.crashes.iter().zip(&self.crash_armed) {
            if fault.worker_id == worker_id && decoded >= fault.after_decoded && armed.fire() {
                self.crashes_fired.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Producer hook: the `(word, bit)` to flip in `(lattice_id, round)`'s
    /// encoded record, or `None` (the overwhelmingly common case).  Each
    /// scheduled corruption is returned at most once.
    #[must_use]
    pub fn corrupt(&self, lattice_id: u32, round: u64) -> Option<(usize, u32)> {
        if self.plan.corruptions.is_empty() {
            return None;
        }
        for (fault, armed) in self.plan.corruptions.iter().zip(&self.corruption_armed) {
            if fault.lattice_id == lattice_id && fault.round == round && armed.fire() {
                return Some((fault.word, fault.bit));
            }
        }
        None
    }

    /// Producer hook: records that a poisoned record actually reached a
    /// channel (a corrupted round shed before the wire never gets here, and
    /// correspondingly never produces a quarantine).
    pub fn corruption_delivered(&self) {
        self.corruptions_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// `true` when the plan schedules any channel stalls — the producer's
    /// cheap guard before paying for clock reads on the send path.
    #[must_use]
    pub fn has_stalls(&self) -> bool {
        !self.plan.stalls.is_empty()
    }

    /// Producer hook: whether `channel` currently refuses sends.  Arms any
    /// scheduled stall whose `from_round` has been reached; an armed stall
    /// holds until `duration_ns` of wall clock has passed since arming.
    #[must_use]
    pub fn stall_active(&self, channel: usize, emitted_total: u64, elapsed_ns: u64) -> bool {
        for (fault, started) in self.plan.stalls.iter().zip(&self.stall_started) {
            if fault.channel != channel || emitted_total < fault.from_round {
                continue;
            }
            let armed_at = match started.compare_exchange(
                u64::MAX,
                elapsed_ns,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.stalls_fired.fetch_add(1, Ordering::Relaxed);
                    elapsed_ns
                }
                Err(existing) => existing,
            };
            if elapsed_ns < armed_at.saturating_add(fault.duration_ns) {
                return true;
            }
        }
        false
    }

    /// The injector's own books: how many scheduled faults actually fired.
    #[must_use]
    pub fn snapshot(&self) -> FaultInjections {
        FaultInjections {
            crashes: self.crashes_fired.load(Ordering::Relaxed),
            corruptions: self.corruptions_delivered.load(Ordering::Relaxed),
            stalls: self.stalls_fired.load(Ordering::Relaxed),
        }
    }
}

/// How many scheduled faults actually fired, from the injector's own books —
/// the "injected" side of the [`FaultReport`] reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjections {
    /// Worker crashes fired.
    pub crashes: u64,
    /// Poisoned records that reached a channel.
    pub corruptions: u64,
    /// Channel stalls armed.
    pub stalls: u64,
}

/// The run's fault ledger: what was injected, what the runtime observed, and
/// whether the two sides reconcile — attached to every
/// [`RuntimeReport`](crate::telemetry::RuntimeReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Whether the run carried a non-empty [`FaultPlan`].
    pub enabled: bool,
    /// Worker crashes the injector fired.
    pub injected_crashes: u64,
    /// Worker crashes the supervisors caught (journal `worker_crash`).
    pub observed_crashes: u64,
    /// Worker restarts the supervisors performed (journal `worker_restart`).
    pub worker_restarts: u64,
    /// Poisoned records the injector delivered to a channel.
    pub injected_corruptions: u64,
    /// Records the workers quarantined as undecodable.
    pub quarantined: u64,
    /// Burst episodes the plan scheduled.
    pub planned_bursts: u64,
    /// Burst episodes the source saw begin (journal `burst_start`).
    pub bursts_started: u64,
    /// Burst episodes the source saw end (journal `burst_end`).
    pub bursts_ended: u64,
    /// Channel stalls the injector armed.
    pub injected_stalls: u64,
    /// Rounds the backpressure watchdog force-shed (journal
    /// `watchdog_trip`).
    pub watchdog_trips: u64,
    /// Whether the run finished degraded: the watchdog had to force-shed to
    /// end the run instead of hanging (the report is then a diagnostic, not
    /// a clean measurement).
    pub degraded: bool,
}

impl FaultReport {
    /// Folds the injector's books, the event journal's totals and the
    /// workers' quarantine counter into the ledger.
    #[must_use]
    pub fn assemble(
        plan: &FaultPlan,
        injected: FaultInjections,
        counts: &EventCounts,
        quarantined: u64,
    ) -> Self {
        FaultReport {
            enabled: !plan.is_empty(),
            injected_crashes: injected.crashes,
            observed_crashes: counts.worker_crash,
            worker_restarts: counts.worker_restart,
            injected_corruptions: injected.corruptions,
            quarantined,
            planned_bursts: plan.bursts.len() as u64,
            bursts_started: counts.burst_start,
            bursts_ended: counts.burst_end,
            injected_stalls: injected.stalls,
            watchdog_trips: counts.watchdog_trip,
            degraded: counts.watchdog_trip > 0,
        }
    }

    /// The self-healing contract in one predicate: every injected crash was
    /// observed and answered by exactly one restart, every delivered
    /// poisoned record was quarantined (and nothing else was), and every
    /// scheduled burst was seen starting *and* ending inside the run.
    #[must_use]
    pub fn reconciled(&self) -> bool {
        self.injected_crashes == self.observed_crashes
            && self.observed_crashes == self.worker_restarts
            && self.injected_corruptions == self.quarantined
            && self.bursts_started == self.planned_bursts
            && self.bursts_ended == self.planned_bursts
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} crash(es)/{} restart(s) | {} corrupted → {} quarantined | \
             {}/{} burst(s) started/{} ended | {} stall(s) | {} watchdog trip(s) | {}",
            self.injected_crashes,
            self.worker_restarts,
            self.injected_corruptions,
            self.quarantined,
            self.bursts_started,
            self.planned_bursts,
            self.bursts_ended,
            self.injected_stalls,
            self.watchdog_trips,
            if !self.enabled {
                "clean"
            } else if self.reconciled() {
                "RECONCILED"
            } else {
                "UNRECONCILED"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let injector = FaultInjector::disabled();
        assert!(injector.plan().is_empty());
        assert!(!injector.should_crash(0, 1_000_000));
        assert_eq!(injector.corrupt(0, 0), None);
        assert!(!injector.has_stalls());
        assert!(!injector.stall_active(0, 0, 0));
        assert_eq!(injector.snapshot(), FaultInjections::default());
    }

    #[test]
    fn crash_fires_once_at_its_threshold() {
        let injector = FaultInjector::new(FaultPlan::default().crash_worker(1, 10));
        assert!(!injector.should_crash(1, 9), "below the threshold");
        assert!(!injector.should_crash(0, 50), "wrong worker");
        assert!(injector.should_crash(1, 10));
        assert!(
            !injector.should_crash(1, 11),
            "the replacement must not re-crash"
        );
        assert_eq!(injector.snapshot().crashes, 1);
    }

    #[test]
    fn corruption_targets_one_round_once() {
        let injector = FaultInjector::new(FaultPlan::default().corrupt_record(2, 7, 3, 41));
        assert_eq!(injector.corrupt(2, 6), None);
        assert_eq!(injector.corrupt(1, 7), None);
        assert_eq!(injector.corrupt(2, 7), Some((3, 41)));
        assert_eq!(injector.corrupt(2, 7), None, "armed once");
        // Delivery is the producer's separate call, after the send succeeds.
        assert_eq!(injector.snapshot().corruptions, 0);
        injector.corruption_delivered();
        assert_eq!(injector.snapshot().corruptions, 1);
    }

    #[test]
    fn stall_arms_at_its_round_and_releases_after_its_duration() {
        let injector = FaultInjector::new(FaultPlan::default().stall_channel(1, 5, 1_000));
        assert!(injector.has_stalls());
        assert!(!injector.stall_active(1, 4, 0), "before its round");
        assert!(!injector.stall_active(0, 10, 0), "other channel");
        // Arms at round 5, elapsed 100 ns: dead until 1_100 ns.
        assert!(injector.stall_active(1, 5, 100));
        assert!(injector.stall_active(1, 6, 1_099));
        assert!(!injector.stall_active(1, 7, 1_100), "stall released");
        assert_eq!(injector.snapshot().stalls, 1);
    }

    #[test]
    fn forever_stall_never_releases() {
        let injector = FaultInjector::new(FaultPlan::default().stall_channel(0, 0, u64::MAX));
        assert!(injector.stall_active(0, 0, 0));
        assert!(injector.stall_active(0, 100, u64::MAX - 1));
    }

    #[test]
    fn report_reconciles_matching_books() {
        let plan = FaultPlan::default()
            .crash_worker(0, 5)
            .corrupt_record(1, 3, 0, 1)
            .burst(
                2,
                BurstOverlay {
                    start_round: 10,
                    rounds: 5,
                    factor: 20.0,
                },
            );
        let injected = FaultInjections {
            crashes: 1,
            corruptions: 1,
            stalls: 0,
        };
        let counts = EventCounts {
            worker_crash: 1,
            worker_restart: 1,
            quarantine: 1,
            burst_start: 1,
            burst_end: 1,
            ..EventCounts::default()
        };
        let report = FaultReport::assemble(&plan, injected, &counts, 1);
        assert!(report.enabled);
        assert!(report.reconciled(), "{report}");
        assert!(!report.degraded);

        // A lost restart breaks the ledger.
        let broken = EventCounts {
            worker_restart: 0,
            ..counts
        };
        let report = FaultReport::assemble(&plan, injected, &broken, 1);
        assert!(!report.reconciled());

        // A watchdog trip marks the run degraded without (alone) breaking
        // reconciliation.
        let tripped = EventCounts {
            watchdog_trip: 2,
            ..counts
        };
        let report = FaultReport::assemble(&plan, injected, &tripped, 1);
        assert!(report.degraded);
        assert!(report.reconciled());
    }

    #[test]
    fn display_names_the_verdict() {
        let clean = FaultReport::default();
        assert!(clean.to_string().contains("clean"));
        let mut loud = FaultReport {
            enabled: true,
            ..FaultReport::default()
        };
        assert!(loud.to_string().contains("RECONCILED"));
        loud.injected_crashes = 1;
        assert!(loud.to_string().contains("UNRECONCILED"));
    }
}
