//! The lattice registry: one engine, many logical qubits.
//!
//! The paper's backlog argument (Section III) and the SQV expansion
//! (Figure 10) are about a *machine*, not a single surface-code patch: every
//! logical qubit has its own lattice streaming syndromes every ~400 ns, and
//! the decoder fabric must keep up with all of them at once.  A
//! [`LatticeSet`] registers N lattices — of possibly different distances,
//! noise channels, seeds and cadences — under dense integer ids, which is
//! what the packet header's `lattice_id` field refers to and what the
//! per-lattice telemetry is keyed by.

use crate::source::NoiseSpec;
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::syndrome::PackedSyndrome;
use nisqplus_qec::QecError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything that defines one logical qubit's syndrome stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatticeSpec {
    /// Surface-code distance of this lattice.
    pub distance: usize,
    /// The stochastic error channel driving this lattice's stream.
    pub noise: NoiseSpec,
    /// Seed of this lattice's syndrome stream (independent per lattice; the
    /// same `(distance, noise, seed)` triple always yields the same stream).
    pub seed: u64,
    /// Number of syndrome-generation rounds this lattice streams.
    pub rounds: u64,
    /// Syndrome-generation period in decoder clock cycles (mapped to
    /// nanoseconds by the engine's cycle-time converter).  `0` disables
    /// pacing for this lattice: its rounds are interleaved round-robin with
    /// other unpaced lattices as fast as the producer can generate them.
    pub cadence_cycles: usize,
}

impl LatticeSpec {
    /// A paper-shaped spec: pure dephasing at 3%, 10 000 rounds, one round
    /// per 400 ns.
    #[must_use]
    pub fn new(distance: usize) -> Self {
        LatticeSpec {
            distance,
            noise: NoiseSpec::PureDephasing { p: 0.03 },
            seed: 2020,
            rounds: 10_000,
            cadence_cycles: crate::engine::RuntimeConfig::PAPER_CADENCE_CYCLES,
        }
    }
}

/// A dense registry of lattices served by one engine.
///
/// Lattice ids are indices into the registration order: the first spec gets
/// id 0, the second id 1, and so on.  The set also fixes the wire format of
/// the run — ring records are sized for the *largest* registered lattice
/// (see [`PacketCodec`](crate::packet::PacketCodec)).
#[derive(Debug, Clone)]
pub struct LatticeSet {
    specs: Vec<LatticeSpec>,
    lattices: Vec<Arc<Lattice>>,
}

impl LatticeSet {
    /// Builds and validates the lattices for `specs`, in id order.
    ///
    /// Lattices of equal distance share one underlying [`Lattice`] instance
    /// (the surface-code layout is a pure function of the distance), so
    /// prepared decoder state and scratch arenas keyed by distance are reused
    /// across them.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if any distance is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or any spec streams zero rounds.
    pub fn new(specs: Vec<LatticeSpec>) -> Result<Self, QecError> {
        assert!(
            !specs.is_empty(),
            "a lattice set needs at least one lattice"
        );
        let mut lattices: Vec<Arc<Lattice>> = Vec::with_capacity(specs.len());
        for spec in &specs {
            assert!(spec.rounds > 0, "every lattice streams at least one round");
            let existing = lattices
                .iter()
                .find(|l| l.distance() == spec.distance)
                .cloned();
            let lattice = match existing {
                Some(shared) => shared,
                None => Arc::new(Lattice::new(spec.distance)?),
            };
            lattices.push(lattice);
        }
        Ok(LatticeSet { specs, lattices })
    }

    /// The number of registered lattices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if no lattices are registered (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec registered under `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn spec(&self, lattice_id: usize) -> &LatticeSpec {
        &self.specs[lattice_id]
    }

    /// The lattice registered under `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn lattice(&self, lattice_id: usize) -> &Arc<Lattice> {
        &self.lattices[lattice_id]
    }

    /// Iterates `(lattice_id, spec, lattice)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LatticeSpec, &Arc<Lattice>)> {
        self.specs
            .iter()
            .zip(&self.lattices)
            .enumerate()
            .map(|(id, (spec, lattice))| (id, spec, lattice))
    }

    /// The ancilla count (syndrome bit length) of each lattice, in id order.
    #[must_use]
    pub fn ancilla_bits(&self) -> Vec<usize> {
        self.lattices.iter().map(|l| l.num_ancillas()).collect()
    }

    /// The largest ancilla count across the set — what sizes the ring records.
    #[must_use]
    pub fn max_ancillas(&self) -> usize {
        self.lattices
            .iter()
            .map(|l| l.num_ancillas())
            .max()
            .expect("set is non-empty")
    }

    /// The number of `u64` words the largest lattice's packed syndrome needs.
    #[must_use]
    pub fn max_syndrome_words(&self) -> usize {
        PackedSyndrome::words_for(self.max_ancillas())
    }

    /// Total rounds streamed across all lattices.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.specs.iter().map(|s| s.rounds).sum()
    }

    /// The distinct code distances in the set, ascending.
    #[must_use]
    pub fn distances(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.specs.iter().map(|s| s.distance).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_specs() -> Vec<LatticeSpec> {
        [3, 5, 3, 7]
            .iter()
            .map(|&d| {
                let mut spec = LatticeSpec::new(d);
                spec.rounds = 10;
                spec
            })
            .collect()
    }

    #[test]
    fn ids_follow_registration_order() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.spec(0).distance, 3);
        assert_eq!(set.spec(1).distance, 5);
        assert_eq!(set.spec(3).distance, 7);
        assert_eq!(set.lattice(3).distance(), 7);
        assert_eq!(set.total_rounds(), 40);
        assert_eq!(set.distances(), vec![3, 5, 7]);
        let ids: Vec<usize> = set.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_distances_share_one_lattice_instance() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        assert!(Arc::ptr_eq(set.lattice(0), set.lattice(2)));
        assert!(!Arc::ptr_eq(set.lattice(0), set.lattice(1)));
    }

    #[test]
    fn record_sizing_tracks_the_largest_lattice() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        // d=7: 48 ancillas -> largest syndrome in the set.
        assert_eq!(set.max_ancillas(), set.lattice(3).num_ancillas());
        assert_eq!(
            set.max_syndrome_words(),
            PackedSyndrome::words_for(set.max_ancillas())
        );
        let bits = set.ancilla_bits();
        assert_eq!(bits.len(), 4);
        assert_eq!(bits[0], set.lattice(0).num_ancillas());
    }

    #[test]
    #[should_panic(expected = "at least one lattice")]
    fn empty_set_rejected() {
        let _ = LatticeSet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_round_lattice_rejected() {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 0;
        let _ = LatticeSet::new(vec![spec]);
    }

    #[test]
    fn invalid_distance_is_an_error() {
        assert!(LatticeSet::new(vec![LatticeSpec::new(4)]).is_err());
    }
}
