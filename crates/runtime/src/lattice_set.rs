//! The lattice registry: one engine, many logical qubits.
//!
//! The paper's backlog argument (Section III) and the SQV expansion
//! (Figure 10) are about a *machine*, not a single surface-code patch: every
//! logical qubit has its own lattice streaming syndromes every ~400 ns, and
//! the decoder fabric must keep up with all of them at once.  A
//! [`LatticeSet`] registers N lattices — of possibly different distances,
//! noise channels, seeds and cadences — under dense integer ids, which is
//! what the packet header's `lattice_id` field refers to and what the
//! per-lattice telemetry is keyed by.
//!
//! Each spec's QoS contract (policy, budget, SLO, decoder override) is what
//! the pipeline's [`QosGate`](crate::stage::gate::QosGate) enforces at the
//! admission seam: one gate lane per registered lattice.

use crate::config::PushPolicy;
use crate::source::{BurstOverlay, NoiseSpec};
use nisqplus_decoders::traits::{DecoderFactory, DynDecoder, SharedDecoderFactory};
use nisqplus_qec::lattice::Lattice;
use nisqplus_qec::syndrome::PackedSyndrome;
use nisqplus_qec::QecError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A per-lattice decoder-factory override: this lattice's rounds are decoded
/// by instances built from *this* factory instead of the machine-wide one.
///
/// This is how a machine mixes decoder algorithms — e.g. the exhaustive
/// lookup decoder for its d=3 patches beside union-find for its d=7 patches.
/// Two lattices holding clones of the same `LatticeDecoder` (same underlying
/// `Arc`) share one prepared decoder instance per worker when their
/// distances match; distinct factories always get distinct instances.
///
/// The wrapper exists so [`LatticeSpec`] stays `Clone`/`Debug`/`PartialEq`:
/// factories themselves are opaque, so equality is identity (`Arc::ptr_eq`)
/// and the field is skipped by serialization (a deserialized spec falls back
/// to the machine-wide factory).
#[derive(Clone)]
pub struct LatticeDecoder(SharedDecoderFactory);

impl LatticeDecoder {
    /// Wraps a factory for use as a per-lattice override.
    #[must_use]
    pub fn new(factory: impl DecoderFactory + 'static) -> Self {
        LatticeDecoder(Arc::new(factory))
    }

    /// Wraps an already-shared factory without another allocation.
    #[must_use]
    pub fn from_shared(factory: SharedDecoderFactory) -> Self {
        LatticeDecoder(factory)
    }

    /// Builds one fresh decoder instance from the override's factory.
    #[must_use]
    pub fn build(&self) -> DynDecoder {
        self.0.build()
    }

    /// A token identifying the underlying factory: two overrides with equal
    /// keys share prepared decoder instances (per worker, per distance).
    #[must_use]
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as *const () as usize
    }
}

impl fmt::Debug for LatticeDecoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("LatticeDecoder")
            .field(&format_args!("{:#x}", self.key()))
            .finish()
    }
}

impl PartialEq for LatticeDecoder {
    /// Identity equality: same shared factory, not same algorithm.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Everything that defines one logical qubit's syndrome stream, plus the
/// lattice's quality-of-service contract with the decoder fabric.
///
/// The stream fields (`distance`, `noise`, `seed`, `rounds`,
/// `cadence_cycles`) say what the lattice *produces*; the QoS fields say
/// what the machine owes it when the fabric cannot keep up: whether its
/// rounds may be shed ([`LatticeSpec::push_policy`]), how much outstanding
/// work it may pile up ([`LatticeSpec::queue_budget`]), what shed rate is
/// acceptable ([`LatticeSpec::shed_slo`]), and which decoder serves it
/// ([`LatticeSpec::decoder`]).  All QoS fields default to "inherit the
/// machine-wide setting" / "unlimited"; the builder methods chain:
///
/// ```rust
/// use nisqplus_runtime::{LatticeSpec, PushPolicy};
///
/// let spec = LatticeSpec::new(3)
///     .with_rounds(500)
///     .with_push_policy(PushPolicy::Drop)
///     .with_queue_budget(8)
///     .with_shed_slo(0.05);
/// assert_eq!(spec.push_policy, Some(PushPolicy::Drop));
/// assert_eq!(spec.queue_budget, Some(8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeSpec {
    /// Surface-code distance of this lattice.
    pub distance: usize,
    /// The stochastic error channel driving this lattice's stream.
    pub noise: NoiseSpec,
    /// Seed of this lattice's syndrome stream (independent per lattice; the
    /// same `(distance, noise, seed)` triple always yields the same stream).
    pub seed: u64,
    /// Number of syndrome-generation rounds this lattice streams.
    pub rounds: u64,
    /// Syndrome-generation period in decoder clock cycles (mapped to
    /// nanoseconds by the engine's cycle-time converter).  `0` disables
    /// pacing for this lattice: its rounds are interleaved round-robin with
    /// other unpaced lattices as fast as the producer can generate them.
    pub cadence_cycles: usize,
    /// A physics-plane burst episode blanketing this lattice for a window of
    /// its own rounds: the noise channel's rate is multiplied by the
    /// overlay's factor inside the window.  Part of the stream's replayable
    /// identity (unlike the fault plane's injected corruption, this is noise
    /// the decoder must ride out).  `None` streams the base channel
    /// throughout.
    pub burst: Option<BurstOverlay>,
    /// This lattice's full-queue policy: `Some(Block)` for backpressure
    /// (lossless), `Some(Drop)` for load shedding, `None` to inherit the
    /// machine-wide [`MachineConfig::push_policy`](crate::MachineConfig).
    pub push_policy: Option<PushPolicy>,
    /// Upper bound on this lattice's *outstanding* rounds (accepted by a
    /// ring but not yet decoded).  When the bound is reached the lattice's
    /// effective push policy applies — a `Drop` lattice sheds, a `Block`
    /// lattice stalls the producer — even if the shared rings still have
    /// space, so one low-priority patch cannot monopolize pooled capacity.
    /// `None` means only the shared ring capacity limits it.
    pub queue_budget: Option<usize>,
    /// Shed-rate service-level objective: the highest acceptable fraction of
    /// this lattice's generated rounds that may be shed (`0.0..=1.0`).  The
    /// run never enforces it; the final
    /// [`LatticeReport`](crate::telemetry::LatticeReport) verdicts against
    /// it.  `None` disables the verdict.
    pub shed_slo: Option<f64>,
    /// Per-lattice decoder override; `None` uses the factory passed to
    /// [`StreamingEngine::run`](crate::StreamingEngine::run).  Not
    /// serialized (factories are code, not data).
    #[serde(skip)]
    pub decoder: Option<LatticeDecoder>,
}

impl LatticeSpec {
    /// A paper-shaped spec: pure dephasing at 3%, 10 000 rounds, one round
    /// per 400 ns, machine-default QoS (inherited policy, no budget, no SLO,
    /// machine-wide decoder).
    #[must_use]
    pub fn new(distance: usize) -> Self {
        LatticeSpec {
            distance,
            noise: NoiseSpec::PureDephasing { p: 0.03 },
            seed: 2020,
            rounds: 10_000,
            cadence_cycles: crate::engine::RuntimeConfig::PAPER_CADENCE_CYCLES,
            burst: None,
            push_policy: None,
            queue_budget: None,
            shed_slo: None,
            decoder: None,
        }
    }

    /// Sets the noise channel.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of rounds streamed.
    #[must_use]
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the syndrome-generation cadence in decoder clock cycles (`0`
    /// disables pacing).
    #[must_use]
    pub fn with_cadence_cycles(mut self, cadence_cycles: usize) -> Self {
        self.cadence_cycles = cadence_cycles;
        self
    }

    /// Overlays a burst-noise episode on this lattice's stream (accepts a
    /// runtime [`BurstOverlay`] or a physics-plane
    /// [`BurstEvent`](nisqplus_qec::BurstEvent)).
    #[must_use]
    pub fn with_burst(mut self, burst: impl Into<BurstOverlay>) -> Self {
        self.burst = Some(burst.into());
        self
    }

    /// Overrides the machine-wide push policy for this lattice.
    #[must_use]
    pub fn with_push_policy(mut self, policy: PushPolicy) -> Self {
        self.push_policy = Some(policy);
        self
    }

    /// Caps this lattice's outstanding (accepted-but-undecoded) rounds.
    #[must_use]
    pub fn with_queue_budget(mut self, budget: usize) -> Self {
        self.queue_budget = Some(budget);
        self
    }

    /// Sets the shed-rate SLO this lattice's report is verdicted against.
    #[must_use]
    pub fn with_shed_slo(mut self, max_shed_rate: f64) -> Self {
        self.shed_slo = Some(max_shed_rate);
        self
    }

    /// Assigns this lattice its own decoder factory.
    #[must_use]
    pub fn with_decoder(mut self, factory: impl DecoderFactory + 'static) -> Self {
        self.decoder = Some(LatticeDecoder::new(factory));
        self
    }

    /// Assigns an already-shared decoder factory (lattices holding clones of
    /// the same `Arc` share prepared instances per worker and distance).
    #[must_use]
    pub fn with_shared_decoder(mut self, factory: SharedDecoderFactory) -> Self {
        self.decoder = Some(LatticeDecoder::from_shared(factory));
        self
    }
}

/// A dense registry of lattices served by one engine.
///
/// Lattice ids are indices into the registration order: the first spec gets
/// id 0, the second id 1, and so on.  The set also fixes the wire format of
/// the run — ring records are sized for the *largest* registered lattice
/// (see [`PacketCodec`](crate::packet::PacketCodec)).
#[derive(Debug, Clone)]
pub struct LatticeSet {
    specs: Vec<LatticeSpec>,
    lattices: Vec<Arc<Lattice>>,
}

impl LatticeSet {
    /// Builds and validates the lattices for `specs`, in id order.
    ///
    /// Lattices of equal distance share one underlying [`Lattice`] instance
    /// (the surface-code layout is a pure function of the distance), so
    /// prepared decoder state and scratch arenas keyed by distance are reused
    /// across them.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if any distance is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, any spec streams zero rounds, any queue
    /// budget is zero, or any shed-rate SLO is outside `[0, 1]`.
    pub fn new(specs: Vec<LatticeSpec>) -> Result<Self, QecError> {
        assert!(
            !specs.is_empty(),
            "a lattice set needs at least one lattice"
        );
        let mut lattices: Vec<Arc<Lattice>> = Vec::with_capacity(specs.len());
        for spec in &specs {
            assert!(spec.rounds > 0, "every lattice streams at least one round");
            assert!(
                spec.queue_budget != Some(0),
                "a queue budget of zero rounds would shed or stall every round"
            );
            if let Some(slo) = spec.shed_slo {
                assert!(
                    (0.0..=1.0).contains(&slo),
                    "shed-rate SLO must be a fraction in [0, 1], got {slo}"
                );
            }
            let existing = lattices
                .iter()
                .find(|l| l.distance() == spec.distance)
                .cloned();
            let lattice = match existing {
                Some(shared) => shared,
                None => Arc::new(Lattice::new(spec.distance)?),
            };
            lattices.push(lattice);
        }
        Ok(LatticeSet { specs, lattices })
    }

    /// The number of registered lattices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if no lattices are registered (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec registered under `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn spec(&self, lattice_id: usize) -> &LatticeSpec {
        &self.specs[lattice_id]
    }

    /// The lattice registered under `lattice_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn lattice(&self, lattice_id: usize) -> &Arc<Lattice> {
        &self.lattices[lattice_id]
    }

    /// Iterates `(lattice_id, spec, lattice)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LatticeSpec, &Arc<Lattice>)> {
        self.specs
            .iter()
            .zip(&self.lattices)
            .enumerate()
            .map(|(id, (spec, lattice))| (id, spec, lattice))
    }

    /// The ancilla count (syndrome bit length) of each lattice, in id order.
    #[must_use]
    pub fn ancilla_bits(&self) -> Vec<usize> {
        self.lattices.iter().map(|l| l.num_ancillas()).collect()
    }

    /// The data-qubit count of each lattice, in id order — what sizes the
    /// packed-error payload of an error-carrying
    /// [`PacketCodec`](crate::packet::PacketCodec).
    #[must_use]
    pub fn data_bits(&self) -> Vec<usize> {
        self.lattices.iter().map(|l| l.num_data()).collect()
    }

    /// The largest ancilla count across the set — what sizes the ring records.
    #[must_use]
    pub fn max_ancillas(&self) -> usize {
        self.lattices
            .iter()
            .map(|l| l.num_ancillas())
            .max()
            .expect("set is non-empty")
    }

    /// The number of `u64` words the largest lattice's packed syndrome needs.
    #[must_use]
    pub fn max_syndrome_words(&self) -> usize {
        PackedSyndrome::words_for(self.max_ancillas())
    }

    /// Total rounds streamed across all lattices.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.specs.iter().map(|s| s.rounds).sum()
    }

    /// The distinct code distances in the set, ascending.
    #[must_use]
    pub fn distances(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.specs.iter().map(|s| s.distance).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_specs() -> Vec<LatticeSpec> {
        [3, 5, 3, 7]
            .iter()
            .map(|&d| {
                let mut spec = LatticeSpec::new(d);
                spec.rounds = 10;
                spec
            })
            .collect()
    }

    #[test]
    fn ids_follow_registration_order() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.spec(0).distance, 3);
        assert_eq!(set.spec(1).distance, 5);
        assert_eq!(set.spec(3).distance, 7);
        assert_eq!(set.lattice(3).distance(), 7);
        assert_eq!(set.total_rounds(), 40);
        assert_eq!(set.distances(), vec![3, 5, 7]);
        let ids: Vec<usize> = set.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_distances_share_one_lattice_instance() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        assert!(Arc::ptr_eq(set.lattice(0), set.lattice(2)));
        assert!(!Arc::ptr_eq(set.lattice(0), set.lattice(1)));
    }

    #[test]
    fn record_sizing_tracks_the_largest_lattice() {
        let set = LatticeSet::new(mixed_specs()).unwrap();
        // d=7: 48 ancillas -> largest syndrome in the set.
        assert_eq!(set.max_ancillas(), set.lattice(3).num_ancillas());
        assert_eq!(
            set.max_syndrome_words(),
            PackedSyndrome::words_for(set.max_ancillas())
        );
        let bits = set.ancilla_bits();
        assert_eq!(bits.len(), 4);
        assert_eq!(bits[0], set.lattice(0).num_ancillas());
    }

    #[test]
    #[should_panic(expected = "at least one lattice")]
    fn empty_set_rejected() {
        let _ = LatticeSet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_round_lattice_rejected() {
        let mut spec = LatticeSpec::new(3);
        spec.rounds = 0;
        let _ = LatticeSet::new(vec![spec]);
    }

    #[test]
    fn invalid_distance_is_an_error() {
        assert!(LatticeSet::new(vec![LatticeSpec::new(4)]).is_err());
    }

    #[test]
    fn builders_chain_and_default_to_inherit() {
        use nisqplus_decoders::GreedyMatchingDecoder;
        let plain = LatticeSpec::new(3);
        assert_eq!(plain.push_policy, None);
        assert_eq!(plain.queue_budget, None);
        assert_eq!(plain.shed_slo, None);
        assert!(plain.decoder.is_none());
        let spec = LatticeSpec::new(5)
            .with_noise(NoiseSpec::Depolarizing { p: 0.01 })
            .with_seed(7)
            .with_rounds(123)
            .with_cadence_cycles(0)
            .with_push_policy(PushPolicy::Drop)
            .with_queue_budget(4)
            .with_shed_slo(0.25)
            .with_decoder(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        assert_eq!(spec.distance, 5);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rounds, 123);
        assert_eq!(spec.cadence_cycles, 0);
        assert_eq!(spec.push_policy, Some(PushPolicy::Drop));
        assert_eq!(spec.queue_budget, Some(4));
        assert_eq!(spec.shed_slo, Some(0.25));
        assert_eq!(
            spec.decoder.as_ref().unwrap().build().name(),
            "greedy-matching"
        );
    }

    #[test]
    fn decoder_override_equality_is_identity() {
        use nisqplus_decoders::GreedyMatchingDecoder;
        let shared: SharedDecoderFactory =
            Arc::new(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        let a = LatticeDecoder::from_shared(shared.clone());
        let b = LatticeDecoder::from_shared(shared);
        let c = LatticeDecoder::new(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
        assert!(a != c);
        assert_ne!(a.key(), c.key());
        // Spec clones share the factory and compare equal.
        let mut spec_a = LatticeSpec::new(3);
        spec_a.decoder = Some(a.clone());
        let spec_b = spec_a.clone();
        assert_eq!(spec_a, spec_b);
        let mut spec_c = spec_a.clone();
        spec_c.decoder = Some(c);
        assert!(spec_a != spec_c);
    }

    #[test]
    #[should_panic(expected = "queue budget of zero")]
    fn zero_queue_budget_rejected() {
        let _ = LatticeSet::new(vec![LatticeSpec::new(3).with_queue_budget(0)]);
    }

    #[test]
    #[should_panic(expected = "shed-rate SLO")]
    fn out_of_range_slo_rejected() {
        let _ = LatticeSet::new(vec![LatticeSpec::new(3).with_shed_slo(1.5)]);
    }
}
