//! Live counters and the end-of-run [`RuntimeReport`].
//!
//! The producer and every worker publish their progress through shared
//! atomic counters ([`RuntimeCounters`]), so queue depth, backlog and
//! throughput can be observed *while the stream runs* — both for the machine
//! as a whole and per lattice ([`LatticeCounters`]).  The engine folds the
//! final counter values, the depth timeline and the per-packet latency
//! samples into a [`RuntimeReport`]: aggregate counters, an aggregate
//! backlog-versus-[`BacklogModel`](nisqplus_system::backlog::BacklogModel)
//! comparison, and one [`LatticeReport`] per registered lattice — which
//! patch is falling behind, under which QoS contract (push policy, queue
//! budget, shed-rate SLO verdict), served by which decoder, and, when the
//! residual analysis ran, at what measured logical cost ([`ResidualReport`]).
//!
//! Every field the report prints is documented line by line for operators
//! in `docs/OPERATIONS.md` at the repository root.

use crate::config::PushPolicy;
use crate::obs::{
    bucket_bounds, HistogramSnapshot, JournalSnapshot, MetricSample, MetricsSnapshot,
};
use crate::source::NoiseEpoch;
use crate::stage::StageReport;
use nisqplus_qec::logical::ResidualTally;
use nisqplus_sim::stats::{histogram, quantile_sorted, Summary};
use nisqplus_system::backlog::{BacklogComparison, MeasuredBacklog};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-lattice atomic progress counters (a slice of [`RuntimeCounters`]).
#[derive(Debug, Default)]
pub struct LatticeCounters {
    /// Rounds of this lattice's syndrome data generated.
    pub generated: AtomicU64,
    /// This lattice's packets accepted by a ring.
    pub enqueued: AtomicU64,
    /// This lattice's packets dropped (shed) because the ring was full or
    /// the lattice's queue budget was exhausted.
    pub dropped: AtomicU64,
    /// Producer spin-retries attributable to this lattice: its packet found
    /// the ring full, or its queue budget exhausted, under a blocking policy.
    pub backpressure_spins: AtomicU64,
    /// This lattice's packets decoded and committed to its frame.
    pub decoded: AtomicU64,
    /// Decoded rounds whose residual (error ∘ correction) was classified a
    /// failure — a logical error or an invalid correction — by the
    /// *streaming* residual path
    /// ([`ResidualMode::Streaming`](crate::config::ResidualMode)).  Stays 0
    /// under replay mode (classification happens after the run) and when the
    /// residual analysis is off.
    pub decode_failures: AtomicU64,
    /// Shed rounds whose seeded error was itself a failure (the identity
    /// correction left a logical error), classified live by the producer
    /// under the streaming residual path.  Stays 0 under replay mode.
    pub shed_failures: AtomicU64,
}

impl LatticeCounters {
    /// A point-in-time copy of this lattice's counters.
    #[must_use]
    pub fn snapshot(&self) -> LatticeCounterSnapshot {
        LatticeCounterSnapshot {
            generated: self.generated.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_spins: self.backpressure_spins.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
            shed_failures: self.shed_failures.load(Ordering::Relaxed),
        }
    }

    /// This lattice's current backlog: rounds generated but neither decoded
    /// nor shed (same convention as [`RuntimeCounters::backlog`]).
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.generated
            .load(Ordering::Relaxed)
            .saturating_sub(self.decoded.load(Ordering::Relaxed))
            .saturating_sub(self.dropped.load(Ordering::Relaxed))
    }

    /// This lattice's outstanding rounds: accepted by a ring but not yet
    /// decoded.  This is the quantity a per-lattice
    /// [`queue_budget`](crate::LatticeSpec::queue_budget) bounds.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.enqueued
            .load(Ordering::Relaxed)
            .saturating_sub(self.decoded.load(Ordering::Relaxed))
    }
}

/// Shared atomic progress counters, updated lock-free by all threads.
///
/// The aggregate counters and the per-lattice slices are incremented
/// together, so at quiescence every aggregate flow counter equals the sum of
/// its per-lattice counterparts (pinned by the multi-lattice telemetry
/// tests).
#[derive(Debug, Default)]
pub struct RuntimeCounters {
    /// Rounds of syndrome data generated (whether or not enqueued).
    pub generated: AtomicU64,
    /// Packets accepted by the ring buffer.
    pub enqueued: AtomicU64,
    /// Packets dropped because the ring was full (drop policy only).
    pub dropped: AtomicU64,
    /// Producer spin-retries while the ring was full (block policy only).
    pub backpressure_spins: AtomicU64,
    /// Packets decoded and committed to the Pauli frame.
    pub decoded: AtomicU64,
    /// Worker polls that found the queue empty (decoder idle time).
    pub stall_polls: AtomicU64,
    /// Packets a worker stole from another worker's ring (work stealing).
    pub stolen: AtomicU64,
    /// Decode batches executed (each covering 1..=batch_size packets).
    pub batches: AtomicU64,
    /// Wire records a worker rejected as undecodable (failed header
    /// validation or checksum) and quarantined instead of decoded.
    pub quarantined: AtomicU64,
    /// One counter slice per registered lattice, indexed by lattice id.
    pub per_lattice: Vec<LatticeCounters>,
    /// One counter slice per decode worker, indexed by worker id (empty
    /// when the counters were built without a worker topology — per-worker
    /// attribution is then simply skipped).
    pub per_worker: Vec<WorkerCounters>,
}

impl RuntimeCounters {
    /// Counters for a machine of `num_lattices` lattices, without
    /// per-worker attribution.
    #[must_use]
    pub fn with_lattices(num_lattices: usize) -> Self {
        Self::with_topology(num_lattices, 0)
    }

    /// Counters for a machine of `num_lattices` lattices decoded by
    /// `workers` workers: aggregate, per-lattice *and* per-worker slices.
    #[must_use]
    pub fn with_topology(num_lattices: usize, workers: usize) -> Self {
        RuntimeCounters {
            per_lattice: (0..num_lattices)
                .map(|_| LatticeCounters::default())
                .collect(),
            per_worker: (0..workers).map(|_| WorkerCounters::default()).collect(),
            ..RuntimeCounters::default()
        }
    }

    /// A point-in-time copy of the aggregate counters.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            generated: self.generated.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_spins: self.backpressure_spins.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            stall_polls: self.stall_polls.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// The current aggregate backlog: rounds generated but neither decoded
    /// nor shed.  Dropped rounds are lost, not owed, so they don't count as
    /// outstanding work (under
    /// [`PushPolicy::Block`] nothing is
    /// ever dropped and this is exactly generated minus decoded).
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.generated
            .load(Ordering::Relaxed)
            .saturating_sub(self.decoded.load(Ordering::Relaxed))
            .saturating_sub(self.dropped.load(Ordering::Relaxed))
    }
}

/// A plain-data copy of [`RuntimeCounters`]' aggregate view at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Rounds of syndrome data generated.
    pub generated: u64,
    /// Packets accepted by the ring buffer.
    pub enqueued: u64,
    /// Packets dropped because the ring was full.
    pub dropped: u64,
    /// Producer spin-retries while the ring was full.
    pub backpressure_spins: u64,
    /// Packets decoded.
    pub decoded: u64,
    /// Worker polls that found the queue empty.
    pub stall_polls: u64,
    /// Packets a worker stole from another worker's ring.
    pub stolen: u64,
    /// Decode batches executed.
    pub batches: u64,
    /// Wire records rejected as undecodable and quarantined by a worker.
    pub quarantined: u64,
}

impl CounterSnapshot {
    /// Mean packets decoded per batch (0.0 before any batch completes).
    #[must_use]
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.decoded as f64 / self.batches as f64
        }
    }
}

/// Per-worker atomic progress counters (a slice of [`RuntimeCounters`]).
///
/// At quiescence the per-worker sums equal their aggregate counterparts —
/// `Σ decoded == decoded`, `Σ stolen == stolen`, `Σ batches == batches`,
/// `Σ stall_polls == stall_polls` — pinned by the engine's telemetry tests.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Packets this worker decoded and committed to its frame shard.
    pub decoded: AtomicU64,
    /// Packets this worker stole from a foreign channel.
    pub stolen: AtomicU64,
    /// Decode batches this worker executed.
    pub batches: AtomicU64,
    /// Polls by this worker that found every channel empty.
    pub stall_polls: AtomicU64,
}

impl WorkerCounters {
    /// A point-in-time copy of this worker's counters.
    #[must_use]
    pub fn snapshot(&self) -> WorkerCounterSnapshot {
        WorkerCounterSnapshot {
            decoded: self.decoded.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            stall_polls: self.stall_polls.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of one worker's [`WorkerCounters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkerCounterSnapshot {
    /// Packets this worker decoded.
    pub decoded: u64,
    /// Packets this worker stole from a foreign channel.
    pub stolen: u64,
    /// Decode batches this worker executed.
    pub batches: u64,
    /// Polls by this worker that found every channel empty.
    pub stall_polls: u64,
}

impl WorkerCounterSnapshot {
    /// Mean packets this worker decoded per batch (0.0 before any batch
    /// completes).
    #[must_use]
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.decoded as f64 / self.batches as f64
        }
    }
}

/// A plain-data copy of one lattice's [`LatticeCounters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatticeCounterSnapshot {
    /// Rounds of this lattice's syndrome data generated.
    pub generated: u64,
    /// This lattice's packets accepted by a ring.
    pub enqueued: u64,
    /// This lattice's packets dropped (shed) because the ring was full or
    /// its queue budget was exhausted.
    pub dropped: u64,
    /// Producer spin-retries attributable to this lattice under a blocking
    /// policy.
    pub backpressure_spins: u64,
    /// This lattice's packets decoded.
    pub decoded: u64,
    /// Decoded rounds classified a residual failure by the streaming path
    /// (0 under replay mode or with the analysis off).
    pub decode_failures: u64,
    /// Shed rounds classified a residual failure by the streaming path
    /// (0 under replay mode or with the analysis off).
    pub shed_failures: u64,
}

impl LatticeCounterSnapshot {
    /// Total rounds the streaming residual path has flagged as failures so
    /// far, decoded and shed together.
    #[must_use]
    pub fn live_failures(&self) -> u64 {
        self.decode_failures + self.shed_failures
    }

    /// The live residual failure rate: flagged failures over rounds
    /// generated so far.  0.0 before any round is generated, and 0.0 for
    /// the whole run under replay mode (the live counters never move there).
    #[must_use]
    pub fn live_failure_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.live_failures() as f64 / self.generated as f64
        }
    }
}

/// One point of the queue-depth/backlog timeline, sampled by the source
/// stage's depth sink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthSample {
    /// The number of rounds emitted across all lattices when the sample was
    /// taken (for a single lattice this is its generation round).
    pub round: u64,
    /// Nanoseconds since the engine epoch.
    pub elapsed_ns: u64,
    /// Packets sitting in the channels (all lattices).
    pub queue_depth: u64,
    /// Rounds generated but not yet decoded (queue depth plus in-flight).
    pub backlog: u64,
    /// Each lattice's own backlog at this instant, indexed by lattice id —
    /// the breakdown that says *which* patch the aggregate backlog belongs
    /// to.  Sums to [`DepthSample::backlog`] up to sampling skew.
    pub per_lattice_backlog: Vec<u64>,
}

/// One point of a single lattice's backlog timeline (the per-lattice slice
/// of the [`DepthSample`] series, surfaced in
/// [`LatticeReport::backlog_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatticeDepthSample {
    /// The machine-wide emission count when the sample was taken (the same
    /// clock as [`DepthSample::round`], so per-lattice series align).
    pub round: u64,
    /// Nanoseconds since the engine epoch.
    pub elapsed_ns: u64,
    /// This lattice's rounds generated but neither decoded nor shed at this
    /// instant.
    pub backlog: u64,
}

/// Tail quantiles of a latency distribution, nanoseconds.
///
/// Exact when computed from raw samples ([`LatencyProfile::of`]); exact to
/// within one log-bucket width when read from a bounded-memory
/// [`HistogramSnapshot`] ([`LatencyProfile::from_histogram`]).  All four
/// values are finite by construction (0.0 for an empty sample set).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Latency samples summarized into mean/extrema, tail quantiles, plus a
/// histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Count, mean, standard deviation and extrema, in nanoseconds.
    pub summary: Summary,
    /// Tail quantiles, in nanoseconds.
    pub quantiles: LatencyQuantiles,
    /// Histogram bin edges in nanoseconds (empty when no samples).  Fixed
    /// width from [`LatencyProfile::of`]; log-bucketed (geometric widths)
    /// from [`LatencyProfile::from_histogram`].
    pub histogram_edges: Vec<f64>,
    /// Estimated probability mass per bin (empty when no samples).
    pub histogram_density: Vec<f64>,
}

impl LatencyProfile {
    /// Number of histogram bins used by [`LatencyProfile::of`].
    pub const BINS: usize = 20;

    /// Summarizes a sample of latencies (nanoseconds).  Non-finite samples
    /// are ignored (see [`Summary::of`]); every field of the result is
    /// finite, whatever the input.
    #[must_use]
    pub fn of(samples_ns: &[f64]) -> Self {
        let summary = Summary::of(samples_ns);
        // `max <= 0.0` covers both the all-zero sample set (a histogram
        // over the degenerate range [0, 0) is undefined — `histogram`
        // asserts max > 0) and any all-non-positive set; the summary still
        // carries count/mean/extrema, only the shape is omitted.
        let (histogram_edges, histogram_density) = if summary.count == 0 || summary.max <= 0.0 {
            (Vec::new(), Vec::new())
        } else {
            // Nudge the range so the maximum sample lands inside the last bin.
            histogram(samples_ns, Self::BINS, summary.max * (1.0 + 1e-9))
        };
        let mut sorted: Vec<f64> = samples_ns
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        LatencyProfile {
            summary,
            quantiles: LatencyQuantiles {
                p50: quantile_sorted(&sorted, 0.5),
                p90: quantile_sorted(&sorted, 0.9),
                p99: quantile_sorted(&sorted, 0.99),
                p999: quantile_sorted(&sorted, 0.999),
            },
            histogram_edges,
            histogram_density,
        }
    }

    /// Builds a profile from a bounded-memory [`HistogramSnapshot`] — the
    /// hot path records into a
    /// [`LogHistogram`](crate::obs::LogHistogram) instead of an unbounded
    /// sample vector, and this is where the recorded shape becomes a
    /// report.  Count, sum (hence mean) and extrema are exact; standard
    /// deviation and quantiles are exact to within one log-bucket width.
    /// The histogram edges/density cover the occupied bucket range with
    /// the log buckets' own geometric widths.
    #[must_use]
    pub fn from_histogram(hist: &HistogramSnapshot) -> Self {
        let summary = Summary {
            count: hist.count as usize,
            mean: hist.mean_ns(),
            std_dev: hist.std_dev_ns(),
            min: hist.min_ns as f64,
            max: hist.max_ns as f64,
        };
        let occupied: Vec<usize> = hist
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        let (histogram_edges, histogram_density) = match (occupied.first(), occupied.last()) {
            (Some(&first), Some(&last)) => {
                let mut edges: Vec<f64> =
                    (first..=last).map(|i| bucket_bounds(i).0 as f64).collect();
                edges.push(bucket_bounds(last).1 as f64);
                let total = hist.count as f64;
                let density: Vec<f64> = (first..=last)
                    .map(|i| hist.counts[i] as f64 / total)
                    .collect();
                (edges, density)
            }
            _ => (Vec::new(), Vec::new()),
        };
        LatencyProfile {
            summary,
            quantiles: LatencyQuantiles {
                p50: hist.quantile_ns(0.5),
                p90: hist.quantile_ns(0.9),
                p99: hist.quantile_ns(0.99),
                p999: hist.quantile_ns(0.999),
            },
            histogram_edges,
            histogram_density,
        }
    }
}

/// The measured logical cost of one lattice's run, split by how each round
/// was served: decoded rounds got the decoder's correction, shed rounds an
/// identity correction (nothing was done about whatever error occurred).
///
/// Produced by the engine's end-of-run residual analysis
/// ([`MachineConfig::analyze_residuals`](crate::MachineConfig)): the
/// lattice's seeded error stream is replayed and every round's residual
/// (error composed with the applied correction) is classified with
/// [`nisqplus_qec::logical::classify_residual`] over both sectors.  This is
/// what turns "we shed 12% of rounds" into "shedding corrupted 6.3% of
/// rounds" — the drop-policy error analysis the backlog paper's argument
/// calls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResidualReport {
    /// Residual classifications of the rounds a decoder actually served.
    pub decoded: ResidualTally,
    /// Residual classifications of the shed rounds (identity corrections).
    /// Empty under pure backpressure.
    pub shed: ResidualTally,
}

impl ResidualReport {
    /// Both tallies folded together: the lattice's overall residual record.
    #[must_use]
    pub fn total(&self) -> ResidualTally {
        let mut total = self.decoded;
        total.absorb(&self.shed);
        total
    }

    /// The lattice's overall measured failure rate (logical errors plus
    /// invalid corrections, over all rounds — decoded and shed).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.total().failure_rate()
    }

    /// How much worse a shed round is than a decoded one: the shed failure
    /// rate minus the decoded failure rate.  This is the *marginal* logical
    /// cost of shedding one round, measured rather than assumed; `None`
    /// when nothing was shed (the quantity is undefined for a lossless
    /// lattice).
    #[must_use]
    pub fn shed_penalty(&self) -> Option<f64> {
        if self.shed.rounds == 0 {
            None
        } else {
            Some(self.shed.failure_rate() - self.decoded.failure_rate())
        }
    }
}

/// One lattice's slice of the run telemetry: the per-patch breakdown that
/// says *which* logical qubit is falling behind, under *which* QoS contract,
/// served by *which* decoder, and at what measured logical cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeReport {
    /// The lattice's id in the engine's registry.
    pub lattice_id: usize,
    /// The lattice's code distance.
    pub distance: usize,
    /// Name of the decoder that served this lattice (the per-lattice
    /// override's product if one was set, else the machine-wide factory's).
    pub decoder: String,
    /// The push policy this lattice ran under (its override, or the
    /// machine-wide policy it inherited).
    pub push_policy: PushPolicy,
    /// Whether [`LatticeReport::push_policy`] came from the lattice's own
    /// spec (`false` = inherited from the machine config).
    pub push_policy_overridden: bool,
    /// This lattice's outstanding-round budget, if one was configured.
    pub queue_budget: Option<usize>,
    /// This lattice's shed-rate SLO, if one was configured.
    pub shed_slo: Option<f64>,
    /// The end-of-run residual analysis, when the run requested it.
    pub residual: Option<ResidualReport>,
    /// Rounds this lattice actually streamed (fewer than configured when a
    /// scripted retirement truncated its stream or a scripted add never
    /// fired).
    pub rounds: u64,
    /// This lattice's noise timeline: one epoch per homogeneous stretch of
    /// its error channel, cut at every scripted rate change and burst
    /// boundary.  A single full-run epoch for stationary noise; empty on
    /// trace replays (the trace is the record).
    pub noise_epochs: Vec<NoiseEpoch>,
    /// This lattice's nominal syndrome-generation cadence in nanoseconds per
    /// round (`0.0` when unpaced).
    pub cadence_ns: f64,
    /// Measured mean inter-arrival time between this lattice's rounds, in
    /// nanoseconds.
    pub inter_arrival_ns: f64,
    /// Final values of this lattice's counters.
    pub counters: LatticeCounterSnapshot,
    /// This lattice's backlog over time: the per-lattice slice of the
    /// down-sampled depth timeline, so operators see *when* this patch fell
    /// behind, not just that it did.
    pub backlog_timeline: Vec<LatticeDepthSample>,
    /// This lattice's backlog when *its* generation stopped: its rounds
    /// generated but neither decoded nor dropped at that instant.
    pub final_backlog: u64,
    /// Per-packet service time for this lattice's rounds, in nanoseconds.
    pub decode_latency: LatencyProfile,
    /// End-to-end latency from generation to committed correction for this
    /// lattice's rounds, in nanoseconds.
    pub total_latency: LatencyProfile,
    /// This lattice's measured backlog trajectory in model terms.  The
    /// service time is the lattice's mean decode time divided by the full
    /// pool width, i.e. it assumes the pool is entirely available to this
    /// lattice — an optimistic capacity bound when other lattices compete
    /// for the same workers.
    pub measured: MeasuredBacklog,
    /// This lattice's measured growth versus its own closed-form
    /// [`BacklogModel`](nisqplus_system::backlog::BacklogModel) at the
    /// measured rates.
    pub comparison: BacklogComparison,
}

/// The shared BOUNDED/GROWING verdict: no drops, and the backlog left when
/// generation stopped is below one twentieth of the rounds streamed (a
/// transient mid-run spike that drained before the end does not count as
/// unbounded growth).  Used by both the aggregate and the per-lattice
/// reports so the two verdicts can never drift apart.
fn backlog_stayed_bounded(dropped: u64, final_backlog: u64, rounds: u64) -> bool {
    dropped == 0 && final_backlog * 20 < rounds.max(1)
}

/// The shared one-word queue verdict: `SHEDDING` as soon as anything was
/// dropped, otherwise `BOUNDED`/`GROWING` from [`backlog_stayed_bounded`].
/// One helper for both report levels so they can never drift apart.
fn queue_verdict(dropped: u64, stayed_bounded: bool) -> &'static str {
    if dropped > 0 {
        "SHEDDING"
    } else if stayed_bounded {
        "BOUNDED"
    } else {
        "GROWING"
    }
}

impl LatticeReport {
    /// Whether this lattice's queue stayed bounded: none of its packets were
    /// dropped, and the backlog left when its generation stopped is small
    /// compared to its number of rounds.
    #[must_use]
    pub fn queue_stayed_bounded(&self) -> bool {
        backlog_stayed_bounded(self.counters.dropped, self.final_backlog, self.rounds)
    }

    /// The fraction of this lattice's generated rounds that were shed.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.counters.generated == 0 {
            0.0
        } else {
            self.counters.dropped as f64 / self.counters.generated as f64
        }
    }

    /// The shed-rate SLO verdict: `Some(true)` when a SLO is configured and
    /// the measured shed rate is within it, `Some(false)` when it is
    /// violated, `None` when no SLO was configured.
    #[must_use]
    pub fn meets_shed_slo(&self) -> Option<bool> {
        self.shed_slo.map(|slo| self.shed_rate() <= slo)
    }

    /// The one-word queue verdict the report prints: `SHEDDING` when any of
    /// this lattice's rounds were dropped, otherwise `BOUNDED`/`GROWING`
    /// from [`LatticeReport::queue_stayed_bounded`].
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        queue_verdict(self.counters.dropped, self.queue_stayed_bounded())
    }
}

/// The full telemetry of one streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Name of the decoder the workers ran.
    pub decoder: String,
    /// Number of lattices (logical qubits) served by the run.
    pub num_lattices: usize,
    /// The distinct code distances served, ascending.
    pub distances: Vec<usize>,
    /// Number of decoder worker threads.
    pub workers: usize,
    /// Upper bound on packets decoded per batch (the configured window `k`).
    pub batch_size: usize,
    /// Total rounds of syndrome data generated across all lattices.
    pub rounds: u64,
    /// Nominal *aggregate* inter-arrival time in nanoseconds per round
    /// across the machine (`1 / Σ 1/cadence_i`); `0.0` if any lattice is
    /// unpaced.  For a single lattice this is its cadence.
    pub cadence_ns: f64,
    /// Measured mean inter-arrival time between rounds (all lattices), in
    /// nanoseconds.
    pub inter_arrival_ns: f64,
    /// Wall-clock duration of the whole run (generation plus drain), seconds.
    pub elapsed_s: f64,
    /// Final aggregate counter values.
    pub counters: CounterSnapshot,
    /// Queue depth / backlog over time (down-sampled, all lattices).
    pub depth_timeline: Vec<DepthSample>,
    /// Largest queue depth observed on the timeline.
    pub max_queue_depth: u64,
    /// Aggregate backlog when generation stopped: rounds generated but
    /// neither decoded nor dropped (matches [`RuntimeCounters::backlog`];
    /// under the blocking push policy nothing is dropped, so it is generated
    /// minus decoded).
    pub final_backlog: u64,
    /// Decoded packets per second of wall-clock time.
    pub throughput_per_s: f64,
    /// Per-packet service time (ns): unpack, both sector decodes, and the
    /// frame commit — the span a worker is occupied per round, which is what
    /// feeds the backlog model's service rate.
    pub decode_latency: LatencyProfile,
    /// End-to-end latency from generation to committed correction (ns).
    pub total_latency: LatencyProfile,
    /// The measured aggregate backlog trajectory in model terms.
    pub measured: MeasuredBacklog,
    /// Measured aggregate growth versus the closed-form backlog model.
    pub comparison: BacklogComparison,
    /// The per-lattice breakdown, indexed by lattice id.
    pub lattices: Vec<LatticeReport>,
    /// Final values of the per-worker counters, indexed by worker id: who
    /// decoded, stole, and idled how much.
    pub worker_counters: Vec<WorkerCounterSnapshot>,
    /// One [`StageReport`] per pipeline stage, in graph order (source,
    /// gate, skid, depth sink, channels, per-worker decode and sink
    /// stages): the credit flow, occupancy and stall picture at every seam.
    pub stages: Vec<StageReport>,
    /// Mid-run samples taken by the observability sampler thread, in time
    /// order (empty when the snapshot cadence is 0).
    pub snapshots: Vec<MetricsSnapshot>,
    /// The event journal's end-of-run state: per-kind/per-severity totals
    /// plus the newest resident events.
    pub journal: JournalSnapshot,
    /// Every registered observability metric by name, read at quiescence
    /// (the machine-readable twin of [`RuntimeReport::stages`]).
    pub metrics: Vec<MetricSample>,
    /// The run's fault ledger: injected versus observed versus recovered,
    /// reconciled exactly (all-zero and `enabled: false` for a plan-free
    /// run).
    pub fault: crate::fault::FaultReport,
}

impl RuntimeReport {
    /// Whether the aggregate queue stayed bounded: no drops, and the backlog
    /// left when generation stopped is small compared to the number of
    /// rounds streamed (a transient mid-run spike that drained before the
    /// end does not count as unbounded growth).
    #[must_use]
    pub fn queue_stayed_bounded(&self) -> bool {
        backlog_stayed_bounded(self.counters.dropped, self.final_backlog, self.rounds)
    }

    /// The ids of lattices whose per-lattice queue did *not* stay bounded —
    /// the "which patch is falling behind" answer.
    #[must_use]
    pub fn lattices_falling_behind(&self) -> Vec<usize> {
        self.lattices
            .iter()
            .filter(|l| !l.queue_stayed_bounded())
            .map(|l| l.lattice_id)
            .collect()
    }

    /// The ids of lattices whose configured shed-rate SLO was violated.
    #[must_use]
    pub fn lattices_violating_slo(&self) -> Vec<usize> {
        self.lattices
            .iter()
            .filter(|l| l.meets_shed_slo() == Some(false))
            .map(|l| l.lattice_id)
            .collect()
    }

    /// The one-word aggregate queue verdict the report prints: `SHEDDING`
    /// when any round was dropped, otherwise `BOUNDED`/`GROWING` from
    /// [`RuntimeReport::queue_stayed_bounded`].
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        queue_verdict(self.counters.dropped, self.queue_stayed_bounded())
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let distances: Vec<String> = self.distances.iter().map(ToString::to_string).collect();
        writeln!(
            f,
            "runtime report: {} | {} lattice(s) d={{{}}} | {} worker(s) | batch<={} | {} rounds",
            self.decoder,
            self.num_lattices,
            distances.join(","),
            self.workers,
            self.batch_size,
            self.rounds,
        )?;
        writeln!(
            f,
            "  generated {} | enqueued {} | decoded {} | dropped {} | elapsed {:.3} s",
            self.counters.generated,
            self.counters.enqueued,
            self.counters.decoded,
            self.counters.dropped,
            self.elapsed_s
        )?;
        writeln!(
            f,
            "  stealing: {} stolen | {} batches (mean fill {:.2})",
            self.counters.stolen,
            self.counters.batches,
            self.counters.mean_batch_fill()
        )?;
        for (worker_id, worker) in self.worker_counters.iter().enumerate() {
            writeln!(
                f,
                "    worker {worker_id}: decoded {} | stolen {} | {} batches (mean fill {:.2}) | {} stalls",
                worker.decoded,
                worker.stolen,
                worker.batches,
                worker.mean_batch_fill(),
                worker.stall_polls,
            )?;
        }
        writeln!(
            f,
            "  throughput {:.0} decodes/s | decode {:.0} ns mean (max {:.0}) | end-to-end {:.0} ns mean",
            self.throughput_per_s,
            self.decode_latency.summary.mean,
            self.decode_latency.summary.max,
            self.total_latency.summary.mean
        )?;
        writeln!(
            f,
            "  decode tail: p50 {:.0} ns | p90 {:.0} ns | p99 {:.0} ns | p999 {:.0} ns",
            self.decode_latency.quantiles.p50,
            self.decode_latency.quantiles.p90,
            self.decode_latency.quantiles.p99,
            self.decode_latency.quantiles.p999,
        )?;
        writeln!(
            f,
            "  obs: {} snapshot(s) | {} event(s) ({} shed, {} stall, {} budget, {} steal, {} flip; {} overwritten)",
            self.snapshots.len(),
            self.journal.published,
            self.journal.counts.shed,
            self.journal.counts.backpressure_stall,
            self.journal.counts.budget_exhausted,
            self.journal.counts.steal,
            self.journal.counts.verdict_flip,
            self.journal.overwritten,
        )?;
        if self.fault.enabled || self.counters.quarantined > 0 || self.fault.watchdog_trips > 0 {
            writeln!(f, "  fault: {}", self.fault)?;
        }
        writeln!(
            f,
            "  queue: max depth {} | final backlog {} rounds | shed {} rounds | {}",
            self.max_queue_depth,
            self.final_backlog,
            self.measured.shed,
            self.verdict()
        )?;
        writeln!(
            f,
            "  backlog growth/round: measured {:.4} vs model {:.4} (f_eff = {:.3}, agreement {:.2}x)",
            self.comparison.measured_growth_per_round,
            self.comparison.predicted_growth_per_round,
            self.comparison.effective_ratio,
            self.comparison.agreement_factor()
        )?;
        for stage in &self.stages {
            writeln!(
                f,
                "  stage {:<12} in {:>8} | out {:>8} | rejected {:>6} | credits {}/{} | peak {:>6} | stalls {}",
                stage.stage,
                stage.accepted,
                stage.emitted,
                stage.rejected,
                stage.credits_consumed,
                stage.credits_issued,
                stage.occupancy_peak,
                stage.stall_cycles,
            )?;
        }
        for lattice in &self.lattices {
            write!(
                f,
                "\n  lattice {:>3} d={} [{}] | {:>8} rounds | decoded {:>8} | shed {:>6} | \
                 backlog {:>6} | growth {:.4} vs {:.4} | {}",
                lattice.lattice_id,
                lattice.distance,
                lattice.decoder,
                lattice.counters.generated,
                lattice.counters.decoded,
                lattice.counters.dropped,
                lattice.final_backlog,
                lattice.comparison.measured_growth_per_round,
                lattice.comparison.predicted_growth_per_round,
                lattice.verdict()
            )?;
            write!(
                f,
                "\n      qos: policy {:?} ({}) | budget {} | shed rate {:.2}% | SLO {}",
                lattice.push_policy,
                if lattice.push_policy_overridden {
                    "per-lattice"
                } else {
                    "inherited"
                },
                match lattice.queue_budget {
                    Some(budget) => budget.to_string(),
                    None => "none".to_string(),
                },
                lattice.shed_rate() * 100.0,
                match (lattice.shed_slo, lattice.meets_shed_slo()) {
                    (Some(slo), Some(true)) => format!("{:.2}% MET", slo * 100.0),
                    (Some(slo), _) => format!("{:.2}% VIOLATED", slo * 100.0),
                    (None, _) => "none".to_string(),
                },
            )?;
            if let Some(residual) = &lattice.residual {
                write!(
                    f,
                    "\n      residual: decoded {}/{} failed ({:.2}%) | shed {}/{} failed \
                     ({:.2}%) | overall {:.3}% (logical {:.3}%)",
                    residual.decoded.failures(),
                    residual.decoded.rounds,
                    residual.decoded.failure_rate() * 100.0,
                    residual.shed.failures(),
                    residual.shed.rounds,
                    residual.shed.failure_rate() * 100.0,
                    residual.failure_rate() * 100.0,
                    residual.total().logical_error_rate() * 100.0,
                )?;
            }
            if lattice.counters.live_failures() > 0 {
                write!(
                    f,
                    "\n      live residual counters: decode failures {} | shed failures {} \
                     | rate {:.3}%",
                    lattice.counters.decode_failures,
                    lattice.counters.shed_failures,
                    lattice.counters.live_failure_rate() * 100.0,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_backlog() {
        let counters = RuntimeCounters::with_lattices(1);
        counters.generated.store(10, Ordering::Relaxed);
        counters.decoded.store(4, Ordering::Relaxed);
        counters.enqueued.store(9, Ordering::Relaxed);
        counters.dropped.store(1, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 10);
        assert_eq!(snap.dropped, 1);
        assert_eq!(counters.backlog(), 5);
    }

    #[test]
    fn per_lattice_counters_track_their_own_backlog() {
        let counters = RuntimeCounters::with_lattices(2);
        counters.per_lattice[0]
            .generated
            .store(10, Ordering::Relaxed);
        counters.per_lattice[0].decoded.store(3, Ordering::Relaxed);
        counters.per_lattice[1]
            .generated
            .store(5, Ordering::Relaxed);
        counters.per_lattice[1].dropped.store(2, Ordering::Relaxed);
        assert_eq!(counters.per_lattice[0].backlog(), 7);
        assert_eq!(counters.per_lattice[1].backlog(), 3);
        let snap = counters.per_lattice[1].snapshot();
        assert_eq!(snap.generated, 5);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.decoded, 0);
    }

    #[test]
    fn live_residual_counters_snapshot_and_rate() {
        let counters = RuntimeCounters::with_lattices(1);
        let lattice = &counters.per_lattice[0];
        lattice.generated.store(100, Ordering::Relaxed);
        lattice.decode_failures.store(3, Ordering::Relaxed);
        lattice.shed_failures.store(2, Ordering::Relaxed);
        let snap = lattice.snapshot();
        assert_eq!(snap.decode_failures, 3);
        assert_eq!(snap.shed_failures, 2);
        assert_eq!(snap.live_failures(), 5);
        assert!((snap.live_failure_rate() - 0.05).abs() < 1e-12);
        // Rate is defined (0.0) before any round is generated.
        assert_eq!(LatticeCounterSnapshot::default().live_failure_rate(), 0.0);
    }

    #[test]
    fn topology_counters_carry_per_worker_slices() {
        let counters = RuntimeCounters::with_topology(2, 3);
        assert_eq!(counters.per_lattice.len(), 2);
        assert_eq!(counters.per_worker.len(), 3);
        counters.per_worker[1].decoded.store(12, Ordering::Relaxed);
        counters.per_worker[1].batches.store(4, Ordering::Relaxed);
        counters.per_worker[1].stolen.store(2, Ordering::Relaxed);
        let snap = counters.per_worker[1].snapshot();
        assert_eq!(snap.decoded, 12);
        assert_eq!(snap.stolen, 2);
        assert!((snap.mean_batch_fill() - 3.0).abs() < 1e-12);
        assert_eq!(counters.per_worker[0].snapshot().mean_batch_fill(), 0.0);
        // The lattice-only constructor skips per-worker attribution.
        assert!(RuntimeCounters::with_lattices(2).per_worker.is_empty());
    }

    #[test]
    fn latency_profile_of_samples() {
        let profile = LatencyProfile::of(&[100.0, 200.0, 300.0]);
        assert_eq!(profile.summary.count, 3);
        assert!((profile.summary.mean - 200.0).abs() < 1e-9);
        assert_eq!(profile.histogram_edges.len(), LatencyProfile::BINS + 1);
        let mass: f64 = profile.histogram_density.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "all samples inside the range");
    }

    #[test]
    fn empty_latency_profile_is_well_formed() {
        let profile = LatencyProfile::of(&[]);
        assert_eq!(profile.summary.count, 0);
        assert!(profile.histogram_edges.is_empty());
        assert!(profile.histogram_density.is_empty());
        for q in [
            profile.quantiles.p50,
            profile.quantiles.p90,
            profile.quantiles.p99,
            profile.quantiles.p999,
        ] {
            assert!(q.is_finite());
            assert_eq!(q, 0.0);
        }
        assert!(profile.summary.mean.is_finite());
        assert!(profile.summary.std_dev.is_finite());
    }

    #[test]
    fn single_sample_profile_pins_every_statistic_to_that_sample() {
        let profile = LatencyProfile::of(&[42.0]);
        assert_eq!(profile.summary.count, 1);
        assert_eq!(profile.summary.mean, 42.0);
        assert_eq!(profile.summary.std_dev, 0.0);
        assert_eq!(profile.summary.min, 42.0);
        assert_eq!(profile.summary.max, 42.0);
        assert_eq!(profile.quantiles.p50, 42.0);
        assert_eq!(profile.quantiles.p999, 42.0);
    }

    #[test]
    fn identical_samples_yield_zero_spread_and_that_value_everywhere() {
        let profile = LatencyProfile::of(&[7.0; 64]);
        assert_eq!(profile.summary.count, 64);
        assert_eq!(profile.summary.std_dev, 0.0);
        assert_eq!(profile.quantiles.p50, 7.0);
        assert_eq!(profile.quantiles.p99, 7.0);
        let mass: f64 = profile.histogram_density.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    /// The documented `max <= 0.0` branch: an all-zero sample set has a
    /// well-defined summary but no histogram shape (the bin range [0, 0)
    /// is degenerate), and nothing is NaN.
    #[test]
    fn all_zero_samples_skip_the_histogram_without_nan() {
        let profile = LatencyProfile::of(&[0.0, 0.0, 0.0]);
        assert_eq!(profile.summary.count, 3);
        assert_eq!(profile.summary.mean, 0.0);
        assert!(profile.histogram_edges.is_empty());
        assert!(profile.quantiles.p50.is_finite());
        assert_eq!(profile.quantiles.p999, 0.0);
    }

    #[test]
    fn non_finite_samples_are_ignored_not_propagated() {
        let profile = LatencyProfile::of(&[f64::NAN, 10.0, f64::INFINITY, 30.0]);
        assert_eq!(profile.summary.count, 2, "only the finite samples count");
        assert!((profile.summary.mean - 20.0).abs() < 1e-9);
        assert!(profile.summary.std_dev.is_finite());
        assert_eq!(profile.summary.max, 30.0);
        assert!(profile.quantiles.p99.is_finite());
    }

    #[test]
    fn histogram_backed_profile_matches_the_recorded_distribution() {
        let hist = crate::obs::LogHistogram::new();
        for v in [100u64, 100, 200, 400, 800] {
            hist.record(v);
        }
        let profile = LatencyProfile::from_histogram(&hist.snapshot());
        assert_eq!(profile.summary.count, 5);
        assert!((profile.summary.mean - 320.0).abs() < 1e-9, "mean is exact");
        assert_eq!(profile.summary.min, 100.0);
        assert_eq!(profile.summary.max, 800.0);
        // Quantiles are within one log-bucket of the exact order statistic.
        assert!(profile.quantiles.p50 >= 96.0 && profile.quantiles.p50 <= 224.0);
        assert!(profile.quantiles.p999 <= 800.0);
        let mass: f64 = profile.histogram_density.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
        assert_eq!(
            profile.histogram_edges.len(),
            profile.histogram_density.len() + 1
        );
    }

    #[test]
    fn histogram_backed_profile_of_nothing_is_all_zero() {
        let profile = LatencyProfile::from_histogram(&crate::obs::HistogramSnapshot::empty());
        assert_eq!(profile.summary.count, 0);
        assert_eq!(profile.summary.mean, 0.0);
        assert!(profile.histogram_edges.is_empty());
        assert_eq!(profile.quantiles.p99, 0.0);
    }
}
