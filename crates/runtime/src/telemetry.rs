//! Live counters and the end-of-run [`RuntimeReport`].
//!
//! The producer and every worker publish their progress through shared
//! atomic counters ([`RuntimeCounters`]), so queue depth, backlog and
//! throughput can be observed *while the stream runs*; the engine folds the
//! final counter values, the depth timeline and the per-packet latency
//! samples into a [`RuntimeReport`], whose headline number is the measured
//! backlog growth compared against the paper's closed-form
//! [`BacklogModel`](nisqplus_system::backlog::BacklogModel) prediction.

use nisqplus_sim::stats::{histogram, Summary};
use nisqplus_system::backlog::{BacklogComparison, MeasuredBacklog};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic progress counters, updated lock-free by all threads.
#[derive(Debug, Default)]
pub struct RuntimeCounters {
    /// Rounds of syndrome data generated (whether or not enqueued).
    pub generated: AtomicU64,
    /// Packets accepted by the ring buffer.
    pub enqueued: AtomicU64,
    /// Packets dropped because the ring was full (drop policy only).
    pub dropped: AtomicU64,
    /// Producer spin-retries while the ring was full (block policy only).
    pub backpressure_spins: AtomicU64,
    /// Packets decoded and committed to the Pauli frame.
    pub decoded: AtomicU64,
    /// Worker polls that found the queue empty (decoder idle time).
    pub stall_polls: AtomicU64,
    /// Packets a worker stole from another worker's ring (work stealing).
    pub stolen: AtomicU64,
    /// Decode batches executed (each covering 1..=batch_size packets).
    pub batches: AtomicU64,
}

impl RuntimeCounters {
    /// A point-in-time copy of all counters.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            generated: self.generated.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_spins: self.backpressure_spins.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            stall_polls: self.stall_polls.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }

    /// The current backlog: rounds generated but neither decoded nor shed.
    /// Dropped rounds are lost, not owed, so they don't count as outstanding
    /// work (under [`PushPolicy::Block`](crate::engine::PushPolicy::Block)
    /// nothing is ever dropped and this is exactly generated minus decoded).
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.generated
            .load(Ordering::Relaxed)
            .saturating_sub(self.decoded.load(Ordering::Relaxed))
            .saturating_sub(self.dropped.load(Ordering::Relaxed))
    }
}

/// A plain-data copy of [`RuntimeCounters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Rounds of syndrome data generated.
    pub generated: u64,
    /// Packets accepted by the ring buffer.
    pub enqueued: u64,
    /// Packets dropped because the ring was full.
    pub dropped: u64,
    /// Producer spin-retries while the ring was full.
    pub backpressure_spins: u64,
    /// Packets decoded.
    pub decoded: u64,
    /// Worker polls that found the queue empty.
    pub stall_polls: u64,
    /// Packets a worker stole from another worker's ring.
    pub stolen: u64,
    /// Decode batches executed.
    pub batches: u64,
}

impl CounterSnapshot {
    /// Mean packets decoded per batch (1.0 when batching is off).
    #[must_use]
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.decoded as f64 / self.batches as f64
        }
    }
}

/// One point of the queue-depth/backlog timeline, sampled by the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthSample {
    /// The generation round at which the sample was taken.
    pub round: u64,
    /// Nanoseconds since the engine epoch.
    pub elapsed_ns: u64,
    /// Packets sitting in the ring buffer.
    pub queue_depth: u64,
    /// Rounds generated but not yet decoded (queue depth plus in-flight).
    pub backlog: u64,
}

/// Latency samples summarized into mean/extrema plus a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Count, mean, standard deviation and extrema, in nanoseconds.
    pub summary: Summary,
    /// Histogram bin edges in nanoseconds (empty when no samples).
    pub histogram_edges: Vec<f64>,
    /// Estimated probability mass per bin (empty when no samples).
    pub histogram_density: Vec<f64>,
}

impl LatencyProfile {
    /// Number of histogram bins used by [`LatencyProfile::of`].
    pub const BINS: usize = 20;

    /// Summarizes a sample of latencies (nanoseconds).
    #[must_use]
    pub fn of(samples_ns: &[f64]) -> Self {
        let summary = Summary::of(samples_ns);
        let (histogram_edges, histogram_density) = if summary.count == 0 || summary.max <= 0.0 {
            (Vec::new(), Vec::new())
        } else {
            // Nudge the range so the maximum sample lands inside the last bin.
            histogram(samples_ns, Self::BINS, summary.max * (1.0 + 1e-9))
        };
        LatencyProfile {
            summary,
            histogram_edges,
            histogram_density,
        }
    }
}

/// The full telemetry of one streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Name of the decoder the workers ran.
    pub decoder: String,
    /// Code distance of the streamed lattice.
    pub distance: usize,
    /// Number of decoder worker threads.
    pub workers: usize,
    /// Upper bound on packets decoded per batch (the configured window `k`).
    pub batch_size: usize,
    /// Rounds of syndrome data generated.
    pub rounds: u64,
    /// Nominal syndrome-generation cadence in nanoseconds per round.
    pub cadence_ns: f64,
    /// Measured mean inter-arrival time between rounds, in nanoseconds.
    pub inter_arrival_ns: f64,
    /// Wall-clock duration of the whole run (generation plus drain), seconds.
    pub elapsed_s: f64,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Queue depth / backlog over time (down-sampled).
    pub depth_timeline: Vec<DepthSample>,
    /// Largest queue depth observed on the timeline.
    pub max_queue_depth: u64,
    /// Backlog when generation stopped: rounds generated but neither decoded
    /// nor dropped (matches [`RuntimeCounters::backlog`]; under the blocking
    /// push policy nothing is dropped, so it is generated minus decoded).
    pub final_backlog: u64,
    /// Decoded packets per second of wall-clock time.
    pub throughput_per_s: f64,
    /// Per-packet service time (ns): unpack, both sector decodes, and the
    /// frame commit — the span a worker is occupied per round, which is what
    /// feeds the backlog model's service rate.
    pub decode_latency: LatencyProfile,
    /// End-to-end latency from generation to committed correction (ns).
    pub total_latency: LatencyProfile,
    /// The measured backlog trajectory in model terms.
    pub measured: MeasuredBacklog,
    /// Measured growth versus the closed-form backlog model.
    pub comparison: BacklogComparison,
}

impl RuntimeReport {
    /// Whether the queue stayed bounded: no drops, and the backlog left when
    /// generation stopped is small compared to the number of rounds streamed
    /// (a transient mid-run spike that drained before the end does not count
    /// as unbounded growth).
    #[must_use]
    pub fn queue_stayed_bounded(&self) -> bool {
        self.counters.dropped == 0 && self.final_backlog * 20 < self.rounds.max(1)
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime report: {} | d={} | {} worker(s) | batch<={} | {} rounds @ {:.0} ns cadence",
            self.decoder,
            self.distance,
            self.workers,
            self.batch_size,
            self.rounds,
            self.cadence_ns
        )?;
        writeln!(
            f,
            "  generated {} | enqueued {} | decoded {} | dropped {} | elapsed {:.3} s",
            self.counters.generated,
            self.counters.enqueued,
            self.counters.decoded,
            self.counters.dropped,
            self.elapsed_s
        )?;
        writeln!(
            f,
            "  stealing: {} stolen | {} batches (mean fill {:.2})",
            self.counters.stolen,
            self.counters.batches,
            self.counters.mean_batch_fill()
        )?;
        writeln!(
            f,
            "  throughput {:.0} decodes/s | decode {:.0} ns mean (max {:.0}) | end-to-end {:.0} ns mean",
            self.throughput_per_s,
            self.decode_latency.summary.mean,
            self.decode_latency.summary.max,
            self.total_latency.summary.mean
        )?;
        writeln!(
            f,
            "  queue: max depth {} | final backlog {} rounds | {}",
            self.max_queue_depth,
            self.final_backlog,
            if self.queue_stayed_bounded() {
                "BOUNDED"
            } else {
                "GROWING"
            }
        )?;
        write!(
            f,
            "  backlog growth/round: measured {:.4} vs model {:.4} (f_eff = {:.3}, agreement {:.2}x)",
            self.comparison.measured_growth_per_round,
            self.comparison.predicted_growth_per_round,
            self.comparison.effective_ratio,
            self.comparison.agreement_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_backlog() {
        let counters = RuntimeCounters::default();
        counters.generated.store(10, Ordering::Relaxed);
        counters.decoded.store(4, Ordering::Relaxed);
        counters.enqueued.store(9, Ordering::Relaxed);
        counters.dropped.store(1, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.generated, 10);
        assert_eq!(snap.dropped, 1);
        assert_eq!(counters.backlog(), 5);
    }

    #[test]
    fn latency_profile_of_samples() {
        let profile = LatencyProfile::of(&[100.0, 200.0, 300.0]);
        assert_eq!(profile.summary.count, 3);
        assert!((profile.summary.mean - 200.0).abs() < 1e-9);
        assert_eq!(profile.histogram_edges.len(), LatencyProfile::BINS + 1);
        let mass: f64 = profile.histogram_density.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "all samples inside the range");
    }

    #[test]
    fn empty_latency_profile_is_well_formed() {
        let profile = LatencyProfile::of(&[]);
        assert_eq!(profile.summary.count, 0);
        assert!(profile.histogram_edges.is_empty());
        assert!(profile.histogram_density.is_empty());
    }
}
