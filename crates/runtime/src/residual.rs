//! The residual-classification paths: streaming assembly and the replay
//! oracle.
//!
//! Two ways to price a run's logical cost, selected by
//! [`ResidualMode`](crate::config::ResidualMode):
//!
//! - **Streaming** (the default): each round's seeded error rides the wire
//!   with its syndrome, the decoding worker classifies the residual the
//!   moment the correction is committed, and the producer classifies shed
//!   rounds as it sheds them.  Memory is O(lattices), not O(rounds) — no
//!   correction history accumulates.  [`streaming_residual_report`] merely
//!   folds the per-worker and producer tallies together.
//! - **Replay** (the oracle): the classic end-of-run analysis.
//!   [`analyze_lattice_residuals`] replays each lattice's seeded error
//!   stream against the recorded correction history, so it needs every
//!   correction kept ([`MachineConfig::correction_cap`] `None`) and the
//!   exact shed-round lists ([`MachineConfig::track_shed_rounds`] on).
//!
//! [`ResidualTally::absorb`] is an order-independent integer sum, so the
//! streaming merge is byte-identical to the replay classification of the
//! same rounds — pinned by the equivalence tests in
//! `tests/streaming_runtime.rs`.
//!
//! [`MachineConfig::correction_cap`]: crate::config::MachineConfig::correction_cap
//! [`MachineConfig::track_shed_rounds`]: crate::config::MachineConfig::track_shed_rounds

use crate::engine::RoundCorrection;
use crate::lattice_set::LatticeSpec;
use crate::source::SyndromeSource;
use crate::telemetry::ResidualReport;
use nisqplus_qec::logical::ResidualTally;
use nisqplus_qec::pauli::PauliString;
use std::sync::Arc;

/// Folds the streaming path's tallies into one lattice's
/// [`ResidualReport`]: the workers' merged decoded-round tallies plus the
/// producer's shed-round tally.
#[must_use]
pub(crate) fn streaming_residual_report(
    decoded: ResidualTally,
    shed: ResidualTally,
) -> ResidualReport {
    ResidualReport { decoded, shed }
}

/// The end-of-run drop-policy error analysis for one lattice: replay the
/// lattice's seeded error stream and classify every round's residual against
/// the correction that was actually applied — the decoder's output for
/// decoded rounds, identity for shed rounds.
///
/// `corrections` is the run's full `(lattice, round)`-sorted correction list
/// and `shed_rounds` the source's record of this lattice's dropped rounds
/// (including quarantined and watchdog-shed rounds); together they cover
/// every generated round exactly once.  A scheduled burst overlay is part of
/// the stream's replayable identity, so the replay applies the same one.
pub(crate) fn analyze_lattice_residuals(
    lattice_id: usize,
    spec: &LatticeSpec,
    lattice: &Arc<nisqplus_qec::lattice::Lattice>,
    corrections: &[RoundCorrection],
    shed_rounds: &[u64],
    burst: Option<crate::source::BurstOverlay>,
) -> ResidualReport {
    let mut source = SyndromeSource::new(lattice.clone(), spec.noise, spec.seed)
        .expect("noise validated in StreamingEngine::with_machine");
    if let Some(overlay) = burst {
        source = source
            .with_burst(spec.noise, overlay)
            .expect("burst overlay validated in StreamingEngine::with_machine");
    }
    let identity = PauliString::identity(lattice.num_data());
    let mut report = ResidualReport::default();
    let mut decoded = corrections
        .iter()
        .filter(|c| c.lattice_id as usize == lattice_id)
        .peekable();
    let mut shed = shed_rounds.iter().peekable();
    for round in 0..spec.rounds {
        let (error, _) = source.next_error_and_syndrome();
        if decoded.peek().is_some_and(|c| c.round == round) {
            let correction = &decoded.next().expect("peeked").correction;
            report.decoded.record(lattice, &error, correction);
        } else {
            debug_assert_eq!(
                shed.peek().copied().copied(),
                Some(round),
                "round neither decoded nor shed"
            );
            shed.next();
            report.shed.record(lattice, &error, &identity);
        }
    }
    report
}
