//! Scripted elastic machine reconfiguration.
//!
//! A [`ScenarioScript`] is a list of [`ScenarioAction`]s keyed on the
//! *machine-global* emission round: the `N`-th round the interleaved source
//! emits across all lattices, counted from zero.  Scripts are applied to an
//! [`InterleavedSource`](crate::source::InterleavedSource) before the first
//! round and fire deterministically as the global counter advances, so a
//! scripted run is exactly as replayable as a static one — the script is part
//! of the stream's identity, like seeds and burst overlays.
//!
//! Every lattice a script touches must be pre-registered in the machine's
//! [`LatticeSet`](crate::lattice_set::LatticeSet): elasticity flows through
//! the versioned packet header's compat guard, not around it.  A lattice
//! targeted by [`ScenarioAction::AddLattice`] starts *dormant* (emitting
//! nothing) and comes online when its round arrives;
//! [`ScenarioAction::RetireLattice`] truncates a stream so the lattice drains
//! to a final frame and its id is retired in the
//! [`PacketCodec`](crate::packet::PacketCodec), after which any straggler
//! record claiming a post-retirement round is quarantined as a typed
//! [`PacketError::RetiredLattice`](crate::packet::PacketError).

use crate::source::NoiseSpec;
use nisqplus_qec::QecError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scripted reconfiguration, keyed on the machine-global emission round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// Bring a pre-registered, dormant lattice online: it starts emitting at
    /// the given global round, paced from the virtual instant of the round
    /// that triggered it.
    AddLattice {
        /// Machine-global round at which the lattice comes online.
        at_round: u64,
        /// The pre-registered lattice to activate.
        lattice_id: u32,
    },
    /// Retire a lattice: its stream stops emitting, rounds already in flight
    /// drain to a final frame, and later records for its id are quarantined.
    RetireLattice {
        /// Machine-global round at which the lattice retires.
        at_round: u64,
        /// The lattice to retire.
        lattice_id: u32,
    },
    /// Swap a lattice's noise channel mid-run (a re-calibration event).  The
    /// stream's randomness is rate-independent, so the swap never perturbs
    /// other lattices or later rounds' reproducibility.
    SetErrorRate {
        /// Machine-global round from which the new channel applies.
        at_round: u64,
        /// The lattice whose channel is swapped.
        lattice_id: u32,
        /// The new noise channel.
        noise: NoiseSpec,
    },
}

impl ScenarioAction {
    /// The machine-global round the action fires at.
    #[must_use]
    pub fn at_round(&self) -> u64 {
        match *self {
            ScenarioAction::AddLattice { at_round, .. }
            | ScenarioAction::RetireLattice { at_round, .. }
            | ScenarioAction::SetErrorRate { at_round, .. } => at_round,
        }
    }

    /// The lattice the action targets.
    #[must_use]
    pub fn lattice_id(&self) -> u32 {
        match *self {
            ScenarioAction::AddLattice { lattice_id, .. }
            | ScenarioAction::RetireLattice { lattice_id, .. }
            | ScenarioAction::SetErrorRate { lattice_id, .. } => lattice_id,
        }
    }
}

/// Why a [`ScenarioScript`] was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// An action targets a lattice id outside the machine's registration.
    LatticeOutOfRange {
        /// The offending lattice id.
        lattice_id: u32,
        /// The number of registered lattices.
        len: usize,
    },
    /// A lattice is targeted by more than one `AddLattice` action.
    DuplicateAdd {
        /// The doubly-added lattice id.
        lattice_id: u32,
    },
    /// A `SetErrorRate` action carries an invalid noise channel.
    InvalidNoise {
        /// The lattice the action targets.
        lattice_id: u32,
        /// The underlying channel validation error.
        error: QecError,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::LatticeOutOfRange { lattice_id, len } => write!(
                f,
                "scenario action targets lattice {lattice_id}, but only {len} lattices are \
                 registered (elastic lattices must be pre-registered)"
            ),
            ScenarioError::DuplicateAdd { lattice_id } => {
                write!(f, "lattice {lattice_id} is added more than once")
            }
            ScenarioError::InvalidNoise { lattice_id, error } => {
                write!(f, "invalid noise channel for lattice {lattice_id}: {error}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::InvalidNoise { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A scripted sequence of elastic reconfigurations for one run.
///
/// The default script is empty — a static machine.  Actions may be pushed in
/// any order; they are sorted by firing round (stably, so same-round actions
/// fire in script order) when applied to a source.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScript {
    /// The scripted actions, in script order.
    pub actions: Vec<ScenarioAction>,
}

impl ScenarioScript {
    /// Creates a script from a list of actions.
    #[must_use]
    pub fn new(actions: Vec<ScenarioAction>) -> Self {
        ScenarioScript { actions }
    }

    /// `true` if the script contains no actions (a static machine).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The number of scripted actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Appends an `AddLattice` action and returns the script (builder style).
    #[must_use]
    pub fn add_lattice(mut self, at_round: u64, lattice_id: u32) -> Self {
        self.actions.push(ScenarioAction::AddLattice {
            at_round,
            lattice_id,
        });
        self
    }

    /// Appends a `RetireLattice` action and returns the script.
    #[must_use]
    pub fn retire_lattice(mut self, at_round: u64, lattice_id: u32) -> Self {
        self.actions.push(ScenarioAction::RetireLattice {
            at_round,
            lattice_id,
        });
        self
    }

    /// Appends a `SetErrorRate` action and returns the script.
    #[must_use]
    pub fn set_error_rate(mut self, at_round: u64, lattice_id: u32, noise: NoiseSpec) -> Self {
        self.actions.push(ScenarioAction::SetErrorRate {
            at_round,
            lattice_id,
            noise,
        });
        self
    }

    /// Checks every action against a machine with `num_lattices` registered
    /// lattices.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if an action targets an unregistered
    /// lattice, a lattice is added twice, or a `SetErrorRate` channel is
    /// invalid.
    pub fn validate(&self, num_lattices: usize) -> Result<(), ScenarioError> {
        let mut added = vec![false; num_lattices];
        for action in &self.actions {
            let lattice_id = action.lattice_id();
            if lattice_id as usize >= num_lattices {
                return Err(ScenarioError::LatticeOutOfRange {
                    lattice_id,
                    len: num_lattices,
                });
            }
            match *action {
                ScenarioAction::AddLattice { lattice_id, .. } => {
                    if std::mem::replace(&mut added[lattice_id as usize], true) {
                        return Err(ScenarioError::DuplicateAdd { lattice_id });
                    }
                }
                ScenarioAction::SetErrorRate {
                    lattice_id, noise, ..
                } => {
                    noise
                        .validate()
                        .map_err(|error| ScenarioError::InvalidNoise { lattice_id, error })?;
                }
                ScenarioAction::RetireLattice { .. } => {}
            }
        }
        Ok(())
    }

    /// The actions sorted by firing round (stable: same-round actions keep
    /// script order).
    #[must_use]
    pub fn sorted_actions(&self) -> Vec<ScenarioAction> {
        let mut actions = self.actions.clone();
        actions.sort_by_key(ScenarioAction::at_round);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_actions_in_order() {
        let script = ScenarioScript::default()
            .add_lattice(10, 2)
            .retire_lattice(20, 0)
            .set_error_rate(5, 1, NoiseSpec::PureDephasing { p: 0.05 });
        assert_eq!(script.len(), 3);
        assert!(!script.is_empty());
        assert_eq!(script.actions[0].at_round(), 10);
        assert_eq!(script.actions[0].lattice_id(), 2);
        // Sorting is by round, stable.
        let sorted = script.sorted_actions();
        assert_eq!(sorted[0].at_round(), 5);
        assert_eq!(sorted[2].at_round(), 20);
    }

    #[test]
    fn validation_rejects_out_of_range_and_duplicates() {
        let script = ScenarioScript::default().add_lattice(0, 5);
        assert_eq!(
            script.validate(3),
            Err(ScenarioError::LatticeOutOfRange {
                lattice_id: 5,
                len: 3
            })
        );
        let script = ScenarioScript::default()
            .add_lattice(0, 1)
            .add_lattice(9, 1);
        assert_eq!(
            script.validate(3),
            Err(ScenarioError::DuplicateAdd { lattice_id: 1 })
        );
        let script =
            ScenarioScript::default().set_error_rate(4, 0, NoiseSpec::PureDephasing { p: 1.5 });
        assert!(matches!(
            script.validate(1),
            Err(ScenarioError::InvalidNoise { lattice_id: 0, .. })
        ));
        assert!(ScenarioScript::default().validate(0).is_ok());
    }

    #[test]
    fn errors_display_informatively() {
        let err = ScenarioError::LatticeOutOfRange {
            lattice_id: 7,
            len: 2,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains("pre-registered"));
        let err = ScenarioError::DuplicateAdd { lattice_id: 3 };
        assert!(err.to_string().contains('3'));
    }
}
