//! The scenario plane: replayable syndrome traces, scripted elasticity.
//!
//! A *scenario* is everything that makes a run's workload hostile or dynamic
//! beyond a fixed lattice set under stationary noise:
//!
//! * **Recorded traces** ([`trace`]) — a [`TraceRecorder`] taps every round
//!   the source emits (syndrome *and* seeded error payload) into a versioned
//!   [`SyndromeTrace`]; a [`TraceSource`] re-serves a recorded stream
//!   deterministically through the same pipeline, interchangeable with the
//!   live [`InterleavedSource`](crate::source::InterleavedSource).  Recorded
//!   traces are the repo's scenario regression corpus: replaying one must
//!   reproduce per-lattice frames and corrections byte for byte.
//! * **Scripted elasticity** ([`script`]) — [`ScenarioScript`] actions
//!   (`AddLattice`, `RetireLattice`, `SetErrorRate`) fire on the
//!   machine-global round counter, so lattices come online, retire (draining
//!   to a final frame) and re-calibrate mid-run, all through the versioned
//!   packet header's compat guard.
//!
//! Time-varying noise *physics* lives next door: drifting rate schedules in
//! [`nisqplus_qec::DriftingErrorModel`] and burst episodes
//! ([`nisqplus_qec::BurstEvent`] /
//! [`BurstOverlay`](crate::source::BurstOverlay)) attach to a lattice via
//! [`LatticeSpec::with_burst`](crate::lattice_set::LatticeSpec::with_burst)
//! and surface per lattice as
//! [`NoiseEpoch`](crate::source::NoiseEpoch)s in the final report.
//!
//! [`record_run`] and [`replay_run`] are the two entry points tests and
//! examples use: record a live run's stream, then replay it and assert the
//! outcomes agree.

pub mod script;
pub mod trace;

pub use script::{ScenarioAction, ScenarioError, ScenarioScript};
pub use trace::{
    GoldenSummary, SyndromeTrace, TraceLattice, TraceRecorder, TraceRound, TraceSource,
    TRACE_VERSION,
};

use crate::engine::{RuntimeOutcome, StreamingEngine};
use crate::stage::PipelineOptions;
use nisqplus_decoders::traits::DecoderFactory;
use nisqplus_qec::logical::ResidualTally;

/// Pins a finished run's deterministic outcome as a [`GoldenSummary`]: the
/// quantities a golden-trace regression test compares exactly.  Contended
/// counters (backpressure spins, steals, batches, stall polls) are excluded
/// by construction — they vary run to run even on identical streams.
///
/// The per-lattice residual tally folds decoded and shed rounds together,
/// so it is meaningful only for runs with the streaming residual path on
/// (all-zero otherwise).
#[must_use]
pub fn golden_summary(outcome: &RuntimeOutcome) -> GoldenSummary {
    let report = &outcome.report;
    GoldenSummary {
        decoder: report.decoder.clone(),
        workers: report.workers,
        generated: report.counters.generated,
        decoded: report.counters.decoded,
        dropped: report.counters.dropped,
        quarantined: report.counters.quarantined,
        shed: report.lattices.iter().map(|l| l.counters.dropped).collect(),
        frame_digests: outcome
            .frames
            .iter()
            .map(|frame| trace::digest_pauli(&frame.merged()))
            .collect(),
        residuals: report
            .lattices
            .iter()
            .map(|l| match &l.residual {
                Some(residual) => {
                    let mut total = residual.decoded;
                    total.absorb(&residual.shed);
                    total
                }
                None => ResidualTally::default(),
            })
            .collect(),
    }
}

/// Runs `engine` live while recording every emitted round, returning the
/// outcome together with the recorded trace.
///
/// # Panics
///
/// Panics if the engine's pipeline does (invalid configuration); the
/// recording itself cannot fail.
#[must_use]
pub fn record_run(engine: &StreamingEngine, factory: &dyn DecoderFactory) -> RuntimeOutcome {
    let options = PipelineOptions {
        record_trace: true,
        ..PipelineOptions::default()
    };
    engine.run_with(options, factory)
}

/// Replays a recorded trace through `engine`'s pipeline: the trace's rounds
/// are re-served verbatim instead of sampling the seeded sources.  The
/// engine's machine must match the trace's lattice shapes
/// ([`SyndromeTrace::check_against`]).
///
/// # Panics
///
/// Panics if the trace does not match the engine's machine.
#[must_use]
pub fn replay_run(
    engine: &StreamingEngine,
    trace: &SyndromeTrace,
    factory: &dyn DecoderFactory,
) -> RuntimeOutcome {
    let options = PipelineOptions {
        replay: Some(trace.clone()),
        ..PipelineOptions::default()
    };
    engine.run_with(options, factory)
}
