//! Versioned, replayable syndrome traces.
//!
//! A [`SyndromeTrace`] is a full recording of what a run's source emitted:
//! every round, in machine-global emission order, with its syndrome *and* the
//! seeded error payload behind it.  [`TraceRecorder`] taps the live
//! [`InterleavedSource`](crate::source::InterleavedSource) as the producer
//! stage runs; [`TraceSource`] re-serves a recorded trace through the same
//! pipeline, so a replay exercises every stage downstream of sampling —
//! encode, route, decode, residual classification — against byte-identical
//! inputs.
//!
//! Traces serialize to the same schema-versioned JSON envelope as run reports
//! (`schema_version` + `kind: "syndrome_trace"`), with a trace-local
//! [`TRACE_VERSION`] for the payload layout.  Syndromes are stored as hot
//! ancilla indices (sparse — most rounds are quiet), error payloads as the
//! two-bitplane words of [`PauliString::pack_into`], hex-encoded because JSON
//! numbers cannot carry full 64-bit patterns.  Wall-clock fields
//! (`emitted_ns`) are deliberately *not* recorded: a trace captures the
//! stream's identity, not one machine's timing.
//!
//! A trace may carry a [`GoldenSummary`] — the pinned outcome of a reference
//! run (frame digests, counters, residual tallies).  The golden-trace
//! regression suite replays each committed trace and asserts the fresh
//! outcome matches its summary exactly.

use crate::lattice_set::LatticeSet;
use crate::report::{ExportError, Json, SCHEMA_VERSION};
use crate::source::SourcedRound;
use nisqplus_qec::logical::ResidualTally;
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::syndrome::Syndrome;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version of the trace payload layout.  Bumped whenever the meaning or
/// encoding of recorded rounds changes; readers reject other versions.
pub const TRACE_VERSION: u64 = 1;

/// The `kind` header value of trace documents.
const TRACE_KIND: &str = "syndrome_trace";

/// Seed of the word-fold digest, shared with the packet checksum family.
const DIGEST_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Folds a word stream into a 64-bit digest (splitmix-style mixing, same
/// construction as the packet trailer checksum).  Used to pin frames and
/// corrections in a [`GoldenSummary`] without storing them wholesale.
#[must_use]
pub fn digest_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = DIGEST_SEED;
    for word in words {
        acc = (acc ^ word).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        acc ^= acc >> 31;
    }
    acc
}

/// Digest of a Pauli string via its packed two-bitplane representation,
/// prefixed by its length so strings of different sizes never collide on
/// identical planes.
#[must_use]
pub fn digest_pauli(string: &PauliString) -> u64 {
    let mut words = vec![0u64; PauliString::packed_words(string.len())];
    string.pack_into(&mut words);
    digest_words(std::iter::once(string.len() as u64).chain(words))
}

/// The recorded shape of one lattice, pinned so a replay can verify the
/// machine it runs on matches the machine that was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLattice {
    /// Code distance.
    pub distance: usize,
    /// Number of ancilla (syndrome) bits.
    pub ancilla_bits: usize,
    /// Number of data qubits (error-payload length).
    pub data_bits: usize,
}

/// One recorded round, in machine-global emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRound {
    /// Id of the lattice the round belongs to.
    pub lattice_id: u32,
    /// Zero-based round index within that lattice's stream.
    pub round: u64,
    /// Virtual due instant (nanoseconds since the run epoch); `0.0` unpaced.
    pub due_ns: f64,
    /// Hot ancilla indices of the syndrome, ascending.
    pub hot: Vec<u32>,
    /// The seeded error, packed as [`PauliString::pack_into`] bitplanes.
    pub error_words: Vec<u64>,
}

/// The pinned outcome of a reference run, stored alongside the trace that
/// produced it.  Only deterministic quantities are pinned — contended
/// counters (backpressure spins, steals, batches) vary run to run and are
/// excluded by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenSummary {
    /// Name of the decoder the reference run used.
    pub decoder: String,
    /// Worker count of the reference run.
    pub workers: usize,
    /// Rounds the source emitted.
    pub generated: u64,
    /// Rounds decoded by the workers.
    pub decoded: u64,
    /// Rounds shed at the producer.
    pub dropped: u64,
    /// Records quarantined by the compat guard.
    pub quarantined: u64,
    /// Per-lattice shed-round counts.
    pub shed: Vec<u64>,
    /// Per-lattice digests of the merged correction frame.
    pub frame_digests: Vec<u64>,
    /// Per-lattice residual tallies from the streaming classifier.
    pub residuals: Vec<ResidualTally>,
}

/// A recorded syndrome stream: lattice shapes, every emitted round, and an
/// optional pinned reference outcome.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SyndromeTrace {
    /// Shape of each recorded lattice, by id.
    pub lattices: Vec<TraceLattice>,
    /// Every emitted round, in machine-global emission order.
    pub rounds: Vec<TraceRound>,
    /// Pinned reference outcome, if the trace is a golden regression input.
    pub golden: Option<GoldenSummary>,
}

impl SyndromeTrace {
    /// The number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no rounds were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Attaches a pinned reference outcome (builder style).
    #[must_use]
    pub fn with_golden(mut self, golden: GoldenSummary) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Checks that this trace was recorded on a machine shaped like `set`:
    /// same lattice count, and per lattice the same distance and bit widths.
    ///
    /// # Errors
    ///
    /// Returns [`ExportError::Schema`] naming the first mismatch.
    pub fn check_against(&self, set: &LatticeSet) -> Result<(), ExportError> {
        if self.lattices.len() != set.len() {
            return Err(ExportError::Schema(format!(
                "trace records {} lattices, machine has {}",
                self.lattices.len(),
                set.len()
            )));
        }
        for (id, recorded) in self.lattices.iter().enumerate() {
            let lattice = set.lattice(id);
            let live = TraceLattice {
                distance: lattice.distance(),
                ancilla_bits: lattice.num_ancillas(),
                data_bits: lattice.num_data(),
            };
            if *recorded != live {
                return Err(ExportError::Schema(format!(
                    "trace lattice {id} was recorded as d={} ({} ancillas, {} data qubits), \
                     machine has d={} ({} ancillas, {} data qubits)",
                    recorded.distance,
                    recorded.ancilla_bits,
                    recorded.data_bits,
                    live.distance,
                    live.ancilla_bits,
                    live.data_bits
                )));
            }
        }
        Ok(())
    }

    /// Serializes the trace to its versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let lattices = Json::Arr(
            self.lattices
                .iter()
                .map(|l| {
                    Json::Obj(vec![
                        ("distance".to_string(), Json::from(l.distance)),
                        ("ancilla_bits".to_string(), Json::from(l.ancilla_bits)),
                        ("data_bits".to_string(), Json::from(l.data_bits)),
                    ])
                })
                .collect(),
        );
        let rounds = Json::Arr(self.rounds.iter().map(round_to_json).collect());
        let golden = match &self.golden {
            Some(g) => golden_to_json(g),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("schema_version".to_string(), Json::from(SCHEMA_VERSION)),
            ("kind".to_string(), Json::Str(TRACE_KIND.to_string())),
            ("trace_version".to_string(), Json::from(TRACE_VERSION)),
            ("lattices".to_string(), lattices),
            ("rounds".to_string(), rounds),
            ("golden".to_string(), golden),
        ])
    }

    /// Parses a trace from its JSON document, verifying the envelope
    /// (`schema_version`, `kind`) and [`TRACE_VERSION`], then the payload
    /// shape round by round.
    ///
    /// # Errors
    ///
    /// Fails with [`ExportError::Version`] on a stale `schema_version` and
    /// [`ExportError::Schema`] on any other malformation.
    pub fn from_json(doc: &Json) -> Result<Self, ExportError> {
        let found = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ExportError::Schema("missing field 'schema_version'".to_string()))?;
        if found != SCHEMA_VERSION {
            return Err(ExportError::Version {
                found,
                expected: SCHEMA_VERSION,
            });
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ExportError::Schema("missing field 'kind'".to_string()))?;
        if kind != TRACE_KIND {
            return Err(ExportError::Schema(format!(
                "expected a '{TRACE_KIND}' document, found kind '{kind}'"
            )));
        }
        let trace_version = doc
            .get("trace_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ExportError::Schema("missing field 'trace_version'".to_string()))?;
        if trace_version != TRACE_VERSION {
            return Err(ExportError::Schema(format!(
                "trace layout v{trace_version} is not the v{TRACE_VERSION} this build reads"
            )));
        }
        let lattices = arr(doc, "lattices")?
            .iter()
            .map(|l| {
                Ok(TraceLattice {
                    distance: req_usize(l, "distance")?,
                    ancilla_bits: req_usize(l, "ancilla_bits")?,
                    data_bits: req_usize(l, "data_bits")?,
                })
            })
            .collect::<Result<Vec<_>, ExportError>>()?;
        let rounds = arr(doc, "rounds")?
            .iter()
            .map(|r| round_from_json(r, &lattices))
            .collect::<Result<Vec<_>, ExportError>>()?;
        let golden = match doc.get("golden") {
            None | Some(Json::Null) => None,
            Some(g) => Some(golden_from_json(g, lattices.len())?),
        };
        Ok(SyndromeTrace {
            lattices,
            rounds,
            golden,
        })
    }

    /// Writes the trace to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), ExportError> {
        std::fs::write(path, self.to_json().to_pretty())?;
        Ok(())
    }

    /// Reads and validates a trace from `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or schema mismatches.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, ExportError> {
        Self::from_json(&crate::report::json::parse(&std::fs::read_to_string(
            path,
        )?)?)
    }
}

fn round_to_json(r: &TraceRound) -> Json {
    Json::Obj(vec![
        (
            "lattice_id".to_string(),
            Json::from(u64::from(r.lattice_id)),
        ),
        ("round".to_string(), Json::from(r.round)),
        ("due_ns".to_string(), Json::Num(r.due_ns)),
        (
            "hot".to_string(),
            Json::Arr(r.hot.iter().map(|&i| Json::from(u64::from(i))).collect()),
        ),
        (
            "error_words".to_string(),
            Json::Arr(
                r.error_words
                    .iter()
                    .map(|w| Json::Str(format!("{w:#x}")))
                    .collect(),
            ),
        ),
    ])
}

fn round_from_json(v: &Json, lattices: &[TraceLattice]) -> Result<TraceRound, ExportError> {
    let lattice_id = req_u64(v, "lattice_id")?;
    let shape = lattices.get(lattice_id as usize).ok_or_else(|| {
        ExportError::Schema(format!(
            "round references lattice {lattice_id}, but the trace records {} lattices",
            lattices.len()
        ))
    })?;
    let hot = arr(v, "hot")?
        .iter()
        .map(|h| {
            let index = h.as_u64().ok_or_else(|| {
                ExportError::Schema("'hot' element is not an integer".to_string())
            })?;
            if index as usize >= shape.ancilla_bits {
                return Err(ExportError::Schema(format!(
                    "hot index {index} out of range for {} ancillas",
                    shape.ancilla_bits
                )));
            }
            Ok(index as u32)
        })
        .collect::<Result<Vec<_>, ExportError>>()?;
    let error_words = arr(v, "error_words")?
        .iter()
        .map(|w| {
            let text = w.as_str().ok_or_else(|| {
                ExportError::Schema("'error_words' element is not a string".to_string())
            })?;
            let digits = text.strip_prefix("0x").ok_or_else(|| {
                ExportError::Schema(format!("error word '{text}' is not 0x-prefixed hex"))
            })?;
            u64::from_str_radix(digits, 16)
                .map_err(|_| ExportError::Schema(format!("error word '{text}' is not valid hex")))
        })
        .collect::<Result<Vec<_>, ExportError>>()?;
    let expected = PauliString::packed_words(shape.data_bits);
    if error_words.len() != expected {
        return Err(ExportError::Schema(format!(
            "lattice {lattice_id} error payload has {} words, expected {expected} for {} data \
             qubits",
            error_words.len(),
            shape.data_bits
        )));
    }
    Ok(TraceRound {
        lattice_id: lattice_id as u32,
        round: req_u64(v, "round")?,
        due_ns: req_f64(v, "due_ns")?,
        hot,
        error_words,
    })
}

fn golden_to_json(g: &GoldenSummary) -> Json {
    Json::Obj(vec![
        ("decoder".to_string(), Json::Str(g.decoder.clone())),
        ("workers".to_string(), Json::from(g.workers)),
        ("generated".to_string(), Json::from(g.generated)),
        ("decoded".to_string(), Json::from(g.decoded)),
        ("dropped".to_string(), Json::from(g.dropped)),
        ("quarantined".to_string(), Json::from(g.quarantined)),
        (
            "shed".to_string(),
            Json::Arr(g.shed.iter().map(|&s| Json::from(s)).collect()),
        ),
        (
            "frame_digests".to_string(),
            Json::Arr(
                g.frame_digests
                    .iter()
                    .map(|d| Json::Str(format!("{d:#x}")))
                    .collect(),
            ),
        ),
        (
            "residuals".to_string(),
            Json::Arr(
                g.residuals
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("rounds".to_string(), Json::from(t.rounds)),
                            ("successes".to_string(), Json::from(t.successes)),
                            ("logical_errors".to_string(), Json::from(t.logical_errors)),
                            (
                                "invalid_corrections".to_string(),
                                Json::from(t.invalid_corrections),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn golden_from_json(v: &Json, num_lattices: usize) -> Result<GoldenSummary, ExportError> {
    let shed = arr(v, "shed")?
        .iter()
        .map(|s| {
            s.as_u64()
                .ok_or_else(|| ExportError::Schema("'shed' element is not an integer".to_string()))
        })
        .collect::<Result<Vec<_>, ExportError>>()?;
    let frame_digests = arr(v, "frame_digests")?
        .iter()
        .map(|d| {
            let text = d.as_str().ok_or_else(|| {
                ExportError::Schema("'frame_digests' element is not a string".to_string())
            })?;
            let digits = text.strip_prefix("0x").ok_or_else(|| {
                ExportError::Schema(format!("frame digest '{text}' is not 0x-prefixed hex"))
            })?;
            u64::from_str_radix(digits, 16)
                .map_err(|_| ExportError::Schema(format!("frame digest '{text}' is not valid hex")))
        })
        .collect::<Result<Vec<_>, ExportError>>()?;
    let residuals = arr(v, "residuals")?
        .iter()
        .map(|t| {
            Ok(ResidualTally {
                rounds: req_u64(t, "rounds")?,
                successes: req_u64(t, "successes")?,
                logical_errors: req_u64(t, "logical_errors")?,
                invalid_corrections: req_u64(t, "invalid_corrections")?,
            })
        })
        .collect::<Result<Vec<_>, ExportError>>()?;
    for (name, len) in [
        ("shed", shed.len()),
        ("frame_digests", frame_digests.len()),
        ("residuals", residuals.len()),
    ] {
        if len != num_lattices {
            return Err(ExportError::Schema(format!(
                "golden '{name}' has {len} entries for {num_lattices} lattices"
            )));
        }
    }
    Ok(GoldenSummary {
        decoder: req_str(v, "decoder")?.to_string(),
        workers: req_usize(v, "workers")?,
        generated: req_u64(v, "generated")?,
        decoded: req_u64(v, "decoded")?,
        dropped: req_u64(v, "dropped")?,
        quarantined: req_u64(v, "quarantined")?,
        shed,
        frame_digests,
        residuals,
    })
}

fn arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], ExportError> {
    v.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| ExportError::Schema(format!("field '{key}' is missing or not an array")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, ExportError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ExportError::Schema(format!("field '{key}' is missing or not an integer")))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, ExportError> {
    Ok(req_u64(v, key)? as usize)
}

fn req_f64(v: &Json, key: &str) -> Result<f64, ExportError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ExportError::Schema(format!("field '{key}' is missing or not a number")))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ExportError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ExportError::Schema(format!("field '{key}' is missing or not a string")))
}

/// Records every round an [`InterleavedSource`](crate::source::InterleavedSource)
/// emits.  The producer stage calls [`TraceRecorder::record`] on each
/// [`SourcedRound`] *before* shedding decisions, so the trace is the stream's
/// full content regardless of delivery outcome.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    lattices: Vec<TraceLattice>,
    rounds: Vec<TraceRound>,
}

impl TraceRecorder {
    /// Creates a recorder for a machine's lattice set.
    #[must_use]
    pub fn new(set: &LatticeSet) -> Self {
        let lattices = (0..set.len())
            .map(|id| {
                let lattice = set.lattice(id);
                TraceLattice {
                    distance: lattice.distance(),
                    ancilla_bits: lattice.num_ancillas(),
                    data_bits: lattice.num_data(),
                }
            })
            .collect();
        TraceRecorder {
            lattices,
            rounds: Vec::new(),
        }
    }

    /// Records one emitted round.
    pub fn record(&mut self, sourced: &SourcedRound) {
        let mut error_words = vec![0u64; PauliString::packed_words(sourced.error.len())];
        sourced.error.pack_into(&mut error_words);
        self.rounds.push(TraceRound {
            lattice_id: sourced.lattice_id,
            round: sourced.round,
            due_ns: sourced.due_ns,
            hot: sourced
                .syndrome
                .hot_indices()
                .into_iter()
                .map(|i| i as u32)
                .collect(),
            error_words,
        });
    }

    /// The number of rounds recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Finishes recording, yielding the trace (no golden summary attached).
    #[must_use]
    pub fn into_trace(self) -> SyndromeTrace {
        SyndromeTrace {
            lattices: self.lattices,
            rounds: self.rounds,
            golden: None,
        }
    }
}

/// Re-serves a recorded trace as a round stream, interchangeable with the
/// live [`InterleavedSource`](crate::source::InterleavedSource) from the
/// pipeline's point of view.
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: SyndromeTrace,
    cursor: usize,
}

impl TraceSource {
    /// Creates a replay source after checking the trace matches `set`
    /// ([`SyndromeTrace::check_against`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExportError::Schema`] if the trace's lattice shapes differ
    /// from the machine's.
    pub fn new(trace: SyndromeTrace, set: &LatticeSet) -> Result<Self, ExportError> {
        trace.check_against(set)?;
        Ok(TraceSource { trace, cursor: 0 })
    }

    /// The number of rounds not yet served.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.rounds.len() - self.cursor
    }

    /// Serves the next recorded round, or `None` when the trace is drained.
    pub fn next_round(&mut self) -> Option<SourcedRound> {
        let recorded = self.trace.rounds.get(self.cursor)?;
        self.cursor += 1;
        let shape = &self.trace.lattices[recorded.lattice_id as usize];
        let hot: Vec<usize> = recorded.hot.iter().map(|&i| i as usize).collect();
        let mut error = PauliString::identity(shape.data_bits);
        error.unpack_from(&recorded.error_words);
        Some(SourcedRound {
            lattice_id: recorded.lattice_id,
            round: recorded.round,
            due_ns: recorded.due_ns,
            syndrome: Syndrome::from_hot(shape.ancilla_bits, &hot),
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_set::{LatticeSet, LatticeSpec};
    use crate::source::{InterleavedSource, NoiseSpec};
    use nisqplus_sim::timing::CycleTimeConverter;

    fn small_set() -> LatticeSet {
        LatticeSet::new(vec![
            LatticeSpec::new(3).with_rounds(8).with_seed(11),
            LatticeSpec::new(5)
                .with_rounds(4)
                .with_seed(12)
                .with_noise(NoiseSpec::Depolarizing { p: 0.02 }),
        ])
        .expect("valid lattice set")
    }

    fn record_all(set: &LatticeSet) -> SyndromeTrace {
        let mut source = InterleavedSource::new(set, &CycleTimeConverter::paper_reference())
            .expect("valid source");
        let mut recorder = TraceRecorder::new(set);
        while let Some(round) = source.next_round() {
            recorder.record(&round);
        }
        recorder.into_trace()
    }

    #[test]
    fn record_then_replay_reproduces_every_round() {
        let set = small_set();
        let trace = record_all(&set);
        assert_eq!(trace.len(), 12);

        let mut live = InterleavedSource::new(&set, &CycleTimeConverter::paper_reference())
            .expect("valid source");
        let mut replay = TraceSource::new(trace, &set).expect("trace matches set");
        assert_eq!(replay.remaining(), 12);
        while let Some(expected) = live.next_round() {
            let served = replay.next_round().expect("replay exhausted early");
            assert_eq!(served, expected);
        }
        assert!(replay.next_round().is_none());
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let set = small_set();
        let trace = record_all(&set).with_golden(GoldenSummary {
            decoder: "greedy-matching".to_string(),
            workers: 2,
            generated: 12,
            decoded: 12,
            dropped: 0,
            quarantined: 0,
            shed: vec![0, 0],
            frame_digests: vec![u64::MAX, 0x1234_5678_9abc_def0],
            residuals: vec![ResidualTally::default(); 2],
        });
        let doc = trace.to_json();
        let back = SyndromeTrace::from_json(&doc).expect("round trip parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn readers_reject_bad_envelopes() {
        let set = small_set();
        let trace = record_all(&set);
        let mut doc = trace.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "schema_version" {
                    *value = Json::from(SCHEMA_VERSION + 1);
                }
            }
        }
        assert!(matches!(
            SyndromeTrace::from_json(&doc),
            Err(ExportError::Version { .. })
        ));

        let mut doc = trace.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "kind" {
                    *value = Json::Str("runtime_report".to_string());
                }
            }
        }
        assert!(matches!(
            SyndromeTrace::from_json(&doc),
            Err(ExportError::Schema(_))
        ));

        let mut doc = trace.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "trace_version" {
                    *value = Json::from(TRACE_VERSION + 1);
                }
            }
        }
        assert!(matches!(
            SyndromeTrace::from_json(&doc),
            Err(ExportError::Schema(_))
        ));
    }

    #[test]
    fn replay_rejects_mismatched_machines() {
        let set = small_set();
        let trace = record_all(&set);
        let other = LatticeSet::new(vec![
            LatticeSpec::new(3).with_rounds(8),
            LatticeSpec::new(3).with_rounds(4),
        ])
        .expect("valid lattice set");
        let err = TraceSource::new(trace.clone(), &other).expect_err("shape mismatch");
        assert!(err.to_string().contains("lattice 1"));
        let fewer = LatticeSet::new(vec![LatticeSpec::new(3).with_rounds(8)]).expect("valid");
        assert!(TraceSource::new(trace, &fewer).is_err());
    }

    #[test]
    fn digests_are_order_and_length_sensitive() {
        assert_ne!(digest_words([1, 2]), digest_words([2, 1]));
        assert_ne!(digest_words([0]), digest_words([0, 0]));
        let a = PauliString::from_sparse(13, &[1, 7], nisqplus_qec::Pauli::X);
        let b = PauliString::from_sparse(13, &[1, 7], nisqplus_qec::Pauli::Z);
        assert_ne!(digest_pauli(&a), digest_pauli(&b));
        assert_eq!(digest_pauli(&a), digest_pauli(&a.clone()));
    }
}
