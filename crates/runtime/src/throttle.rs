//! A decoder wrapper that enforces a minimum wall-clock service time.
//!
//! The acceptance experiment of the paper's Section III needs a decoder that
//! is *deliberately* slower than syndrome generation, so the exponential
//! backlog can be observed empirically rather than modeled.
//! [`ThrottledDecoder`] wraps any [`Decoder`] and spins until a configured
//! floor has elapsed, emulating a slow software decoder (e.g. MWPM at
//! ~100 µs/round, Section IV) without changing the corrections produced.
//! Because it is just a `Decoder`, it plugs into the pipeline's decode
//! stage like any other factory product — the QoS and stage-graph examples
//! use it to overload chosen seams of the graph on demand.

use nisqplus_decoders::traits::{Correction, Decoder, DynDecoder, SharedDecoderFactory};
use nisqplus_qec::lattice::{Lattice, Sector};
use nisqplus_qec::syndrome::Syndrome;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A [`Decoder`] whose every `decode` call takes at least a fixed time —
/// for every lattice, or only for lattices of one code distance
/// ([`ThrottledDecoder::for_distance`]), which is how the multi-lattice
/// telemetry tests slow down a single patch of a machine.
#[derive(Debug, Clone)]
pub struct ThrottledDecoder<D> {
    inner: D,
    floor: Duration,
    only_distance: Option<usize>,
    name: String,
}

impl<D: Decoder> ThrottledDecoder<D> {
    /// Wraps `inner`, forcing each decode to take at least `floor_ns`
    /// nanoseconds of wall-clock time.
    #[must_use]
    pub fn new(inner: D, floor_ns: u64) -> Self {
        let name = format!("throttled({})@{}ns", inner.name(), floor_ns);
        ThrottledDecoder {
            inner,
            floor: Duration::from_nanos(floor_ns),
            only_distance: None,
            name,
        }
    }

    /// Wraps `inner`, forcing each decode *of a distance-`distance` lattice*
    /// to take at least `floor_ns` nanoseconds; other lattices decode at
    /// full speed.  In a multi-lattice run this makes exactly one patch (or
    /// one distance class of patches) fall behind while the rest keep up.
    #[must_use]
    pub fn for_distance(inner: D, floor_ns: u64, distance: usize) -> Self {
        let name = format!("throttled({})@{}ns[d={}]", inner.name(), floor_ns, distance);
        ThrottledDecoder {
            inner,
            floor: Duration::from_nanos(floor_ns),
            only_distance: Some(distance),
            name,
        }
    }

    /// The enforced minimum service time.
    #[must_use]
    pub fn floor(&self) -> Duration {
        self.floor
    }

    /// The code distance the floor is restricted to (`None` = all lattices).
    #[must_use]
    pub fn only_distance(&self) -> Option<usize> {
        self.only_distance
    }

    /// The wrapped decoder.
    #[must_use]
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl ThrottledDecoder<DynDecoder> {
    /// A factory whose every product is `factory`'s product wrapped in a
    /// `floor_ns` throttle — the shape a per-lattice
    /// [`LatticeSpec::with_shared_decoder`](crate::LatticeSpec::with_shared_decoder)
    /// override wants, so one patch of a machine can be served by a
    /// deliberately slow decoder while its neighbours run at full speed.
    #[must_use]
    pub fn factory(factory: SharedDecoderFactory, floor_ns: u64) -> SharedDecoderFactory {
        Arc::new(move || Box::new(ThrottledDecoder::new(factory.build(), floor_ns)) as DynDecoder)
    }

    /// Like [`ThrottledDecoder::factory`], but the floor applies only to
    /// decodes on lattices of code distance `distance`.
    #[must_use]
    pub fn factory_for_distance(
        factory: SharedDecoderFactory,
        floor_ns: u64,
        distance: usize,
    ) -> SharedDecoderFactory {
        Arc::new(move || {
            Box::new(ThrottledDecoder::for_distance(
                factory.build(),
                floor_ns,
                distance,
            )) as DynDecoder
        })
    }
}

impl<D> ThrottledDecoder<D> {
    /// Whether the floor applies to a decode on `lattice`.
    fn throttles(&self, lattice: &Lattice) -> bool {
        match self.only_distance {
            None => true,
            Some(d) => d == lattice.distance(),
        }
    }

    /// Spins out the remainder of the floor after `start`.  Yields inside the
    /// wait so throttled workers don't starve the producer on machines with
    /// fewer cores than threads; the floor is wall-clock, so yielding never
    /// shortens it.
    fn spin_out(&self, start: Instant) {
        while start.elapsed() < self.floor {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

impl<D: Decoder> Decoder for ThrottledDecoder<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&mut self, lattice: &Lattice) {
        // Preparation is a one-off, not a per-round service: no floor.
        self.inner.prepare(lattice);
    }

    fn decode(&mut self, lattice: &Lattice, syndrome: &Syndrome, sector: Sector) -> Correction {
        let start = Instant::now();
        let correction = self.inner.decode(lattice, syndrome, sector);
        if self.throttles(lattice) {
            self.spin_out(start);
        }
        correction
    }

    fn decode_into(
        &mut self,
        lattice: &Lattice,
        syndrome: &Syndrome,
        sector: Sector,
        out: &mut nisqplus_qec::pauli::PauliString,
    ) {
        // The amortized hot path pays the same floor: throttling models a
        // slow decode, which batching must not be able to skip.
        let start = Instant::now();
        self.inner.decode_into(lattice, syndrome, sector, out);
        if self.throttles(lattice) {
            self.spin_out(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisqplus_decoders::GreedyMatchingDecoder;
    use nisqplus_qec::pauli::{Pauli, PauliString};

    #[test]
    fn throttling_slows_but_does_not_change_corrections() {
        let lattice = Lattice::new(3).unwrap();
        let error = PauliString::from_sparse(lattice.num_data(), &[4], Pauli::Z);
        let syndrome = lattice.syndrome_of(&error);

        let mut plain = GreedyMatchingDecoder::new();
        let mut throttled = ThrottledDecoder::new(GreedyMatchingDecoder::new(), 200_000);

        let start = Instant::now();
        let fast = plain.decode(&lattice, &syndrome, Sector::X);
        let slow = throttled.decode(&lattice, &syndrome, Sector::X);
        assert_eq!(fast.pauli_string(), slow.pauli_string());
        assert!(
            start.elapsed() >= Duration::from_micros(200),
            "throttle floor not enforced"
        );
    }

    #[test]
    fn throttled_factories_wrap_any_factory_product() {
        use nisqplus_decoders::traits::{DecoderFactory, DynDecoder, SharedDecoderFactory};
        let base: SharedDecoderFactory =
            Arc::new(|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
        let throttled = ThrottledDecoder::factory(base.clone(), 800);
        assert_eq!(throttled.build().name(), "throttled(greedy-matching)@800ns");
        let targeted = ThrottledDecoder::factory_for_distance(base, 800, 5);
        assert_eq!(
            targeted.build().name(),
            "throttled(greedy-matching)@800ns[d=5]"
        );
    }

    #[test]
    fn name_reflects_wrapping() {
        let throttled = ThrottledDecoder::new(GreedyMatchingDecoder::new(), 800);
        assert_eq!(throttled.name(), "throttled(greedy-matching)@800ns");
        assert_eq!(throttled.floor(), Duration::from_nanos(800));
        assert_eq!(throttled.only_distance(), None);
        assert_eq!(throttled.inner().name(), "greedy-matching");
    }

    /// The distance-selective throttle slows only its target distance: in a
    /// multi-lattice machine this makes one patch fall behind while the
    /// others keep up.
    #[test]
    fn distance_selective_throttle_only_slows_its_target() {
        let lat3 = Lattice::new(3).unwrap();
        let lat5 = Lattice::new(5).unwrap();
        let floor_ns = 3_000_000u64; // 3 ms: far above any greedy decode
        let mut throttled =
            ThrottledDecoder::for_distance(GreedyMatchingDecoder::new(), floor_ns, 3);
        assert_eq!(throttled.only_distance(), Some(3));
        assert_eq!(
            throttled.name(),
            "throttled(greedy-matching)@3000000ns[d=3]"
        );
        // A d=5 decode skips the floor entirely...
        let s5 = lat5.syndrome_of(&PauliString::identity(lat5.num_data()));
        let start = Instant::now();
        let _ = throttled.decode(&lat5, &s5, Sector::X);
        assert!(
            start.elapsed() < Duration::from_nanos(floor_ns),
            "untargeted distance must not pay the floor"
        );
        // ...while a d=3 decode pays it in full.
        let s3 = lat3.syndrome_of(&PauliString::identity(lat3.num_data()));
        let start = Instant::now();
        let _ = throttled.decode(&lat3, &s3, Sector::X);
        assert!(start.elapsed() >= Duration::from_nanos(floor_ns));
    }
}
