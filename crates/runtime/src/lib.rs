//! Real-time streaming decode engine for the NISQ+ reproduction.
//!
//! The paper's core argument (Section III) is a *runtime* one: a decoder
//! slower than the ~400 ns syndrome-generation period accumulates an
//! exponentially growing backlog.  The rest of the workspace models that
//! analytically (`nisqplus-system::backlog`) and measures decoders in
//! isolated offline loops; this crate closes the loop by actually *serving*
//! a syndrome stream at a configurable hardware cadence and measuring the
//! backlog empirically:
//!
//! * [`lattice_set`] — the registry of lattices (logical qubits) one engine
//!   serves: a full NISQ+ machine is many patches of possibly different
//!   distances, each with its own seeded stream and cadence — and its own
//!   QoS contract: a per-lattice push policy (Block/Drop), an outstanding
//!   queue budget, a shed-rate SLO, and optionally its own decoder factory
//!   ([`LatticeDecoder`], e.g. lookup for d=3 patches beside union-find for
//!   d=7),
//! * [`source`] — the seeded endless syndrome stream, one per lattice,
//!   interleaved on independent cadences by [`InterleavedSource`] (same
//!   seed, same stream, which is what makes stream-versus-batch equivalence
//!   testable),
//! * [`packet`] — bit-packed [`SyndromePacket`]s and their fixed-size
//!   `u64`-word wire codec; the header carries a format version and the
//!   `lattice_id` + ancilla count, so mis-routed or mis-sized records are
//!   rejected instead of silently misdecoding,
//! * [`queue`] — the bounded lock-free ring buffer (pure
//!   `std::sync::atomic`, no external deps); the engine gives each worker
//!   its own ring and lets idle workers steal from busy ones,
//! * [`stage`] — the composable pipeline stages the engine is wired from:
//!   credit counters and credit-backed channels, skid buffers, batch muxes
//!   (steal / priority / round-robin), the QoS admission gate, the
//!   prepared-decoder decode stage, frame and depth sinks, and the
//!   [`PipelineGraph`] builder that assembles them into a running,
//!   backpressured whole — every stage reporting its flow through a
//!   uniform [`StageReport`],
//! * [`config`] — the [`RuntimeConfig`] / [`MachineConfig`] run
//!   configuration (re-exported through [`engine`] for compatibility),
//! * [`engine`] — the [`StreamingEngine`]: one paced source thread
//!   spreading every lattice's rounds across credit channels, and a
//!   work-stealing pool of decoder workers built from a
//!   [`DecoderFactory`](nisqplus_decoders::DecoderFactory), each keeping one
//!   prepared decoder per code distance and decoding up to
//!   [`RuntimeConfig::batch_size`] consecutive rounds per batch through the
//!   prepared, allocation-free
//!   [`Decoder::decode_into`](nisqplus_decoders::Decoder::decode_into) path,
//! * [`frame`] — the sharded Pauli frames (one per lattice) the workers
//!   commit corrections to,
//! * [`fault`] — deterministic fault injection and self-healing: a seeded
//!   [`FaultPlan`] schedules worker crashes (caught and answered by a
//!   supervisor restart that re-prepares decoders over the same frame
//!   shard), on-the-wire packet corruption (quarantined, never panicking
//!   the pool), burst-noise episodes and credit-channel stalls (bounded by
//!   a backpressure watchdog), all reconciled in the report's
//!   [`FaultReport`],
//! * [`throttle`] — a wrapper making any decoder deliberately slow (for all
//!   lattices or one code distance), so the backlog blow-up can be provoked
//!   on demand,
//! * [`obs`] — the live observability plane: a lock-free
//!   [`MetricsRegistry`] of named counters, bounded-memory log-bucketed
//!   latency histograms ([`LogHistogram`]), a fixed-capacity structured
//!   [`EventJournal`] (sheds, stalls, budget exhaustion, steals, verdict
//!   flips), and a snapshot sampler publishing periodic
//!   [`MetricsSnapshot`]s to an optional [`RuntimeObserver`],
//! * [`report`] — schema-versioned, dependency-free JSON export of the
//!   final report and of the repo-root `BENCH_*.json` perf artifacts,
//! * [`scenario`] — the scenario plane: versioned replayable
//!   [`SyndromeTrace`]s (record a live run's full stream, replay it
//!   byte-identically through the same pipeline) and scripted elastic
//!   machines ([`ScenarioScript`]: lattices added, retired, or re-tuned at
//!   scripted rounds, flowing through the packet header's compat guard),
//! * [`telemetry`] — live atomic counters and the final [`RuntimeReport`]:
//!   queue-depth timeline, latency histograms, throughput, and the measured
//!   backlog growth compared against the closed-form
//!   [`BacklogModel`](nisqplus_system::backlog::BacklogModel) (the
//!   empirical counterpart of Figures 5 and 6), aggregate *and* per lattice
//!   ([`LatticeReport`]): which patch is falling behind, under which QoS
//!   contract, served by which decoder, at what shed rate (verdicted
//!   against its SLO) — and, when the run enables the residual analysis, at
//!   what *measured* logical cost ([`ResidualReport`]): shed rounds enter
//!   the per-lattice frame as identity corrections, the seeded error stream
//!   is replayed, and every round's residual is classified, so the price of
//!   load shedding versus backpressure is a measurement, not an assumption.
//!
//! `docs/OPERATIONS.md` at the repository root is the operator's guide to
//! every field of the report.
//!
//! # Example
//!
//! ```rust
//! use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
//! use nisqplus_runtime::{PushPolicy, RuntimeConfig, StreamingEngine};
//!
//! # fn main() -> Result<(), nisqplus_qec::QecError> {
//! let mut config = RuntimeConfig::new(3);
//! config.rounds = 100;
//! config.workers = 2;
//! config.cadence_cycles = 0; // un-paced smoke run
//! config.push_policy = PushPolicy::Block;
//! let engine = StreamingEngine::new(config)?;
//! let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
//! assert_eq!(outcome.report.counters.decoded, 100);
//! assert_eq!(outcome.report.counters.dropped, 0);
//! assert_eq!(outcome.frame().total_recorded(), 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod fault;
pub mod frame;
pub mod lattice_set;
pub mod obs;
pub mod packet;
pub mod queue;
pub mod report;
mod residual;
pub mod scenario;
pub mod source;
pub mod stage;
pub mod telemetry;
pub mod throttle;

pub use config::{ObsConfig, ResidualMode};
pub use engine::{
    MachineConfig, PushPolicy, RoundCorrection, RuntimeConfig, RuntimeOutcome, StreamingEngine,
};
pub use fault::{
    BurstFault, CorruptionFault, CrashFault, FaultInjections, FaultInjector, FaultPlan,
    FaultReport, StallFault,
};
pub use frame::ShardedPauliFrame;
pub use lattice_set::{LatticeDecoder, LatticeSet, LatticeSpec};
pub use obs::{
    EventJournal, EventKind, EventSeverity, HistogramSnapshot, JournalSnapshot, LocalHistogram,
    LogHistogram, MetricSample, MetricsRegistry, MetricsSnapshot, ObsPlane, RuntimeEvent,
    RuntimeObserver,
};
pub use packet::{PacketCodec, PacketError, SyndromePacket};
pub use queue::{RingFull, SpmcRing};
pub use report::{BenchEntry, ExportError, Json, SCHEMA_VERSION};
pub use scenario::{
    golden_summary, record_run, replay_run, GoldenSummary, ScenarioAction, ScenarioError,
    ScenarioScript, SyndromeTrace, TraceRecorder, TraceSource, TRACE_VERSION,
};
pub use source::{
    BurstOverlay, ElasticEvent, ElasticEventKind, InterleavedSource, NoiseEpoch, NoiseSpec,
    SourcedRound, SyndromeSource,
};
pub use stage::{
    ClassRouter, ConsumePolicy, PipelineGraph, PipelineOptions, RouteStage, SpreadRouter,
    StageReport,
};
pub use telemetry::{
    CounterSnapshot, DepthSample, LatencyProfile, LatencyQuantiles, LatticeCounterSnapshot,
    LatticeCounters, LatticeDepthSample, LatticeReport, ResidualReport, RuntimeCounters,
    RuntimeReport, WorkerCounterSnapshot,
};
pub use throttle::ThrottledDecoder;
