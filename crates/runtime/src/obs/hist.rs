//! A bounded-memory, log-bucketed latency histogram (HDR-style).
//!
//! [`LogHistogram`] replaces the grow-forever `Vec<f64>` latency samples
//! that used to feed [`LatencyProfile`](crate::telemetry::LatencyProfile):
//! recording a value touches a fixed set of atomic counters and never
//! allocates, so a million-round soak costs exactly the same memory as a
//! hundred-round smoke test.  The price is resolution, and the price is
//! bounded: values are binned into [`BUCKETS`] buckets whose width grows
//! geometrically (4 sub-buckets per octave), so any quantile read back from
//! the histogram is exact to within one bucket width — a relative error of
//! at most 25% of the value, and usually far less.
//!
//! The histogram is written concurrently (relaxed atomics — per-event
//! ordering between counters is irrelevant, only totals matter) and read by
//! taking a [`HistogramSnapshot`], a plain-data copy that can be merged
//! across workers, serialized, and queried for quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave: each power of two is split four ways.
const SUB_COUNT: u64 = 4;

/// Total bucket count.  With 4 sub-buckets per octave this tracks values up
/// to [`MAX_TRACKABLE`]; larger values are clamped into the last bucket.
pub const BUCKETS: usize = 128;

/// The largest distinguishable value (nanoseconds): ~8.6 seconds.  Values
/// above this land in the final bucket.
pub const MAX_TRACKABLE: u64 = (1 << 33) - 1;

/// Maps a value to its bucket index (0..[`BUCKETS`]).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_TRACKABLE);
    if v < SUB_COUNT {
        return v as usize;
    }
    let h = 63 - v.leading_zeros() as u64; // ilog2(v), >= 2 here
    let shift = h - 2;
    (4 * (h - 1) + ((v >> shift) - 4)) as usize
}

/// The half-open value range `[lo, hi)` covered by bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    let i = index as u64;
    if i < SUB_COUNT {
        return (i, i + 1);
    }
    let shift = i / 4 - 1;
    let lo = (4 + i % 4) << shift;
    (lo, lo + (1 << shift))
}

/// A fixed-size concurrent latency histogram.  See the module docs.
#[derive(Debug)]
pub struct LogHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.  All storage is allocated here, up front.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).  Lock-free, allocation-free; safe to
    /// call from any number of threads concurrently.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the value's *bucket* only — a single relaxed atomic add, the
    /// cheapest possible shared-histogram write.  Quantiles read back from a
    /// snapshot stay exact to within one bucket (the snapshot derives the
    /// total and the extrema bounds from the occupied buckets); the exact
    /// sum/min/max books are skipped, so [`HistogramSnapshot::mean_ns`] on a
    /// bucket-only histogram is approximate (bucket midpoints).  This is the
    /// hot-path feed for live mid-run sampling, where only quantiles are
    /// read; end-of-run profiles come from full [`LogHistogram::record`]
    /// books instead.
    pub fn record_bucket(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain-data [`HistogramSnapshot`].
    ///
    /// Concurrent recorders may be mid-update, so a snapshot taken mid-run
    /// is approximate at the margin (the final snapshot, taken after the
    /// workers quiesce, is exact).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let bucket_total: u64 = counts.iter().sum();
        // Values fed through `record_bucket` bump only their bucket, so the
        // exact books may trail the buckets: take the bucket total as the
        // count and bound the extrema by the occupied bucket range when the
        // exact extrema were never written.
        let count = self.count.load(Ordering::Relaxed).max(bucket_total);
        let exact_min = self.min.load(Ordering::Relaxed);
        let min_ns = if count == 0 {
            0
        } else if exact_min == u64::MAX {
            counts
                .iter()
                .position(|&c| c > 0)
                .map_or(0, |i| bucket_bounds(i).0)
        } else {
            exact_min
        };
        let exact_max = self.max.load(Ordering::Relaxed);
        let max_ns = if count > 0 && exact_max == 0 {
            counts
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| bucket_bounds(i).1 - 1)
        } else {
            exact_max
        };
        HistogramSnapshot {
            counts,
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            min_ns,
            max_ns,
        }
    }
}

/// The single-owner counterpart of [`LogHistogram`]: identical bucket
/// layout and snapshot semantics, but plain (non-atomic) storage, so a
/// recorder that already holds `&mut` — a worker's private per-lattice
/// latency books, say — pays ordinary integer arithmetic per sample
/// instead of five atomic read-modify-writes.  Snapshots from the two
/// types are interchangeable and merge freely.
#[derive(Debug)]
pub struct LocalHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.  All storage is allocated here, up front.
    #[must_use]
    pub fn new() -> Self {
        LocalHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).  Allocation-free plain arithmetic.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Copies the current state into a plain-data [`HistogramSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.to_vec(),
            count: self.count,
            sum_ns: self.sum,
            min_ns: if self.count == 0 { 0 } else { self.min },
            max_ns: self.max,
        }
    }
}

/// A plain-data copy of a [`LogHistogram`]: mergeable, serializable, and
/// queryable for quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; `counts[i]` covers the value range
    /// [`bucket_bounds`]`(i)`.  Always [`BUCKETS`] entries.
    pub counts: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Exact sum of all recorded values, nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value (0 when empty).
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }

    /// Returns `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`.  Totals add; extrema widen.  Merging
    /// per-worker snapshots yields exactly the histogram a single shared
    /// recorder would have produced.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if other.count > 0 {
            self.min_ns = if self.count == 0 {
                other.min_ns
            } else {
                self.min_ns.min(other.min_ns)
            };
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The exact mean, nanoseconds (the sum is tracked exactly; only the
    /// per-value distribution is bucketed).  Zero when empty.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate standard deviation, nanoseconds, computed from bucket
    /// midpoints (exact to within bucket resolution).  Zero when empty.
    #[must_use]
    pub fn std_dev_ns(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mut mid_sum = 0.0;
        let mut mid_sq_sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            let mid = (lo as f64 + hi as f64) / 2.0;
            mid_sum += c as f64 * mid;
            mid_sq_sum += c as f64 * mid * mid;
        }
        let mean = mid_sum / n;
        (mid_sq_sum / n - mean * mean).max(0.0).sqrt()
    }

    /// The `q`-quantile (`0.0..=1.0`), nanoseconds, interpolated within its
    /// bucket and clamped to the recorded `[min, max]` range.  Exact to
    /// within one bucket width.  Zero when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let within = (rank - seen) as f64 / c as f64;
                let value = lo as f64 + (hi - lo) as f64 * within;
                return value.clamp(self.min_ns as f64, self.max_ns as f64);
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// The width of the bucket the `q`-quantile falls in — the resolution
    /// bound on [`HistogramSnapshot::quantile_ns`].
    #[must_use]
    pub fn quantile_resolution_ns(&self, q: f64) -> f64 {
        let (lo, hi) = bucket_bounds(bucket_index(self.quantile_ns(q) as u64));
        (hi - lo) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|shift: u32| {
                let base = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
                [base.saturating_sub(1), base, base.saturating_add(1)]
            })
            .collect();
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            let clamped = v.min(MAX_TRACKABLE);
            assert!(
                lo <= clamped && clamped < hi,
                "value {v} (clamped {clamped}) not in bucket {i} = [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_buckets_tile_the_range() {
        for i in 1..BUCKETS {
            let (_, prev_hi) = bucket_bounds(i - 1);
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(prev_hi, lo, "gap between buckets {} and {}", i - 1, i);
            assert!(lo < hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, MAX_TRACKABLE + 1);
    }

    #[test]
    fn empty_histogram_reads_all_zero() {
        let hist = LogHistogram::new();
        let snap = hist.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.min_ns, 0);
        assert_eq!(snap.max_ns, 0);
        assert_eq!(snap.mean_ns(), 0.0);
        assert_eq!(snap.std_dev_ns(), 0.0);
        assert_eq!(snap.quantile_ns(0.99), 0.0);
    }

    #[test]
    fn mean_is_exact_and_extrema_are_exact() {
        let hist = LogHistogram::new();
        for v in [100u64, 250, 3_000, 47] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_ns, 3_397);
        assert_eq!(snap.min_ns, 47);
        assert_eq!(snap.max_ns, 3_000);
        assert!((snap.mean_ns() - 849.25).abs() < 1e-9);
    }

    #[test]
    fn quantiles_agree_with_exact_order_statistics_within_one_bucket() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x0B5);
        // A latency-shaped distribution: a tight body plus a long tail.
        let mut samples: Vec<u64> = (0..20_000)
            .map(|_| {
                let body = rng.gen_range(3_000..9_000) as u64;
                if rng.gen_range(0..100) < 3 {
                    body * rng.gen_range(5..40) as u64
                } else {
                    body
                }
            })
            .collect();
        let hist = LogHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let approx = snap.quantile_ns(q);
            let width = bucket_bounds(bucket_index(exact as u64)).1 as f64
                - bucket_bounds(bucket_index(exact as u64)).0 as f64;
            assert!(
                (approx - exact).abs() <= width,
                "q={q}: approx {approx} vs exact {exact}, bucket width {width}"
            );
        }
    }

    #[test]
    fn merged_snapshots_equal_a_single_shared_histogram() {
        let shared = LogHistogram::new();
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for i in 0..5_000u64 {
            let v = rng.gen_range(10..1_000_000) as u64;
            shared.record(v);
            if i % 2 == 0 { &a } else { &b }.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, shared.snapshot());
    }

    #[test]
    fn local_histogram_snapshot_matches_the_atomic_one() {
        let shared = LogHistogram::new();
        let mut local = LocalHistogram::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..5_000 {
            let v = rng.gen_range(10..1_000_000) as u64;
            shared.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 5_000);
        assert_eq!(local.snapshot(), shared.snapshot());
    }

    #[test]
    fn bucket_only_records_still_serve_quantiles_and_bounded_extrema() {
        let full = LogHistogram::new();
        let coarse = LogHistogram::new();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..10_000 {
            let v = rng.gen_range(100..50_000) as u64;
            full.record(v);
            coarse.record_bucket(v);
        }
        let full_snap = full.snapshot();
        let coarse_snap = coarse.snapshot();
        assert_eq!(coarse_snap.count, 10_000, "count derives from the buckets");
        assert_eq!(coarse_snap.counts, full_snap.counts);
        for q in [0.5, 0.99, 0.999] {
            assert!(
                (coarse_snap.quantile_ns(q) - full_snap.quantile_ns(q)).abs()
                    <= full_snap.quantile_resolution_ns(q),
                "bucket-only quantiles stay within one bucket of the full books"
            );
        }
        // Extrema are bounded by the occupied bucket range, not exact.
        assert!(coarse_snap.min_ns <= full_snap.min_ns);
        assert!(coarse_snap.max_ns >= full_snap.max_ns);
    }

    #[test]
    fn values_beyond_the_trackable_range_clamp_into_the_last_bucket() {
        let hist = LogHistogram::new();
        hist.record(u64::MAX);
        let snap = hist.snapshot();
        assert_eq!(snap.counts[BUCKETS - 1], 1);
        assert_eq!(
            snap.max_ns,
            u64::MAX,
            "extrema stay exact even when binning clamps"
        );
    }
}
