//! The live observability plane.
//!
//! Everything the pipeline knows about itself while it is running lives
//! here, in four bounded-memory pieces threaded through the producer, the
//! stages, the workers, and the sinks:
//!
//! * [`MetricsRegistry`] — named lock-free counters.  Stages register
//!   their [`StageMetrics`] at construction and
//!   bump them on the hot path; end-of-run
//!   [`StageReport`](crate::stage::StageReport)s are snapshot views of this
//!   live state.
//! * [`LogHistogram`] / [`LocalHistogram`] — HDR-style log-bucketed
//!   latency histograms (decode and emit-to-commit), replacing unbounded
//!   per-round sample vectors.  Fixed 128 buckets, mergeable across
//!   workers, quantiles exact to within one bucket width.  Workers keep
//!   exact per-lattice books in plain-integer [`LocalHistogram`]s and feed
//!   the shared machine-wide [`LogHistogram`] with one relaxed atomic add
//!   per round, so the sampler can read live quantiles without taxing the
//!   decode path.
//! * [`EventJournal`] — a bounded ring of structured [`RuntimeEvent`]s
//!   (shed, stall, budget exhaustion, steal, verdict flip) with severity
//!   and per-lattice/worker attribution.
//! * [`MetricsSnapshot`]s — periodic samples of all of the above, taken by
//!   a cadenced sampler thread so liveness is observable mid-run.
//!
//! The [`ObsPlane`] bundles the four and is owned by the
//! [`PipelineGraph`](crate::stage::PipelineGraph); a custom
//! [`RuntimeObserver`] can be installed through
//! [`PipelineOptions`](crate::stage::PipelineOptions) to tap events and
//! snapshots live.  Everything here is allocation-free after construction
//! on the paths the pipeline hits per round (histogram record, counter
//! bump, journal publish) — the bench alloc-guard enforces it.

pub mod hist;
pub mod journal;
pub mod registry;
pub mod snapshot;

pub use hist::{
    bucket_bounds, bucket_index, HistogramSnapshot, LocalHistogram, LogHistogram, BUCKETS,
};
pub use journal::{
    EventCounts, EventJournal, EventKind, EventSeverity, JournalSnapshot, RuntimeEvent,
    RuntimeObserver,
};
pub use registry::{Counter, MetricSample, MetricsRegistry, StageMetrics};
pub use snapshot::MetricsSnapshot;

use crate::config::ObsConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The bundle of live observability state shared by every pipeline stage.
#[derive(Debug)]
pub struct ObsPlane {
    config: ObsConfig,
    registry: MetricsRegistry,
    journal: EventJournal,
    decode_hist: Arc<LogHistogram>,
    snapshots: Mutex<Vec<MetricsSnapshot>>,
    snapshots_dropped: AtomicU64,
    observer: Option<Box<dyn RuntimeObserver>>,
}

impl ObsPlane {
    /// A plane configured by `config`, with no external observer.
    #[must_use]
    pub fn new(config: ObsConfig) -> Self {
        Self::with_observer(config, None)
    }

    /// A plane with an optional external [`RuntimeObserver`] tap.
    #[must_use]
    pub fn with_observer(config: ObsConfig, observer: Option<Box<dyn RuntimeObserver>>) -> Self {
        let journal = EventJournal::new(config.journal_capacity);
        let snapshots = Mutex::new(Vec::with_capacity(config.max_snapshots.min(4096)));
        ObsPlane {
            config,
            registry: MetricsRegistry::new(),
            journal,
            decode_hist: Arc::new(LogHistogram::new()),
            snapshots,
            snapshots_dropped: AtomicU64::new(0),
            observer,
        }
    }

    /// The plane's configuration.
    #[must_use]
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// The shared metric name table.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event journal.
    #[must_use]
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The machine-wide decode-latency histogram (all lattices, all
    /// workers), the sampler's source for live quantiles.  Workers clone
    /// the `Arc` at startup and feed it with single-atomic-add
    /// [`LogHistogram::record_bucket`] writes on every decode; the exact
    /// end-of-run latency profiles come from the workers' private
    /// [`LocalHistogram`] books instead.
    #[must_use]
    pub fn decode_hist(&self) -> &Arc<LogHistogram> {
        &self.decode_hist
    }

    /// Publishes an event into the journal (allocation-free) and forwards
    /// it to the installed observer, if any.
    pub fn publish(
        &self,
        kind: EventKind,
        severity: EventSeverity,
        lattice_id: Option<u32>,
        worker_id: Option<u32>,
        elapsed_ns: u64,
        value: u64,
    ) {
        let event = self
            .journal
            .publish(kind, severity, lattice_id, worker_id, elapsed_ns, value);
        if let Some(observer) = &self.observer {
            observer.on_event(&event);
        }
    }

    /// Appends a sampler-produced snapshot to the bounded snapshot log
    /// (dropping — and counting — samples past `max_snapshots`) and
    /// forwards it to the installed observer.
    pub fn push_snapshot(&self, snapshot: MetricsSnapshot) {
        if let Some(observer) = &self.observer {
            observer.on_snapshot(&snapshot);
        }
        let mut log = self.snapshots.lock().expect("snapshot log poisoned");
        if log.len() < self.config.max_snapshots {
            log.push(snapshot);
        } else {
            self.snapshots_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots recorded so far (cheap length read).
    #[must_use]
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.lock().expect("snapshot log poisoned").len()
    }

    /// Snapshots dropped after the log filled.
    #[must_use]
    pub fn snapshots_dropped(&self) -> u64 {
        self.snapshots_dropped.load(Ordering::Relaxed)
    }

    /// Drains the snapshot log (called once, at end of run).
    #[must_use]
    pub fn take_snapshots(&self) -> Vec<MetricsSnapshot> {
        std::mem::take(&mut *self.snapshots.lock().expect("snapshot log poisoned"))
    }

    /// The journal's end-of-run snapshot, with the configured recent-event
    /// tail.
    #[must_use]
    pub fn journal_snapshot(&self) -> JournalSnapshot {
        self.journal.snapshot(self.config.journal_tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug, Default)]
    struct CountingObserver {
        events: Arc<AtomicUsize>,
        snapshots: Arc<AtomicUsize>,
    }

    impl RuntimeObserver for CountingObserver {
        fn on_event(&self, _event: &RuntimeEvent) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        fn on_snapshot(&self, _snapshot: &MetricsSnapshot) {
            self.snapshots.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn sample(seq: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            seq,
            elapsed_ns: seq * 1000,
            counters: crate::telemetry::RuntimeCounters::with_lattices(1).snapshot(),
            queue_depth: 0,
            backlog: 0,
            per_lattice_backlog: vec![0],
            decode_p50_ns: 0.0,
            decode_p99_ns: 0.0,
            decode_p999_ns: 0.0,
            events_published: 0,
            events_overwritten: 0,
        }
    }

    #[test]
    fn observer_sees_every_event_and_snapshot() {
        let observer = CountingObserver::default();
        let events = Arc::clone(&observer.events);
        let snapshots = Arc::clone(&observer.snapshots);
        let plane = ObsPlane::with_observer(ObsConfig::default(), Some(Box::new(observer)));
        plane.publish(EventKind::Shed, EventSeverity::Warning, Some(0), None, 5, 1);
        plane.push_snapshot(sample(0));
        assert_eq!(events.load(Ordering::Relaxed), 1);
        assert_eq!(snapshots.load(Ordering::Relaxed), 1);
        assert_eq!(plane.journal().published(), 1);
        assert_eq!(plane.snapshot_count(), 1);
    }

    #[test]
    fn snapshot_log_is_bounded_and_counts_drops() {
        let config = ObsConfig {
            max_snapshots: 2,
            ..ObsConfig::default()
        };
        let plane = ObsPlane::new(config);
        for seq in 0..5 {
            plane.push_snapshot(sample(seq));
        }
        assert_eq!(plane.snapshot_count(), 2);
        assert_eq!(plane.snapshots_dropped(), 3);
        let kept = plane.take_snapshots();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[1].seq, 1);
        assert_eq!(plane.snapshot_count(), 0);
    }
}
