//! The event journal: a bounded ring of structured runtime events.
//!
//! Counters say *how much*; the journal says *what happened, when, to
//! whom*.  Every noteworthy pipeline incident — a shed round, a
//! backpressure stall, an exhausted QoS budget, a cross-channel steal, a
//! per-lattice verdict flip, a worker crash and its restart, a quarantined
//! record, a burst-noise episode, a watchdog trip, a scripted lattice
//! coming online or retiring — is published as a
//! [`RuntimeEvent`] with a severity and per-lattice/per-worker attribution.  The journal is a
//! fixed-capacity ring: old events are overwritten (and counted as
//! overwritten), publish never allocates, and per-kind/per-severity totals
//! survive even when the events themselves have been rotated out.
//!
//! Publishing takes a short mutex critical section (a slot copy and a few
//! counter bumps).  Events are rare relative to rounds — a healthy run
//! publishes almost nothing — so the lock is uncontended exactly when the
//! pipeline is busiest.

use crate::obs::snapshot::MetricsSnapshot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How bad a [`RuntimeEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventSeverity {
    /// Expected under load; useful for trend-watching (stalls, steals).
    Info,
    /// Service degraded by policy (shed rounds, exhausted budgets).
    Warning,
    /// The run's verdict is changing (a lattice falling behind).
    Critical,
}

impl EventSeverity {
    /// A stable lowercase label (used in exports and logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventSeverity::Info => "info",
            EventSeverity::Warning => "warning",
            EventSeverity::Critical => "critical",
        }
    }
}

impl fmt::Display for EventSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of incident a [`RuntimeEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A round was discarded under the `Drop` push policy (`value` = round).
    Shed,
    /// The source stalled on a full downstream seam under the `Block`
    /// policy (`value` = spin iterations burned on the round).
    BackpressureStall,
    /// A QoS budget refused an admission (`value` = round).
    BudgetExhausted,
    /// A worker stole work from a foreign channel (`value` = records
    /// stolen in the batch).
    Steal,
    /// A lattice's live backlog verdict flipped (`value` = backlog at the
    /// flip; severity Critical when falling behind, Info on recovery).
    VerdictFlip,
    /// A worker's decode loop panicked and was caught by its supervisor
    /// (`value` = rounds the worker had committed before dying).
    WorkerCrash,
    /// A crashed worker's replacement came up: decoders re-prepared, the
    /// dead worker's frame shard adopted (`value` = restart attempt, 1-based).
    WorkerRestart,
    /// A record failed wire validation and was discarded instead of decoded
    /// (`value` = the worker's running quarantine total).
    Quarantine,
    /// A burst-noise episode began blanketing a lattice (`value` = the
    /// lattice round the episode starts at).
    BurstStart,
    /// A burst-noise episode ended (`value` = the first calm round).
    BurstEnd,
    /// The producer's stall watchdog expired on a blocked seam and degraded
    /// the round instead of hanging (`value` = round force-shed).
    WatchdogTrip,
    /// A scripted [`ScenarioScript`](crate::scenario::ScenarioScript) action
    /// brought a dormant lattice online (`value` = the machine-global round
    /// it fired at).
    LatticeAdded,
    /// A scripted action retired a lattice: its stream truncated, its
    /// packet-header watermark armed (`value` = the rounds it emitted
    /// before retiring).
    LatticeRetired,
}

/// Number of [`EventKind`] variants (sizes the per-kind counter array).
const KINDS: usize = 13;

impl EventKind {
    /// A stable snake_case label (used in exports and logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Shed => "shed",
            EventKind::BackpressureStall => "backpressure_stall",
            EventKind::BudgetExhausted => "budget_exhausted",
            EventKind::Steal => "steal",
            EventKind::VerdictFlip => "verdict_flip",
            EventKind::WorkerCrash => "worker_crash",
            EventKind::WorkerRestart => "worker_restart",
            EventKind::Quarantine => "quarantine",
            EventKind::BurstStart => "burst_start",
            EventKind::BurstEnd => "burst_end",
            EventKind::WatchdogTrip => "watchdog_trip",
            EventKind::LatticeAdded => "lattice_added",
            EventKind::LatticeRetired => "lattice_retired",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::Shed => 0,
            EventKind::BackpressureStall => 1,
            EventKind::BudgetExhausted => 2,
            EventKind::Steal => 3,
            EventKind::VerdictFlip => 4,
            EventKind::WorkerCrash => 5,
            EventKind::WorkerRestart => 6,
            EventKind::Quarantine => 7,
            EventKind::BurstStart => 8,
            EventKind::BurstEnd => 9,
            EventKind::WatchdogTrip => 10,
            EventKind::LatticeAdded => 11,
            EventKind::LatticeRetired => 12,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One journal entry.  Plain `Copy` data: publishing moves no heap memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// Monotonic publish sequence number (global across kinds).
    pub seq: u64,
    /// Nanoseconds since the pipeline epoch.
    pub elapsed_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// How bad it is.
    pub severity: EventSeverity,
    /// The lattice involved, when the event is lattice-scoped.
    pub lattice_id: Option<u32>,
    /// The worker involved, when the event is worker-scoped.
    pub worker_id: Option<u32>,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub value: u64,
}

impl Default for RuntimeEvent {
    fn default() -> Self {
        RuntimeEvent {
            seq: 0,
            elapsed_ns: 0,
            kind: EventKind::Shed,
            severity: EventSeverity::Info,
            lattice_id: None,
            worker_id: None,
            value: 0,
        }
    }
}

/// A callback surface for live event/snapshot consumers (a controller, a
/// log forwarder, a test harness).  Install one via
/// [`PipelineOptions::observer`](crate::stage::PipelineOptions); both hooks
/// default to no-ops.
pub trait RuntimeObserver: fmt::Debug + Send + Sync {
    /// Called synchronously for every published event, after it lands in
    /// the journal.  Runs on the publishing thread: keep it cheap.
    fn on_event(&self, _event: &RuntimeEvent) {}

    /// Called for every [`MetricsSnapshot`] the sampler takes.  Runs on the
    /// sampler thread.
    fn on_snapshot(&self, _snapshot: &MetricsSnapshot) {}
}

/// Per-kind event totals (never rotated out, unlike the events themselves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// [`EventKind::Shed`] events published.
    pub shed: u64,
    /// [`EventKind::BackpressureStall`] events published.
    pub backpressure_stall: u64,
    /// [`EventKind::BudgetExhausted`] events published.
    pub budget_exhausted: u64,
    /// [`EventKind::Steal`] events published.
    pub steal: u64,
    /// [`EventKind::VerdictFlip`] events published.
    pub verdict_flip: u64,
    /// [`EventKind::WorkerCrash`] events published.
    pub worker_crash: u64,
    /// [`EventKind::WorkerRestart`] events published.
    pub worker_restart: u64,
    /// [`EventKind::Quarantine`] events published.
    pub quarantine: u64,
    /// [`EventKind::BurstStart`] events published.
    pub burst_start: u64,
    /// [`EventKind::BurstEnd`] events published.
    pub burst_end: u64,
    /// [`EventKind::WatchdogTrip`] events published.
    pub watchdog_trip: u64,
    /// [`EventKind::LatticeAdded`] events published.
    pub lattice_added: u64,
    /// [`EventKind::LatticeRetired`] events published.
    pub lattice_retired: u64,
}

/// A plain-data copy of the journal's state: totals plus the most recent
/// events still resident in the ring.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Events published over the journal's lifetime.
    pub published: u64,
    /// Events overwritten by ring rotation (`published - overwritten`
    /// were still resident, before the `recent` tail cut).
    pub overwritten: u64,
    /// Info-severity events published.
    pub info: u64,
    /// Warning-severity events published.
    pub warning: u64,
    /// Critical-severity events published.
    pub critical: u64,
    /// Per-kind totals.
    pub counts: EventCounts,
    /// The newest resident events, oldest first (bounded by the journal
    /// tail configured at snapshot time).
    pub recent: Vec<RuntimeEvent>,
}

struct Ring {
    slots: Vec<RuntimeEvent>,
    /// Next slot to write.
    head: usize,
    /// Occupied slots (grows to capacity, then sticks).
    len: usize,
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.slots.len())
            .field("head", &self.head)
            .field("len", &self.len)
            .finish()
    }
}

/// The bounded event ring.  See the module docs.
#[derive(Debug)]
pub struct EventJournal {
    ring: Mutex<Ring>,
    published: AtomicU64,
    overwritten: AtomicU64,
    severity_counts: [AtomicU64; 3],
    kind_counts: [AtomicU64; KINDS],
}

impl EventJournal {
    /// A journal holding at most `capacity` resident events (clamped to at
    /// least 1).  All storage is allocated here, up front.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            ring: Mutex::new(Ring {
                slots: vec![RuntimeEvent::default(); capacity.max(1)],
                head: 0,
                len: 0,
            }),
            published: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            severity_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            kind_counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Resident capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring
            .lock()
            .expect("event journal poisoned")
            .slots
            .len()
    }

    /// Events published over the journal's lifetime.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Events overwritten by ring rotation.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Events published with `kind`.
    #[must_use]
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Publishes one event, assigning its sequence number.  Allocation-free:
    /// the event is copied into a preallocated ring slot (overwriting — and
    /// counting — the oldest resident event when full).  Returns the stored
    /// event so callers can forward it to an observer.
    pub fn publish(
        &self,
        kind: EventKind,
        severity: EventSeverity,
        lattice_id: Option<u32>,
        worker_id: Option<u32>,
        elapsed_ns: u64,
        value: u64,
    ) -> RuntimeEvent {
        let seq = self.published.fetch_add(1, Ordering::Relaxed);
        self.severity_counts[severity as usize].fetch_add(1, Ordering::Relaxed);
        self.kind_counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        let event = RuntimeEvent {
            seq,
            elapsed_ns,
            kind,
            severity,
            lattice_id,
            worker_id,
            value,
        };
        let mut ring = self.ring.lock().expect("event journal poisoned");
        let capacity = ring.slots.len();
        let head = ring.head;
        ring.slots[head] = event;
        ring.head = (head + 1) % capacity;
        if ring.len < capacity {
            ring.len += 1;
        } else {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        event
    }

    /// Copies totals plus the newest `tail` resident events (oldest first)
    /// into a [`JournalSnapshot`].
    #[must_use]
    pub fn snapshot(&self, tail: usize) -> JournalSnapshot {
        let ring = self.ring.lock().expect("event journal poisoned");
        let capacity = ring.slots.len();
        let take = tail.min(ring.len);
        let mut recent = Vec::with_capacity(take);
        // Oldest of the tail sits `take` slots behind the head.
        let start = (ring.head + capacity - take) % capacity;
        for i in 0..take {
            recent.push(ring.slots[(start + i) % capacity]);
        }
        JournalSnapshot {
            published: self.published.load(Ordering::Relaxed),
            overwritten: self.overwritten.load(Ordering::Relaxed),
            info: self.severity_counts[EventSeverity::Info as usize].load(Ordering::Relaxed),
            warning: self.severity_counts[EventSeverity::Warning as usize].load(Ordering::Relaxed),
            critical: self.severity_counts[EventSeverity::Critical as usize]
                .load(Ordering::Relaxed),
            counts: EventCounts {
                shed: self.count_of(EventKind::Shed),
                backpressure_stall: self.count_of(EventKind::BackpressureStall),
                budget_exhausted: self.count_of(EventKind::BudgetExhausted),
                steal: self.count_of(EventKind::Steal),
                verdict_flip: self.count_of(EventKind::VerdictFlip),
                worker_crash: self.count_of(EventKind::WorkerCrash),
                worker_restart: self.count_of(EventKind::WorkerRestart),
                quarantine: self.count_of(EventKind::Quarantine),
                burst_start: self.count_of(EventKind::BurstStart),
                burst_end: self.count_of(EventKind::BurstEnd),
                watchdog_trip: self.count_of(EventKind::WatchdogTrip),
                lattice_added: self.count_of(EventKind::LatticeAdded),
                lattice_retired: self.count_of(EventKind::LatticeRetired),
            },
            recent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish_n(journal: &EventJournal, n: u64) {
        for round in 0..n {
            journal.publish(
                EventKind::Shed,
                EventSeverity::Warning,
                Some(0),
                None,
                round * 10,
                round,
            );
        }
    }

    #[test]
    fn sequence_numbers_are_assigned_in_publish_order() {
        let journal = EventJournal::new(8);
        publish_n(&journal, 3);
        let snap = journal.snapshot(8);
        let seqs: Vec<u64> = snap.recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(snap.published, 3);
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.warning, 3);
        assert_eq!(snap.counts.shed, 3);
    }

    #[test]
    fn a_full_ring_overwrites_oldest_first_and_counts_it() {
        let journal = EventJournal::new(4);
        publish_n(&journal, 10);
        let snap = journal.snapshot(4);
        assert_eq!(snap.published, 10);
        assert_eq!(snap.overwritten, 6);
        // The four newest survive, in order.
        let seqs: Vec<u64> = snap.recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_tail_cuts_from_the_newest_end() {
        let journal = EventJournal::new(8);
        publish_n(&journal, 5);
        let snap = journal.snapshot(2);
        let seqs: Vec<u64> = snap.recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn severity_and_kind_totals_survive_rotation() {
        let journal = EventJournal::new(2);
        journal.publish(EventKind::Steal, EventSeverity::Info, None, Some(1), 0, 4);
        journal.publish(
            EventKind::VerdictFlip,
            EventSeverity::Critical,
            Some(2),
            None,
            5,
            40,
        );
        publish_n(&journal, 3); // rotates both earlier events out
        let snap = journal.snapshot(2);
        assert_eq!(snap.info, 1);
        assert_eq!(snap.critical, 1);
        assert_eq!(snap.warning, 3);
        assert_eq!(snap.counts.steal, 1);
        assert_eq!(snap.counts.verdict_flip, 1);
        assert_eq!(snap.counts.shed, 3);
        assert_eq!(snap.recent.len(), 2);
    }

    #[test]
    fn fault_kinds_have_stable_labels_and_distinct_counters() {
        let kinds = [
            EventKind::WorkerCrash,
            EventKind::WorkerRestart,
            EventKind::Quarantine,
            EventKind::BurstStart,
            EventKind::BurstEnd,
            EventKind::WatchdogTrip,
        ];
        let journal = EventJournal::new(16);
        for (i, kind) in kinds.iter().enumerate() {
            for _ in 0..=i {
                journal.publish(*kind, EventSeverity::Warning, Some(0), Some(1), 0, 7);
            }
        }
        let snap = journal.snapshot(16);
        assert_eq!(snap.counts.worker_crash, 1);
        assert_eq!(snap.counts.worker_restart, 2);
        assert_eq!(snap.counts.quarantine, 3);
        assert_eq!(snap.counts.burst_start, 4);
        assert_eq!(snap.counts.burst_end, 5);
        assert_eq!(snap.counts.watchdog_trip, 6);
        let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "worker_crash",
                "worker_restart",
                "quarantine",
                "burst_start",
                "burst_end",
                "watchdog_trip"
            ]
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let journal = EventJournal::new(0);
        assert_eq!(journal.capacity(), 1);
        publish_n(&journal, 2);
        assert_eq!(journal.snapshot(4).recent.len(), 1);
    }
}
