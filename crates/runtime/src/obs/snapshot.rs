//! Periodic mid-run samples of the pipeline's live state.
//!
//! A dedicated sampler thread (spawned by the pipeline graph when
//! [`ObsConfig::snapshot_cadence_us`](crate::config::ObsConfig) is
//! non-zero) wakes on a fixed cadence and copies the cheap-to-read live
//! state — counters, queue depth, per-lattice backlog, aggregate latency
//! quantiles, journal totals — into a [`MetricsSnapshot`].  The snapshot
//! log is bounded; liveness becomes observable *during* the run instead of
//! being reconstructed from end-of-run totals.

use crate::telemetry::CounterSnapshot;

/// One sample of the pipeline's live state.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sample sequence number, starting at 0.
    pub seq: u64,
    /// Nanoseconds since the pipeline epoch.
    pub elapsed_ns: u64,
    /// The aggregate runtime counters at sampling time.
    pub counters: CounterSnapshot,
    /// Records resident across all channels at sampling time.
    pub queue_depth: u64,
    /// Aggregate backlog (generated − decoded − dropped).
    pub backlog: u64,
    /// Backlog broken down per lattice, in lattice-id order.
    pub per_lattice_backlog: Vec<u64>,
    /// Live decode-latency median, nanoseconds (0 until the first decode).
    pub decode_p50_ns: f64,
    /// Live decode-latency 99th percentile, nanoseconds.
    pub decode_p99_ns: f64,
    /// Live decode-latency 99.9th percentile, nanoseconds.
    pub decode_p999_ns: f64,
    /// Journal events published so far.
    pub events_published: u64,
    /// Journal events rotated out so far.
    pub events_overwritten: u64,
}
