//! The metrics registry: named, lock-free counters shared across stages.
//!
//! A [`MetricsRegistry`] maps dotted metric names (`stage.gate.rejected`,
//! `stage.channel.0.occupancy_peak`, ...) to atomic [`Counter`] handles.
//! Registration takes a lock and allocates — it happens once, at pipeline
//! construction — but every update afterwards is a single relaxed atomic
//! op on a pre-registered handle, so the hot path never touches the name
//! table.  Anyone holding a reference to the registry (the snapshot
//! sampler, a future controller) can read a consistent-enough view at any
//! instant with [`MetricsRegistry::snapshot`].
//!
//! [`StageMetrics`] bundles the seven counters every stage reports — the
//! same seven fields as [`StageReport`] — so a stage's end-of-run report
//! becomes nothing more than a named read of live registry state.

use crate::stage::StageReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared atomic counter/gauge handle.  Cloning is cheap (an `Arc` bump)
/// and all clones address the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the value to `candidate` if it is larger (gauge high-water
    /// mark).
    pub fn set_max(&self, candidate: u64) {
        self.0.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Overwrites the value (gauge semantics).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One named value read out of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// The dotted metric name.
    pub name: String,
    /// The value at sampling time.
    pub value: u64,
}

/// A name → [`Counter`] table.  See the module docs for the locking
/// contract (lock on register/snapshot, lock-free on update).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Counter)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, registering a fresh one
    /// at zero on first use.  Two callers asking for the same name get
    /// handles to the same cell.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some((_, counter)) = entries.iter().find(|(n, _)| n == name) {
            return counter.clone();
        }
        let counter = Counter::new();
        entries.push((name.to_string(), counter.clone()));
        counter
    }

    /// Registered metric count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// Returns `true` when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every registered metric, sorted by name.  Values are loaded
    /// one at a time (relaxed), so a snapshot taken mid-run is per-counter
    /// atomic but not globally instantaneous.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut samples: Vec<MetricSample> = entries
            .iter()
            .map(|(name, counter)| MetricSample {
                name: name.clone(),
                value: counter.get(),
            })
            .collect();
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        samples
    }
}

/// The seven per-stage counters, as live registry handles.  Field meanings
/// mirror [`StageReport`] exactly.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// Items the stage took in.
    pub accepted: Counter,
    /// Items the stage passed downstream.
    pub emitted: Counter,
    /// Items refused or shed.
    pub rejected: Counter,
    /// Flow-control credits granted.
    pub credits_issued: Counter,
    /// Flow-control credits consumed.
    pub credits_consumed: Counter,
    /// Occupancy high-water mark (gauge).
    pub occupancy_peak: Counter,
    /// Cycles spent stalled on a downstream seam.
    pub stall_cycles: Counter,
}

impl StageMetrics {
    /// Registers the stage's counters in `registry` under
    /// `stage.<name>.<field>`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry, name: &str) -> Self {
        StageMetrics {
            accepted: registry.counter(&format!("stage.{name}.accepted")),
            emitted: registry.counter(&format!("stage.{name}.emitted")),
            rejected: registry.counter(&format!("stage.{name}.rejected")),
            credits_issued: registry.counter(&format!("stage.{name}.credits_issued")),
            credits_consumed: registry.counter(&format!("stage.{name}.credits_consumed")),
            occupancy_peak: registry.counter(&format!("stage.{name}.occupancy_peak")),
            stall_cycles: registry.counter(&format!("stage.{name}.stall_cycles")),
        }
    }

    /// Counters not attached to any registry — for standalone stage use
    /// (tests, ad-hoc pipelines).  Updates still work; they are just not
    /// observable by name.
    #[must_use]
    pub fn detached() -> Self {
        Self::default()
    }

    /// Overwrites every counter with the corresponding field of `report` —
    /// the refresh path for stages that keep authoritative books elsewhere
    /// (credit loops sum per-lane counters at report time) and mirror them
    /// into the registry.
    pub fn sync_from(&self, report: &StageReport) {
        self.accepted.store(report.accepted);
        self.emitted.store(report.emitted);
        self.rejected.store(report.rejected);
        self.credits_issued.store(report.credits_issued);
        self.credits_consumed.store(report.credits_consumed);
        self.occupancy_peak.store(report.occupancy_peak);
        self.stall_cycles.store(report.stall_cycles);
    }

    /// Reads the counters into a [`StageReport`] named `stage` — the
    /// "report" is now a snapshot view of live registry state.
    #[must_use]
    pub fn report(&self, stage: impl Into<String>) -> StageReport {
        StageReport {
            stage: stage.into(),
            accepted: self.accepted.get(),
            emitted: self.emitted.get(),
            rejected: self.rejected.get(),
            credits_issued: self.credits_issued.get(),
            credits_consumed: self.credits_consumed.get(),
            occupancy_peak: self.occupancy_peak.get(),
            stall_cycles: self.stall_cycles.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_yields_the_same_cell() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("stage.gate.rejected");
        let b = registry.counter("stage.gate.rejected");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_reads_current_values() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last").store(9);
        registry.counter("a.first").store(1);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot,
            vec![
                MetricSample {
                    name: "a.first".into(),
                    value: 1
                },
                MetricSample {
                    name: "z.last".into(),
                    value: 9
                },
            ]
        );
    }

    #[test]
    fn set_max_keeps_the_high_water_mark() {
        let counter = Counter::new();
        counter.set_max(5);
        counter.set_max(3);
        assert_eq!(counter.get(), 5);
    }

    #[test]
    fn stage_metrics_report_reads_registry_state() {
        let registry = MetricsRegistry::new();
        let metrics = StageMetrics::register(&registry, "skid");
        metrics.accepted.add(10);
        metrics.emitted.add(8);
        metrics.rejected.add(2);
        metrics.occupancy_peak.set_max(4);
        metrics.stall_cycles.incr();
        let report = metrics.report("skid");
        assert_eq!(report.accepted, 10);
        assert_eq!(report.emitted, 8);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.occupancy_peak, 4);
        assert_eq!(report.stall_cycles, 1);
        // The same numbers are visible by name, registry-wide.
        let by_name = registry.snapshot();
        assert!(by_name
            .iter()
            .any(|m| m.name == "stage.skid.accepted" && m.value == 10));
        assert_eq!(registry.len(), 7);
    }
}
