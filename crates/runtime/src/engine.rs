//! The streaming engine: the run orchestration that turns seeded syndrome
//! streams into a [`RuntimeReport`].
//!
//! The engine itself is thin by design.  All of the moving parts — paced
//! generation, QoS admission, routed placement, credit-backed channels,
//! batch muxes, the prepared-decoder hot path, frame and depth sinks — live
//! as composable stages in [`crate::stage`], wired together by a
//! [`PipelineGraph`]:
//!
//! ```text
//! source ──► gate ──► route ──► channel[0..C] ──► mux ──► decode ──► sink
//!  (paced)  (QoS)   (placement)  (credit loops)  (per worker, N threads)
//! ```
//!
//! [`StreamingEngine::run`] builds the graph with default options — one
//! credit channel per worker, spread placement, own-then-steal consumption,
//! which reproduces the classic engine behaviour byte-for-byte — runs it to
//! completion, and folds the [`PipelineRun`] into the final
//! [`RuntimeOutcome`]: per-lattice reports with backlog timelines, merged
//! frames, the measured-versus-model backlog comparison
//! ([`BacklogModel`](nisqplus_system::backlog::BacklogModel)), one
//! [`StageReport`](crate::stage::StageReport) per pipeline stage, and —
//! when [`MachineConfig::analyze_residuals`] is set — the measured logical
//! cost of shedding: classified in-stream under
//! [`ResidualMode::Streaming`](crate::config::ResidualMode) (workers tally
//! decoded rounds as they commit, the producer tallies shed rounds as it
//! sheds), or by replaying each lattice's seeded error stream at end of run
//! under [`ResidualMode::Replay`](crate::config::ResidualMode).
//! [`StreamingEngine::run_with`] accepts custom
//! [`PipelineOptions`] (placement, consumption discipline, channel fan-out)
//! for experiments the default wiring can't express, e.g. strict-priority
//! traffic classes (`examples/stage_pipeline.rs`).
//!
//! Shed rounds stay accounted for end to end: they are fed into the
//! per-lattice frame path as identity corrections, carried in
//! [`MeasuredBacklog::shed`], and priced in measured logical failures by
//! the residual analysis.

use crate::frame::ShardedPauliFrame;
use crate::lattice_set::LatticeSet;
use crate::obs::HistogramSnapshot;
use crate::residual::{analyze_lattice_residuals, streaming_residual_report};
use crate::scenario::SyndromeTrace;
use crate::source::InterleavedSource;
use crate::stage::{PipelineGraph, PipelineOptions, PipelineRun};
use crate::telemetry::{
    LatencyProfile, LatticeDepthSample, LatticeReport, RuntimeCounters, RuntimeReport,
    WorkerCounters,
};
use nisqplus_decoders::traits::DecoderFactory;
use nisqplus_qec::frame::PauliFrame;
use nisqplus_qec::logical::ResidualTally;
use nisqplus_qec::pauli::PauliString;
use nisqplus_qec::QecError;
use nisqplus_system::backlog::{BacklogComparison, MeasuredBacklog};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use crate::config::{MachineConfig, PushPolicy, RuntimeConfig};

/// One round's committed correction, kept when
/// [`MachineConfig::record_corrections`] is set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundCorrection {
    /// Id of the lattice the correction belongs to.
    pub lattice_id: u32,
    /// The syndrome-generation round (within that lattice's stream) the
    /// correction belongs to.
    pub round: u64,
    /// The composed X- and Z-sector correction committed to the frame.
    pub correction: PauliString,
}

/// Everything a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOutcome {
    /// The telemetry report (counters, timelines, latencies, per-lattice
    /// breakdown, per-stage flow reports, model comparisons).
    pub report: RuntimeReport,
    /// One sharded Pauli frame per lattice, indexed by lattice id; each
    /// holds the per-worker shards and their merge for that lattice.
    pub frames: Vec<ShardedPauliFrame>,
    /// Per-round corrections sorted by `(lattice_id, round)`; empty unless
    /// [`MachineConfig::record_corrections`] was set.
    pub corrections: Vec<RoundCorrection>,
    /// The run's recorded syndrome trace; `None` unless the run was started
    /// through [`record_run`](crate::scenario::record_run) (or with
    /// [`PipelineOptions::record_trace`] set).
    pub trace: Option<SyndromeTrace>,
}

impl RuntimeOutcome {
    /// The sharded frame of lattice 0 — the whole machine for single-lattice
    /// runs.
    #[must_use]
    pub fn frame(&self) -> &ShardedPauliFrame {
        &self.frames[0]
    }

    /// The sharded frame of one lattice.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_id` is out of range.
    #[must_use]
    pub fn frame_for(&self, lattice_id: usize) -> &ShardedPauliFrame {
        &self.frames[lattice_id]
    }
}

/// The streaming decode engine.
///
/// ```rust
/// use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
/// use nisqplus_runtime::{RuntimeConfig, StreamingEngine};
///
/// let mut config = RuntimeConfig::new(3);
/// config.rounds = 64;
/// config.workers = 1;
/// config.cadence_cycles = 0; // un-paced: stream as fast as possible
/// let engine = StreamingEngine::new(config).unwrap();
/// let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
/// assert_eq!(outcome.report.counters.decoded, 64);
/// ```
///
/// Serving several logical qubits at once — one engine, one worker pool,
/// per-lattice telemetry:
///
/// ```rust
/// use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};
/// use nisqplus_runtime::{MachineConfig, StreamingEngine};
///
/// let mut config = MachineConfig::new(&[3, 5, 3], 7);
/// for spec in &mut config.lattices {
///     spec.rounds = 32;
///     spec.cadence_cycles = 0;
/// }
/// config.workers = 2;
/// let engine = StreamingEngine::with_machine(config).unwrap();
/// let outcome = engine.run(&|| Box::new(GreedyMatchingDecoder::new()) as DynDecoder);
/// assert_eq!(outcome.report.num_lattices, 3);
/// assert_eq!(outcome.report.counters.decoded, 96);
/// assert_eq!(outcome.report.lattices[1].counters.decoded, 32);
/// ```
#[derive(Debug)]
pub struct StreamingEngine {
    config: MachineConfig,
    set: Arc<LatticeSet>,
}

impl StreamingEngine {
    /// Validates a single-lattice configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if the distance is invalid or the noise
    /// probability is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds`, `workers`, `queue_capacity` or `batch_size` is
    /// zero.
    pub fn new(config: RuntimeConfig) -> Result<Self, QecError> {
        Self::with_machine(config.into())
    }

    /// Validates a multi-lattice configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`QecError`] if any lattice distance is invalid or any
    /// noise probability is outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the lattice list is empty, any lattice streams zero rounds,
    /// `workers`, `queue_capacity` or `batch_size` is zero, or the scenario
    /// script fails [`ScenarioScript::validate`](crate::scenario::ScenarioScript::validate)
    /// against the machine.
    pub fn with_machine(config: MachineConfig) -> Result<Self, QecError> {
        assert!(config.workers > 0, "worker pool needs at least one worker");
        assert!(config.queue_capacity > 0, "ring needs at least one slot");
        assert!(
            config.batch_size > 0,
            "batch window needs at least one round"
        );
        if config.replays_residuals() {
            // The replay oracle walks the full correction history and the
            // exact shed-round lists; both memory bounds must stay off.
            assert!(
                config.correction_cap.is_none(),
                "replay residual analysis needs the full correction history \
                 (correction_cap must be None)"
            );
            assert!(
                config.track_shed_rounds,
                "replay residual analysis needs the exact shed rounds \
                 (track_shed_rounds must stay on)"
            );
        }
        let set = Arc::new(LatticeSet::new(config.lattices.clone())?);
        // Surface configuration errors now rather than inside the source
        // stage: building a throwaway source validates every noise spec,
        // and applying the fault plan's burst overlays to it validates
        // every amplified channel too.
        let mut probe = InterleavedSource::new(&set, &config.cycle_time)?;
        for burst in &config.fault.bursts {
            let lattice_id = burst.lattice_id as usize;
            assert!(
                lattice_id < set.len(),
                "burst fault names an unknown lattice"
            );
            probe.set_burst(lattice_id, set.spec(lattice_id).noise, burst.overlay)?;
        }
        if let Err(error) = config.scenario.validate(set.len()) {
            panic!("invalid scenario script: {error}");
        }
        Ok(StreamingEngine { config, set })
    }

    /// The run configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The registry of lattices being served.
    #[must_use]
    pub fn lattice_set(&self) -> &Arc<LatticeSet> {
        &self.set
    }

    /// The lattice registered under id 0 — the whole machine for engines
    /// built from a single-lattice [`RuntimeConfig`].
    #[must_use]
    pub fn lattice(&self) -> &Arc<nisqplus_qec::lattice::Lattice> {
        self.set.lattice(0)
    }

    /// Streams every lattice's configured rounds through the worker pool
    /// under the default pipeline wiring and reports the telemetry.
    ///
    /// The calling thread becomes the source; `config.workers` decoder
    /// threads are spawned for the duration of the call.  Returns once every
    /// generated round has been decoded (or shed) and all workers have
    /// exited.
    #[must_use]
    pub fn run(&self, factory: &dyn DecoderFactory) -> RuntimeOutcome {
        self.run_with(PipelineOptions::default(), factory)
    }

    /// Like [`StreamingEngine::run`], with a custom pipeline shape: where
    /// rounds are placed ([`RouteStage`](crate::stage::RouteStage)), how
    /// workers consume ([`ConsumePolicy`](crate::stage::ConsumePolicy)),
    /// and how many channels the graph fans out over.
    #[must_use]
    pub fn run_with(
        &self,
        options: PipelineOptions,
        factory: &dyn DecoderFactory,
    ) -> RuntimeOutcome {
        let counters = RuntimeCounters::with_topology(self.set.len(), self.config.workers);
        let graph = PipelineGraph::new(&self.config, &self.set, options);
        let run = graph.run(factory, &counters);
        self.assemble_outcome(run, &counters)
    }

    /// Folds a finished [`PipelineRun`] into the final [`RuntimeOutcome`].
    fn assemble_outcome(&self, run: PipelineRun, counters: &RuntimeCounters) -> RuntimeOutcome {
        let config = &self.config;
        let set = &self.set;
        let PipelineRun {
            worker_outputs,
            depth_timeline,
            generation_elapsed_ns,
            final_backlog,
            lattice_stats,
            lattice_shed,
            shed_tallies,
            stage_reports,
            elapsed_s,
            snapshots,
            journal,
            metrics,
            fault: injections,
            trace,
            mut noise_epochs,
        } = run;
        // Per-lattice decoder names (same on every worker — they build from
        // the same factories); the machine-level headline joins the distinct
        // names, so a heterogeneous machine reads e.g. "lookup+union-find".
        let lattice_decoder_names: Vec<String> = worker_outputs
            .first()
            .map(|o| o.lattice_decoders.clone())
            .unwrap_or_default();
        let mut distinct_names: Vec<&str> = Vec::new();
        for name in &lattice_decoder_names {
            if !distinct_names.contains(&name.as_str()) {
                distinct_names.push(name);
            }
        }
        let decoder_name = distinct_names.join("+");

        // Regroup the per-worker, per-lattice outputs by lattice.  Latency
        // samples arrive as bounded log-bucket histograms (not raw vectors),
        // so regrouping is a counts merge — O(buckets) per worker-lattice
        // pair, independent of how many rounds were decoded.
        let mut per_lattice_decode: Vec<HistogramSnapshot> =
            vec![HistogramSnapshot::empty(); set.len()];
        let mut per_lattice_total: Vec<HistogramSnapshot> =
            vec![HistogramSnapshot::empty(); set.len()];
        let mut per_lattice_shards: Vec<Vec<PauliFrame>> = vec![Vec::new(); set.len()];
        // The streaming residual path's decoded-round tallies, merged across
        // workers per lattice (absorb is an order-independent integer sum,
        // so worker interleaving cannot change the result).
        let mut decoded_tallies: Vec<ResidualTally> = vec![ResidualTally::default(); set.len()];
        let mut corrections = Vec::new();
        for output in worker_outputs {
            corrections.extend(output.corrections);
            for (lattice_id, lattice_output) in output.per_lattice.into_iter().enumerate() {
                per_lattice_decode[lattice_id].merge(&lattice_output.decode_hist);
                per_lattice_total[lattice_id].merge(&lattice_output.total_hist);
                decoded_tallies[lattice_id].absorb(&lattice_output.residuals);
                per_lattice_shards[lattice_id].push(lattice_output.frame);
            }
        }
        corrections.sort_by_key(|c| (c.lattice_id, c.round));

        // Per-lattice reports and frames.
        let mut lattices = Vec::with_capacity(set.len());
        let mut frames = Vec::with_capacity(set.len());
        let mut machine_decode = HistogramSnapshot::empty();
        let mut machine_total = HistogramSnapshot::empty();
        for (lattice_id, spec, lattice) in set.iter() {
            let decode_latency = LatencyProfile::from_histogram(&per_lattice_decode[lattice_id]);
            let total_latency = LatencyProfile::from_histogram(&per_lattice_total[lattice_id]);
            let stats = &lattice_stats[lattice_id];
            let snapshot = counters.per_lattice[lattice_id].snapshot();
            let shed_rounds = &lattice_shed[lattice_id];
            if config.track_shed_rounds {
                debug_assert_eq!(shed_rounds.len() as u64, snapshot.dropped);
            } else {
                debug_assert!(shed_rounds.is_empty(), "untracked shed lists stay empty");
            }
            // Elastic runs stream fewer rounds than configured — retired
            // lattices truncate, dormant adds may never fire, replays serve
            // whatever the trace holds — so every rate and model input is
            // normalised by what the lattice *actually* generated.
            let rounds_streamed = snapshot.generated;
            let inter_arrival_ns = stats.gen_elapsed_ns / rounds_streamed.max(1) as f64;
            let measured = MeasuredBacklog {
                rounds: rounds_streamed,
                final_backlog: stats.final_backlog,
                // Shed rounds are lost, not owed: they left the backlog the
                // moment they were dropped, so they are accounted here
                // explicitly instead of vanishing from the growth math.
                shed: snapshot.dropped,
                // Workers decode concurrently, so the aggregate service time
                // per round is the per-packet mean divided by the pool width
                // (an optimistic bound when other lattices compete for the
                // same pool; see the LatticeReport field docs).
                service_time_ns: decode_latency.summary.mean / config.workers as f64,
                inter_arrival_ns,
            };
            let comparison = BacklogComparison::against_model(&measured);
            let residual = if config.streams_residuals() {
                // Already classified in-stream: the workers tallied decoded
                // rounds, the producer tallied shed rounds — nothing to
                // replay, nothing O(rounds) to walk.
                Some(streaming_residual_report(
                    decoded_tallies[lattice_id],
                    shed_tallies[lattice_id],
                ))
            } else if config.replays_residuals() {
                Some(analyze_lattice_residuals(
                    lattice_id,
                    spec,
                    lattice,
                    &corrections,
                    shed_rounds,
                    config.fault.burst_for(lattice_id as u32),
                ))
            } else {
                None
            };
            // This lattice's slice of the depth sink's timeline: the series
            // that says when *this* patch was falling behind.
            let backlog_timeline: Vec<LatticeDepthSample> = depth_timeline
                .iter()
                .map(|sample| LatticeDepthSample {
                    round: sample.round,
                    elapsed_ns: sample.elapsed_ns,
                    backlog: sample
                        .per_lattice_backlog
                        .get(lattice_id)
                        .copied()
                        .unwrap_or(0),
                })
                .collect();
            lattices.push(LatticeReport {
                lattice_id,
                distance: spec.distance,
                decoder: lattice_decoder_names
                    .get(lattice_id)
                    .cloned()
                    .unwrap_or_default(),
                push_policy: config.policy_for(spec),
                push_policy_overridden: spec.push_policy.is_some(),
                queue_budget: spec.queue_budget,
                shed_slo: spec.shed_slo,
                residual,
                rounds: rounds_streamed,
                noise_epochs: std::mem::take(&mut noise_epochs[lattice_id]),
                cadence_ns: config.cycle_time.cycles_to_ns(spec.cadence_cycles),
                inter_arrival_ns,
                counters: snapshot,
                backlog_timeline,
                final_backlog: stats.final_backlog,
                decode_latency,
                total_latency,
                measured,
                comparison,
            });
            // Shed rounds enter the frame path as identity corrections: the
            // merged Pauli string is unchanged (nothing was corrected), but
            // the frame's recorded-cycle count owns up to every generated
            // round, so `total_recorded == generated` under shedding too.
            let mut shards = std::mem::take(&mut per_lattice_shards[lattice_id]);
            // Counted off the dropped counter, not the shed-round list: the
            // books must balance even when `track_shed_rounds` elides the
            // per-round indices.
            if snapshot.dropped > 0 {
                let mut shed_shard = PauliFrame::new(lattice.num_data());
                let identity = PauliString::identity(lattice.num_data());
                for _ in 0..snapshot.dropped {
                    shed_shard.record(&identity);
                }
                shards.push(shed_shard);
            }
            frames.push(ShardedPauliFrame::from_shards(lattice.num_data(), shards));
            machine_decode.merge(&per_lattice_decode[lattice_id]);
            machine_total.merge(&per_lattice_total[lattice_id]);
        }
        if !config.record_corrections {
            // The corrections were only recorded to feed the residual
            // analysis; the caller did not ask for them.
            corrections.clear();
        }

        let decode_latency = LatencyProfile::from_histogram(&machine_decode);
        let total_latency = LatencyProfile::from_histogram(&machine_total);
        let snapshot = counters.snapshot();
        // The machine-level books follow the same rule: rounds are what the
        // source actually emitted, not what the specs configured.
        let total_rounds = snapshot.generated;
        let inter_arrival_ns = generation_elapsed_ns / total_rounds.max(1) as f64;
        let measured = MeasuredBacklog {
            rounds: total_rounds,
            final_backlog,
            shed: snapshot.dropped,
            // Workers decode concurrently, so the aggregate service time per
            // round is the per-packet mean divided by the pool width.
            service_time_ns: decode_latency.summary.mean / config.workers as f64,
            inter_arrival_ns,
        };
        let comparison = BacklogComparison::against_model(&measured);
        let throughput_per_s = if elapsed_s > 0.0 {
            snapshot.decoded as f64 / elapsed_s
        } else {
            0.0
        };
        let max_queue_depth = depth_timeline
            .iter()
            .map(|s| s.queue_depth)
            .max()
            .unwrap_or(0);

        let outcome = RuntimeOutcome {
            report: RuntimeReport {
                decoder: decoder_name,
                num_lattices: set.len(),
                distances: set.distances(),
                workers: config.workers,
                batch_size: config.batch_size,
                rounds: total_rounds,
                cadence_ns: config.aggregate_cadence_ns(),
                inter_arrival_ns,
                elapsed_s,
                counters: snapshot,
                depth_timeline,
                max_queue_depth,
                final_backlog,
                throughput_per_s,
                decode_latency,
                total_latency,
                measured,
                comparison,
                lattices,
                worker_counters: counters
                    .per_worker
                    .iter()
                    .map(WorkerCounters::snapshot)
                    .collect(),
                fault: crate::fault::FaultReport::assemble(
                    &config.fault,
                    injections,
                    &journal.counts,
                    snapshot.quarantined,
                ),
                stages: stage_reports,
                snapshots,
                journal,
                metrics,
            },
            frames,
            corrections,
            trace,
        };
        if let Some(path) = &config.obs.export_path {
            // Export is best-effort telemetry: a failed write must never
            // fail the run that produced the data.
            if let Err(error) = crate::report::write_report(path, &outcome.report) {
                eprintln!(
                    "nisqplus-runtime: report export to {} failed: {error}",
                    path.display()
                );
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::NoiseSpec;
    use nisqplus_decoders::{DynDecoder, GreedyMatchingDecoder};

    fn fast_config() -> RuntimeConfig {
        let mut config = RuntimeConfig::new(3);
        config.rounds = 200;
        config.workers = 2;
        config.cadence_cycles = 0;
        config.queue_capacity = 64;
        config
    }

    fn greedy_factory() -> impl DecoderFactory {
        || Box::new(GreedyMatchingDecoder::new()) as DynDecoder
    }

    #[test]
    fn every_round_is_decoded_exactly_once() {
        let engine = StreamingEngine::new(fast_config()).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 200);
        assert_eq!(counters.enqueued, 200);
        assert_eq!(counters.decoded, 200);
        assert_eq!(counters.dropped, 0);
        assert_eq!(outcome.frame().total_recorded(), 200);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
        assert!(outcome.report.throughput_per_s > 0.0);
        assert!(!outcome.report.depth_timeline.is_empty());
        // Single lattice: the per-lattice breakdown is the whole report.
        assert_eq!(outcome.report.num_lattices, 1);
        assert_eq!(outcome.report.lattices.len(), 1);
        assert_eq!(outcome.report.lattices[0].counters.decoded, 200);
        assert_eq!(outcome.report.distances, vec![3]);
    }

    #[test]
    fn recorded_corrections_cover_every_round_in_order() {
        let mut config = fast_config();
        config.record_corrections = true;
        config.workers = 3;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let rounds: Vec<u64> = outcome.corrections.iter().map(|c| c.round).collect();
        assert_eq!(rounds, (0..200).collect::<Vec<u64>>());
        assert!(outcome.corrections.iter().all(|c| c.lattice_id == 0));
    }

    #[test]
    fn drop_policy_sheds_load_on_a_tiny_ring() {
        let mut config = fast_config();
        config.queue_capacity = 2;
        config.workers = 1;
        config.rounds = 500;
        config.push_policy = PushPolicy::Drop;
        // Slow the workers enough that an un-paced producer overruns the ring.
        let factory = || {
            Box::new(crate::throttle::ThrottledDecoder::new(
                GreedyMatchingDecoder::new(),
                50_000,
            )) as DynDecoder
        };
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&factory);
        let counters = outcome.report.counters;
        assert_eq!(counters.generated, 500);
        assert_eq!(counters.enqueued + counters.dropped, 500);
        assert!(counters.dropped > 0, "tiny ring should overflow");
        assert_eq!(counters.decoded, counters.enqueued);
        // Dropped rounds are shed, not owed: the backlog when generation
        // stopped is at most what fit in the ring plus the packets in flight
        // inside the single worker, never the full overrun.
        assert!(outcome.report.final_backlog <= 4);
        // The per-lattice slice sees the same drops.
        let lattice = &outcome.report.lattices[0];
        assert_eq!(lattice.counters.dropped, counters.dropped);
        assert!(!lattice.queue_stayed_bounded());
    }

    #[test]
    fn batched_windows_cover_every_round() {
        let mut config = fast_config();
        config.batch_size = 8;
        config.workers = 1;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        assert_eq!(counters.decoded, 200);
        assert_eq!(outcome.report.batch_size, 8);
        assert!(counters.batches >= 200 / 8);
        assert!(counters.batches <= 200);
        assert!(counters.mean_batch_fill() >= 1.0);
        assert_eq!(outcome.report.decode_latency.summary.count, 200);
    }

    /// Per-worker counter slices sum exactly to the aggregate counters at
    /// quiescence, and each worker's mean batch fill is internally
    /// consistent.
    #[test]
    fn per_worker_counters_sum_to_the_aggregate() {
        let mut config = fast_config();
        config.workers = 3;
        let engine = StreamingEngine::new(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let counters = outcome.report.counters;
        let workers = &outcome.report.worker_counters;
        assert_eq!(workers.len(), 3);
        assert_eq!(
            workers.iter().map(|w| w.decoded).sum::<u64>(),
            counters.decoded
        );
        assert_eq!(
            workers.iter().map(|w| w.stolen).sum::<u64>(),
            counters.stolen
        );
        assert_eq!(
            workers.iter().map(|w| w.batches).sum::<u64>(),
            counters.batches
        );
        assert_eq!(
            workers.iter().map(|w| w.stall_polls).sum::<u64>(),
            counters.stall_polls
        );
        for worker in workers {
            if worker.batches > 0 {
                assert!(worker.mean_batch_fill() >= 1.0);
                assert!(worker.mean_batch_fill() <= config_batch_size() as f64);
            }
        }
    }

    fn config_batch_size() -> usize {
        RuntimeConfig::DEFAULT_BATCH_SIZE
    }

    /// Satellite of the stage refactor: every lattice gets its own backlog
    /// timeline, aligned sample-for-sample with the aggregate one.
    #[test]
    fn per_lattice_backlog_timelines_align_with_the_aggregate() {
        let mut config = MachineConfig::new(&[3, 5], 21);
        for spec in &mut config.lattices {
            spec.rounds = 100;
            spec.cadence_cycles = 0;
        }
        config.workers = 2;
        config.queue_capacity = 512;
        let engine = StreamingEngine::with_machine(config).unwrap();
        let outcome = engine.run(&greedy_factory());
        let aggregate = &outcome.report.depth_timeline;
        assert!(!aggregate.is_empty());
        for lattice in &outcome.report.lattices {
            assert_eq!(lattice.backlog_timeline.len(), aggregate.len());
            for (own, agg) in lattice.backlog_timeline.iter().zip(aggregate) {
                assert_eq!(own.round, agg.round);
                assert_eq!(own.elapsed_ns, agg.elapsed_ns);
                assert!(own.backlog <= agg.backlog + 1);
            }
        }
        // The per-lattice series sum to the aggregate at each sample (no
        // sampling skew here: the source thread reads all counters between
        // emissions).
        for (index, sample) in aggregate.iter().enumerate() {
            let summed: u64 = outcome
                .report
                .lattices
                .iter()
                .map(|l| l.backlog_timeline[index].backlog)
                .sum();
            assert_eq!(summed, sample.per_lattice_backlog.iter().sum::<u64>());
        }
    }

    /// The run's stage reports describe the whole graph and their books
    /// balance: what the source emitted equals what the channels accepted
    /// equals what the decode stages consumed.
    #[test]
    fn stage_reports_cover_the_graph_with_balanced_flow() {
        let engine = StreamingEngine::new(fast_config()).unwrap();
        let outcome = engine.run(&greedy_factory());
        let stages = &outcome.report.stages;
        let stage_of = |name: &str| {
            stages
                .iter()
                .find(|r| r.stage == name)
                .unwrap_or_else(|| panic!("missing stage report {name}"))
        };
        assert_eq!(stage_of("source").accepted, 200);
        assert_eq!(stage_of("source").emitted, 200);
        assert_eq!(stage_of("gate").accepted, 200);
        assert_eq!(stage_of("skid").accepted, 200);
        assert_eq!(stage_of("skid").emitted, 200);
        let channel_in: u64 = stages
            .iter()
            .filter(|r| r.stage.starts_with("channel."))
            .map(|r| r.accepted)
            .sum();
        let decode_out: u64 = stages
            .iter()
            .filter(|r| r.stage.starts_with("decode."))
            .map(|r| r.emitted)
            .sum();
        assert_eq!(channel_in, 200);
        assert_eq!(decode_out, 200);
        for report in stages.iter().filter(|r| r.stage.starts_with("channel.")) {
            assert_eq!(report.credits_consumed, report.credits_issued);
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_batch_size_rejected() {
        let mut config = fast_config();
        config.batch_size = 0;
        let _ = StreamingEngine::new(config);
    }

    #[test]
    fn invalid_noise_is_rejected_up_front() {
        let mut config = fast_config();
        config.noise = NoiseSpec::PureDephasing { p: 2.0 };
        assert!(StreamingEngine::new(config).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let mut config = fast_config();
        config.workers = 0;
        let _ = StreamingEngine::new(config);
    }

    #[test]
    #[should_panic(expected = "at least one lattice")]
    fn empty_machine_rejected() {
        let config = MachineConfig {
            lattices: Vec::new(),
            ..MachineConfig::new(&[3], 0)
        };
        let _ = StreamingEngine::with_machine(config);
    }
}
